//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly, recovering from poisoning), which is
//! the only surface the LOOM workspace uses. The real parking_lot is a
//! drop-in replacement when a networked build is available.

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a panic while holding the
    /// lock does not prevent later acquisitions.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader–writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
