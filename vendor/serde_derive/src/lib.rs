//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `serde_derive` cannot be fetched. The workspace only relies on
//! `#[derive(Serialize, Deserialize)]` (plus `#[serde(...)]` field helpers)
//! to mark types as serialisable; the sibling `serde` stub provides blanket
//! trait impls, so these derives only need to swallow the syntax. When a
//! networked build replaces the `[patch]`-free path deps with the real
//! crates, nothing in the source tree has to change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and the `#[serde(...)]` helper attribute.
///
/// Expands to nothing: the `serde` stub's blanket impl already covers every
/// type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and the `#[serde(...)]` helper attribute.
///
/// Expands to nothing: the `serde` stub's blanket impl already covers every
/// type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
