//! Offline stand-in for `bytes`.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits with
//! the little-endian accessors the LOOM binary graph format uses. Backed by a
//! plain `Vec<u8>` with a read cursor — the zero-copy sharing of the real
//! crate is irrelevant for the workspace's IO paths.

/// Read-side cursor over a byte buffer, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume and return `count` bytes. Panics if fewer remain.
    fn take_bytes(&mut self, count: usize) -> &[u8];

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let raw: [u8; 4] = self.take_bytes(4).try_into().expect("4 bytes");
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let raw: [u8; 8] = self.take_bytes(8).try_into().expect("8 bytes");
        u64::from_le_bytes(raw)
    }

    /// Consume a single byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

/// Write-side of a growable byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }
}

/// Immutable byte buffer with a consuming read cursor.
///
/// Like the real `bytes::Bytes`, `len`, `is_empty` and equality all describe
/// the *remaining* (unconsumed) view, not the original allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Length of the unconsumed remainder.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether any unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View the unconsumed remainder as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_bytes(&mut self, count: usize) -> &[u8] {
        assert!(count <= self.remaining(), "buffer underflow");
        let start = self.pos;
        self.pos += count;
        &self.data[start..self.pos]
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when writing is done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Create an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_u8(7);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 13);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from_static(b"ab");
        let _ = bytes.get_u32_le();
    }
}
