//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this path crate supplies
//! the subset of the proptest API the LOOM property tests use: range and
//! tuple strategies, `prop_map`, `collection::vec`, the `proptest!` macro and
//! the `prop_assert*` assertions. Cases are generated from a fixed-seed
//! deterministic RNG (no shrinking, no persistence); failures surface as
//! ordinary panics, with the failing case index printed to stderr by a drop
//! guard so the exact deterministic case can be re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Test-runner configuration (the stand-in for `proptest::test_runner`).
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by the stand-in.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Value-generation strategies (the stand-in for `proptest::strategy`).
pub mod strategy {
    use super::*;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// Strategy producing a fixed value every time.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (the stand-in for `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec`s with a random length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Reports the failing case index when a property panics mid-case.
///
/// Created at the top of every generated case; if the body panics, the
/// guard's `Drop` runs during unwinding and prints which deterministic case
/// failed, so the run can be reproduced by index.
#[doc(hidden)]
pub struct CaseGuard {
    /// Name of the property test.
    pub test_name: &'static str,
    /// Zero-based index of the case being run.
    pub case: u32,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed on deterministic case #{}",
                self.test_name, self.case
            );
        }
    }
}

/// Internal helper used by the [`proptest!`] macro expansion.
#[doc(hidden)]
pub fn __new_case_rng(test_name: &str, case: u32) -> StdRng {
    // Derive a distinct but deterministic stream per test and case.
    let mut seed = 0xC0FF_EE00_0000_0000u64 ^ case as u64;
    for byte in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(byte as u64);
    }
    StdRng::seed_from_u64(seed)
}

/// Run each property as an ordinary `#[test]`, generating its arguments from
/// the listed strategies for `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for __case in 0..config.cases {
                let __case_guard = $crate::CaseGuard {
                    test_name: stringify!($name),
                    case: __case,
                };
                let mut __rng = $crate::__new_case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
                drop(__case_guard);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Assertion usable inside [`proptest!`] bodies (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), x in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..4, 2..8)) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(m in crate::collection::vec(crate::collection::vec(0u32..4, 2..5), 1..5)) {
            prop_assert!(!m.is_empty());
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = Strategy::prop_map(0u32..5, |x| x * 2);
        let mut rng = crate::__new_case_rng("prop_map_applies", 0);
        for _ in 0..20 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }
}
