//! Offline stand-in for `rand` 0.9.
//!
//! The build container has no crates.io access, so this path crate provides
//! the slice of the rand 0.9 API the LOOM workspace actually calls:
//!
//! * [`rngs::StdRng`] — a deterministic SplitMix64 generator seeded via
//!   [`SeedableRng::seed_from_u64`];
//! * [`Rng`] — `random_range` over integer / float ranges and
//!   `random_bool`, the 0.9-era method names;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle`.
//!
//! Determinism given a seed is the only contract the workspace relies on
//! (every generator and ordering takes an explicit seed), so a simple,
//! high-quality 64-bit mixer is sufficient.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG contract: a source of uniform 64-bit words.
pub trait RngCore {
    /// Return the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose output sequence is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring rand 0.9's `random_*` names.
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from `range`. Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Map a uniform `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling from a range type, the stand-in for
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let word = rng.next_u64();
        if word <= zone {
            return word % bound;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                if start == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                start + bounded_u64(rng, span) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let sample = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // FP rounding can land exactly on the excluded endpoint; keep the
        // range half-open.
        sample.min(self.end.next_down())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let sample = self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start);
        sample.min(self.end.next_down())
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    ///
    /// Not cryptographically secure — the workspace only needs reproducible
    /// pseudo-randomness for generators, orderings and samplers.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so nearby seeds decorrelate immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Slice extension trait standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5usize);
            assert!(y <= 5);
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
