//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this path crate provides
//! the subset of the Criterion API the LOOM benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `criterion_group!`,
//! `criterion_main!` — backed by a minimal wall-clock harness: each benchmark
//! is warmed up once, then timed over a fixed number of batches and reported
//! as a median ns/iter on stdout. No statistics, plots or comparisons; the
//! real Criterion is a drop-in replacement when a networked build is
//! available.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed batches per benchmark (the stand-in for sample count).
const DEFAULT_SAMPLES: usize = 7;
/// Iterations per timed batch.
const ITERS_PER_SAMPLE: u64 = 3;

/// Benchmark driver handed to the functions in `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Create a driver with default settings.
    pub fn new() -> Self {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in the stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.samples, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            samples: self.samples,
            _criterion: self,
        }
    }

    /// Flush any pending reporting (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.samples, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.samples,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group (reporting is immediate in the stand-in).
    pub fn finish(self) {}
}

/// Identifier naming one benchmark, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration over the timed batches.
    median_ns: u128,
    samples: usize,
}

impl Bencher {
    /// Time `routine`, recording a median ns/iter across batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let _ = black_box(routine()); // warm-up, also proves the closure runs
        let mut per_iter: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..ITERS_PER_SAMPLE {
                let _ = black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() / ITERS_PER_SAMPLE as u128);
        }
        per_iter.sort_unstable();
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        median_ns: 0,
        samples: samples.max(1),
    };
    f(&mut bencher);
    println!("bench {id:<48} ~{} ns/iter", bencher.median_ns);
}

/// Opaque value barrier; re-exported for parity with Criterion's `black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Define a benchmark group function that runs each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each listed benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::new();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
    }
}
