//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this path crate supplies
//! the minimal surface the LOOM workspace uses: the `Serialize` /
//! `Deserialize` marker traits (with blanket impls so `T: Serialize` bounds
//! always hold) and the derive macros re-exported from the sibling
//! `serde_derive` stub. Swapping in the real serde is a Cargo.toml-only
//! change.

/// Marker trait standing in for `serde::Serialize`.
///
/// The blanket impl below makes every type satisfy `T: Serialize` bounds.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// The blanket impl below makes every sized type satisfy
/// `T: Deserialize<'de>` bounds.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
