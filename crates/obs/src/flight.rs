//! The flight recorder: a bounded ring of recent structured events.
//!
//! Metrics say *how much*; the flight recorder says *what happened, in what
//! order*. Producers record compact structured events — admissions,
//! rejections, deadline hits, epoch publishes, checkpoint seals, WAL
//! truncations — into a bounded ring buffer (oldest evicted first). When
//! something goes wrong (a request blows its deadline, admission rejects at
//! a full queue), the owning component **latches a dump**: a copy of the
//! ring at that instant, tagged with the trigger, turning an opaque
//! `rejected: usize` counter into a diagnosable timeline.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity (events retained before eviction).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// What happened. Every variant is compact plain data — recording never
/// allocates beyond the ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightKind {
    /// A routed request entered admission for a shard's queue.
    Admitted {
        /// Admission sequence number of the request.
        request: u64,
        /// Target worker shard.
        shard: u32,
        /// Epoch the request was routed against.
        epoch: u64,
    },
    /// Admission measured how long a request sat blocked on a full queue.
    QueueWait {
        /// Admission sequence number of the request.
        request: u64,
        /// Target worker shard.
        shard: u32,
        /// Microseconds the admission push stayed blocked.
        waited_us: u64,
    },
    /// Admission rejected a request: the queue stayed full past its
    /// deadline.
    Rejected {
        /// Admission sequence number of the request.
        request: u64,
        /// Target worker shard.
        shard: u32,
        /// Epoch the request was pinned to at rejection.
        epoch: u64,
    },
    /// A request finished with its deadline exceeded (matcher pre-flight or
    /// mid-run unwind).
    DeadlineExceeded {
        /// Admission sequence number of the request.
        request: u64,
        /// Worker shard that executed it.
        shard: u32,
        /// Epoch the execution was pinned to.
        epoch: u64,
    },
    /// A new snapshot epoch was published.
    EpochPublished {
        /// The published epoch sequence.
        epoch: u64,
    },
    /// A checkpoint was sealed (manifest written and fsynced).
    CheckpointSealed {
        /// Epoch the checkpoint captured.
        epoch: u64,
        /// WAL records the checkpoint folds in.
        wal_records: u64,
    },
    /// A torn WAL tail was truncated during recovery.
    WalTruncated {
        /// Bytes discarded past the last good frame.
        bytes: u64,
    },
    /// A migration pass moved vertices and rebuilt shards.
    Migrated {
        /// Vertices whose home shard changed.
        moved: u64,
        /// Epoch the migrated snapshot was published under.
        epoch: u64,
    },
    /// An epoch-compaction pass rewrote tombstone-heavy shards.
    Compacted {
        /// Tombstoned vertices physically removed.
        purged: u64,
        /// Shards rewritten by the pass.
        shards: u32,
        /// Epoch the compacted snapshot was published under.
        epoch: u64,
    },
}

impl fmt::Display for FlightKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FlightKind::Admitted {
                request,
                shard,
                epoch,
            } => write!(f, "admitted request={request} shard={shard} epoch={epoch}"),
            FlightKind::QueueWait {
                request,
                shard,
                waited_us,
            } => write!(
                f,
                "queue-wait request={request} shard={shard} waited_us={waited_us}"
            ),
            FlightKind::Rejected {
                request,
                shard,
                epoch,
            } => write!(f, "rejected request={request} shard={shard} epoch={epoch}"),
            FlightKind::DeadlineExceeded {
                request,
                shard,
                epoch,
            } => write!(
                f,
                "deadline-exceeded request={request} shard={shard} epoch={epoch}"
            ),
            FlightKind::EpochPublished { epoch } => write!(f, "epoch-published epoch={epoch}"),
            FlightKind::CheckpointSealed { epoch, wal_records } => {
                write!(
                    f,
                    "checkpoint-sealed epoch={epoch} wal_records={wal_records}"
                )
            }
            FlightKind::WalTruncated { bytes } => write!(f, "wal-truncated bytes={bytes}"),
            FlightKind::Migrated { moved, epoch } => {
                write!(f, "migrated moved={moved} epoch={epoch}")
            }
            FlightKind::Compacted {
                purged,
                shards,
                epoch,
            } => {
                write!(f, "compacted purged={purged} shards={shards} epoch={epoch}")
            }
        }
    }
}

/// One recorded event: a monotone sequence number, a recorder-relative
/// timestamp, and the structured payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotone event sequence (survives ring eviction, so gaps in a dump
    /// reveal how much history was evicted).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// What happened.
    pub kind: FlightKind,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}us #{:>5}] {}", self.at_us, self.seq, self.kind)
    }
}

/// A latched copy of the ring: the timeline leading up to a trigger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was latched (static trigger description).
    pub reason: &'static str,
    /// Microseconds since recorder creation when the dump was taken.
    pub at_us: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Every event about admission sequence `request`, in timeline order.
    pub fn events_for_request(&self, request: u64) -> Vec<&FlightEvent> {
        self.events
            .iter()
            .filter(|e| match e.kind {
                FlightKind::Admitted { request: r, .. }
                | FlightKind::QueueWait { request: r, .. }
                | FlightKind::Rejected { request: r, .. }
                | FlightKind::DeadlineExceeded { request: r, .. } => r == request,
                _ => false,
            })
            .collect()
    }
}

impl fmt::Display for FlightDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flight dump ({}, t={}us, {} events):",
            self.reason,
            self.at_us,
            self.events.len()
        )?;
        for event in &self.events {
            writeln!(f, "  {event}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Ring {
    next_seq: u64,
    events: VecDeque<FlightEvent>,
}

/// The bounded event ring plus the latched last dump.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    started: Instant,
    ring: parking_lot::Mutex<Ring>,
    last_dump: parking_lot::Mutex<Option<FlightDump>>,
    dumps: AtomicU64,
    recorded: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            started: Instant::now(),
            ring: parking_lot::Mutex::new(Ring::default()),
            last_dump: parking_lot::Mutex::new(None),
            dumps: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Record one event, evicting the oldest when the ring is full.
    pub fn record(&self, kind: FlightKind) {
        let at_us = self.started.elapsed().as_micros() as u64;
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent { seq, at_us, kind });
        drop(ring);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current ring out as a dump without latching it.
    pub fn dump(&self, reason: &'static str) -> FlightDump {
        FlightDump {
            reason,
            at_us: self.started.elapsed().as_micros() as u64,
            events: self.ring.lock().events.iter().copied().collect(),
        }
    }

    /// Take a dump and latch it as [`FlightRecorder::last_dump`] — called by
    /// components at the moment something went wrong (deadline blown,
    /// admission rejected). Returns the dump.
    pub fn latch(&self, reason: &'static str) -> FlightDump {
        let dump = self.dump(reason);
        *self.last_dump.lock() = Some(dump.clone());
        self.dumps.fetch_add(1, Ordering::Relaxed);
        dump
    }

    /// The most recently latched dump, if any trigger has fired.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.last_dump.lock().clone()
    }

    /// How many dumps have been latched.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Total events recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_but_keeps_sequence() {
        let rec = FlightRecorder::new(3);
        for epoch in 0..5 {
            rec.record(FlightKind::EpochPublished { epoch });
        }
        let dump = rec.dump("test");
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].seq, 2, "oldest two evicted");
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn latch_freezes_the_timeline_at_the_trigger() {
        let rec = FlightRecorder::new(8);
        rec.record(FlightKind::Admitted {
            request: 7,
            shard: 1,
            epoch: 3,
        });
        rec.record(FlightKind::Rejected {
            request: 7,
            shard: 1,
            epoch: 3,
        });
        let dump = rec.latch("admission rejected");
        rec.record(FlightKind::EpochPublished { epoch: 4 });
        let latched = rec.last_dump().expect("latched");
        assert_eq!(latched, dump);
        assert_eq!(latched.events.len(), 2, "post-trigger events excluded");
        assert_eq!(rec.dumps(), 1);
        let for_request = latched.events_for_request(7);
        assert_eq!(for_request.len(), 2);
        assert!(matches!(
            for_request[1].kind,
            FlightKind::Rejected { request: 7, .. }
        ));
    }

    #[test]
    fn timeline_renders_human_readably() {
        let rec = FlightRecorder::new(4);
        rec.record(FlightKind::CheckpointSealed {
            epoch: 2,
            wal_records: 10,
        });
        rec.record(FlightKind::WalTruncated { bytes: 3 });
        let text = rec.dump("render").to_string();
        assert!(text.contains("checkpoint-sealed epoch=2 wal_records=10"));
        assert!(text.contains("wal-truncated bytes=3"));
    }

    #[test]
    fn no_trigger_means_no_dump() {
        let rec = FlightRecorder::default();
        rec.record(FlightKind::EpochPublished { epoch: 1 });
        assert!(rec.last_dump().is_none());
        assert_eq!(rec.dumps(), 0);
    }
}
