//! Scoped spans: RAII guards charging wall-clock time into stage
//! histograms.
//!
//! A [`SpanTimer`] is a zero-allocation guard: started against an optional
//! histogram handle, it records the elapsed microseconds on drop. When the
//! handle is `None` — a session built **without** observability — starting
//! the span does not even read the clock, so the uninstrumented path pays a
//! single branch: the bit-identical parity tests and the modelled-QPS
//! numbers are untouched.
//!
//! The [`stage`] module is the stack's span catalogue: every instrumented
//! stage charges into a histogram named by one of these constants, so
//! dashboards and tests agree on the series names.

use crate::hist::Histogram;
use std::time::Instant;

/// The stage-histogram catalogue: one metric id per instrumented stage.
pub mod stage {
    /// WAL append + fsync of one ingested batch (`Session::ingest_batch`).
    pub const INGEST_WAL_APPEND: &str = "ingest.wal_append";
    /// Partitioner ingestion of one batch (`Session::ingest_batch`).
    pub const INGEST_PARTITION: &str = "ingest.partition";
    /// Wall-clock time a routed message sat in a shard worker's inbox.
    pub const SERVE_QUEUE_WAIT: &str = "serve.queue_wait";
    /// One query execution on a shard worker (matcher run, wall clock).
    pub const SERVE_EXECUTE: &str = "serve.execute";
    /// One halo sub-query executed on behalf of another worker.
    pub const SERVE_HALO_HANDOFF: &str = "serve.halo_handoff";
    /// One checkpoint serialisation (blobs + manifest, fsyncs included).
    pub const STORE_CHECKPOINT_WRITE: &str = "store.checkpoint_write";
    /// One fsync on the durability path (WAL append or checkpoint file).
    pub const STORE_FSYNC: &str = "store.fsync";
    /// One migration-planning pass (`AdaptiveServing::adapt_now` rounds).
    pub const ADAPT_PLAN: &str = "adapt.plan";
    /// Applying a migration plan and rebuilding the affected shards.
    pub const ADAPT_MIGRATE: &str = "adapt.migrate";
    /// Mirroring one ingested batch that carries deletes/relabels into the
    /// durable graph (`Session::ingest_batch`).
    pub const INGEST_APPLY_DELETE: &str = "ingest.apply_delete";
    /// One epoch-compaction pass: rewriting tombstone-heavy shards and
    /// publishing the compacted store.
    pub const SERVE_COMPACTION: &str = "serve.compaction";

    /// Every stage above, for exporters and smoke tests that assert the
    /// catalogue is live.
    pub const ALL: &[&str] = &[
        INGEST_WAL_APPEND,
        INGEST_PARTITION,
        SERVE_QUEUE_WAIT,
        SERVE_EXECUTE,
        SERVE_HALO_HANDOFF,
        STORE_CHECKPOINT_WRITE,
        STORE_FSYNC,
        ADAPT_PLAN,
        ADAPT_MIGRATE,
        INGEST_APPLY_DELETE,
        SERVE_COMPACTION,
    ];
}

/// A scoped wall-clock timer charging into a stage histogram on drop.
///
/// Construct with [`SpanTimer::start`]; the borrow keeps the guard from
/// outliving the handle it charges. `None` builds a no-op guard that never
/// reads the clock.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanTimer<'a> {
    target: Option<(&'a Histogram, Instant)>,
}

impl<'a> SpanTimer<'a> {
    /// Start a span against `hist`, or a free no-op when `hist` is `None`.
    #[inline]
    pub fn start(hist: Option<&'a Histogram>) -> Self {
        Self {
            target: hist.map(|h| (h, Instant::now())),
        }
    }

    /// Whether this span will record anything.
    pub fn is_live(&self) -> bool {
        self.target.is_some()
    }

    /// End the span now and return the elapsed microseconds it recorded
    /// (`None` for a no-op span).
    pub fn stop(mut self) -> Option<u64> {
        self.finish()
    }

    #[inline]
    fn finish(&mut self) -> Option<u64> {
        self.target.take().map(|(hist, started)| {
            let us = started.elapsed().as_micros() as u64;
            hist.record(us);
            us
        })
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_charge_their_histogram_on_drop() {
        let hist = Histogram::new();
        {
            let _span = SpanTimer::start(Some(&hist));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.quantile(1.0) >= 1_000, "recorded at least ~1ms");
    }

    #[test]
    fn stop_returns_the_recorded_duration() {
        let hist = Histogram::new();
        let span = SpanTimer::start(Some(&hist));
        let us = span.stop().expect("live span");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), us);
    }

    #[test]
    fn disabled_spans_are_no_ops() {
        let span = SpanTimer::start(None);
        assert!(!span.is_live());
        assert_eq!(span.stop(), None);
    }

    #[test]
    fn the_stage_catalogue_is_unique_and_dotted() {
        let mut seen = std::collections::BTreeSet::new();
        for &name in stage::ALL {
            assert!(name.contains('.'), "{name} is not stage-scoped");
            assert!(seen.insert(name), "{name} appears twice");
        }
        assert_eq!(seen.len(), 11);
    }
}
