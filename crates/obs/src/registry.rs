//! The metric registry: named, labelled series backed by lock-free
//! instruments.
//!
//! Registration (the first `counter`/`gauge`/`histogram` call for a series)
//! takes a write lock; every call after that is a read-locked lookup, and
//! the returned handles are `Arc`-shared atomics — so the intended usage is
//! to **resolve handles once** (at engine construction or worker spawn) and
//! record through them lock-free on the hot path. Series are addressed by a
//! static metric id plus label dimensions (shard, partitioner, plan
//! strategy, …).

use crate::hist::{Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// One label dimension: a static key and its value for this series.
pub type Label = (&'static str, String);

/// A series address: static metric id plus ordered label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesKey {
    /// The metric id (dotted stage-style name, e.g. `serve.execute`).
    pub name: &'static str,
    /// Label dimensions, sorted by key at registration.
    pub labels: Vec<Label>,
}

impl SeriesKey {
    fn new(name: &'static str, labels: &[Label]) -> Self {
        let mut labels = labels.to_vec();
        labels.sort();
        Self { name, labels }
    }
}

impl std::fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// A monotonically increasing counter handle (cloneable, lock-free).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed level (cloneable, lock-free).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the level to `value` if it is higher (high-water marks).
    #[inline]
    pub fn raise(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Series {
    counters: BTreeMap<SeriesKey, Counter>,
    gauges: BTreeMap<SeriesKey, Gauge>,
    histograms: BTreeMap<SeriesKey, Arc<Histogram>>,
}

/// The registry: get-or-create instruments by `(metric id, labels)` and
/// snapshot everything for export.
#[derive(Default)]
pub struct MetricRegistry {
    series: RwLock<Series>,
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let series = self.series.read();
        f.debug_struct("MetricRegistry")
            .field("counters", &series.counters.len())
            .field("gauges", &series.gauges.len())
            .field("histograms", &series.histograms.len())
            .finish()
    }
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter for `(name, labels)`, created on first use.
    pub fn counter(&self, name: &'static str, labels: &[Label]) -> Counter {
        let key = SeriesKey::new(name, labels);
        if let Some(c) = self.series.read().counters.get(&key) {
            return c.clone();
        }
        self.series.write().counters.entry(key).or_default().clone()
    }

    /// The gauge for `(name, labels)`, created on first use.
    pub fn gauge(&self, name: &'static str, labels: &[Label]) -> Gauge {
        let key = SeriesKey::new(name, labels);
        if let Some(g) = self.series.read().gauges.get(&key) {
            return g.clone();
        }
        self.series.write().gauges.entry(key).or_default().clone()
    }

    /// The histogram for `(name, labels)`, created on first use.
    pub fn histogram(&self, name: &'static str, labels: &[Label]) -> Arc<Histogram> {
        let key = SeriesKey::new(name, labels);
        if let Some(h) = self.series.read().histograms.get(&key) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.series
                .write()
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered series, sorted by key.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let series = self.series.read();
        RegistrySnapshot {
            counters: series
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: series
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: series
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A detached copy of every series in a [`MetricRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter series, sorted by key.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauge series, sorted by key.
    pub gauges: Vec<(SeriesKey, i64)>,
    /// Histogram series, sorted by key.
    pub histograms: Vec<(SeriesKey, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_series() {
        let reg = MetricRegistry::new();
        let shard0 = [("shard", "0".to_string())];
        let a = reg.counter("serve.admitted", &shard0);
        let b = reg.counter("serve.admitted", &shard0);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are different series.
        let other = reg.counter("serve.admitted", &[("shard", "1".to_string())]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricRegistry::new();
        let a = reg.counter("x", &[("b", "2".to_string()), ("a", "1".to_string())]);
        let b = reg.counter("x", &[("a", "1".to_string()), ("b", "2".to_string())]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauges_track_levels_and_high_water_marks() {
        let reg = MetricRegistry::new();
        let g = reg.gauge("serve.queue_depth", &[]);
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.raise(10);
        g.raise(5);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn snapshot_covers_every_kind() {
        let reg = MetricRegistry::new();
        reg.counter("c", &[]).inc();
        reg.gauge("g", &[]).set(-4);
        reg.histogram("h", &[]).record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 1);
        assert_eq!(snap.gauges[0].1, -4);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn series_key_displays_prometheus_style() {
        let key = SeriesKey::new("serve.execute", &[("shard", "2".to_string())]);
        assert_eq!(key.to_string(), "serve.execute{shard=\"2\"}");
        assert_eq!(SeriesKey::new("up", &[]).to_string(), "up");
    }
}
