//! # loom-obs — the telemetry subsystem
//!
//! Observability for the LOOM serving stack, built on three pieces:
//!
//! - a **metric registry** ([`MetricRegistry`]) of lock-free counters,
//!   gauges, and log-linear histograms, addressed by static metric ids plus
//!   label dimensions (shard, partitioner, plan strategy). Histograms are
//!   HdrHistogram-style: fixed bucket layout, O(1) record, mergeable
//!   bucket-wise, and p50/p99/p999 without re-sorting samples;
//! - **scoped spans** ([`SpanTimer`]): zero-allocation RAII guards that
//!   charge wall-clock into the stage histograms catalogued in [`stage`]
//!   (`ingest.wal_append`, `serve.execute`, `store.fsync`, …). A span built
//!   without a target never reads the clock, so an uninstrumented session
//!   pays one branch and stays bit-identical;
//! - a **flight recorder** ([`FlightRecorder`]): a bounded ring of
//!   structured events (admissions, rejections, deadline hits, epoch
//!   publishes, checkpoint seals, WAL truncations) that components latch
//!   into a [`FlightDump`] the moment something goes wrong.
//!
//! [`Telemetry`] bundles the three behind one `Arc` that a
//! `SessionBuilder` hands down through ingest, serve, store, and adapt.
//! [`TelemetrySnapshot`] detaches the registry for export — Prometheus
//! text, JSON lines, or interval diffs via [`TelemetrySnapshot::since`].
//!
//! ```
//! use loom_obs::{stage, SpanTimer, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let hist = telemetry.stage_histogram(stage::SERVE_EXECUTE);
//! {
//!     let _span = SpanTimer::start(Some(&hist));
//!     // ... work charged into serve.execute on drop ...
//! }
//! let snapshot = telemetry.snapshot();
//! assert!(snapshot.prometheus().contains("loom_serve_execute_count"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod span;

pub use export::{validate_prometheus, TelemetryDelta, TelemetrySnapshot};
pub use flight::{FlightDump, FlightEvent, FlightKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Label, MetricRegistry, RegistrySnapshot, SeriesKey};
pub use span::{stage, SpanTimer};

use std::sync::Arc;
use std::time::Instant;

/// The telemetry bundle one session shares across its stack: a metric
/// registry, a flight recorder, and the epoch zero the snapshot clock
/// counts from.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricRegistry,
    flight: FlightRecorder,
    started: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self {
            registry: MetricRegistry::new(),
            flight: FlightRecorder::default(),
            started: Instant::now(),
        }
    }
}

impl Telemetry {
    /// A fresh telemetry bundle behind the `Arc` every component clones.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The metric registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Microseconds since this bundle was created.
    pub fn uptime_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// The unlabelled histogram for a [`stage`] name — resolve once, then
    /// record lock-free.
    pub fn stage_histogram(&self, stage: &'static str) -> Arc<Histogram> {
        self.registry.histogram(stage, &[])
    }

    /// The per-shard histogram for a [`stage`] name.
    pub fn shard_histogram(&self, stage: &'static str, shard: u32) -> Arc<Histogram> {
        self.registry
            .histogram(stage, &[("shard", shard.to_string())])
    }

    /// A point-in-time copy of every series, timestamped against this
    /// bundle's creation.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            at_us: self.uptime_us(),
            registry: self.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_registry_and_clock() {
        let t = Telemetry::new();
        t.registry().counter("ops", &[]).add(3);
        t.stage_histogram(stage::ADAPT_PLAN).record(42);
        let snap = t.snapshot();
        assert_eq!(snap.registry.counters[0].1, 3);
        assert_eq!(snap.registry.histograms[0].1.count, 1);
        assert!(snap.at_us >= 1 || snap.at_us == 0);
    }

    #[test]
    fn shard_histograms_are_distinct_series() {
        let t = Telemetry::new();
        t.shard_histogram(stage::SERVE_EXECUTE, 0).record(10);
        t.shard_histogram(stage::SERVE_EXECUTE, 1).record(20);
        let snap = t.snapshot();
        assert_eq!(snap.registry.histograms.len(), 2);
    }

    #[test]
    fn flight_recorder_is_shared_state() {
        let t = Telemetry::new();
        t.flight().record(FlightKind::EpochPublished { epoch: 1 });
        assert_eq!(t.flight().recorded(), 1);
    }
}
