//! Log-linear histograms: O(1) concurrent record, mergeable, quantile
//! readout without keeping (or re-sorting) sample vectors.
//!
//! The bucket layout is fixed and shared by every histogram, which is what
//! makes two histograms **mergeable** by bucket-wise addition — the property
//! the serving layer leans on: per-shard run-local histograms merge into the
//! registry's cumulative series, and two [`HistogramSnapshot`]s taken from
//! one series subtract into an interval histogram for rate reporting.
//!
//! Layout (an HdrHistogram-style log-linear grid over `u64` values):
//!
//! * values `0..32` get unit-width buckets (exact);
//! * every octave `[2^e, 2^(e+1))` above that is split into 32 equal
//!   sub-buckets, so the relative quantization error is bounded by `1/32`
//!   (≈3.1%) at every magnitude;
//! * values at or above `2^40` clamp into the top bucket (recording
//!   microseconds, that is ~12 days — far past any latency this stack
//!   charges).
//!
//! Recording is a single atomic increment plus count/sum/min/max updates —
//! no locks, no allocation — so the hot serving path can afford one per
//! query.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (`2^SUB_BITS`).
const SUB_BITS: u32 = 5;
/// Sub-bucket count: values below this get exact unit buckets.
const SUB: u64 = 1 << SUB_BITS;
/// Highest distinguished exponent; values `>= 2^(MAX_EXP + 1)` clamp.
const MAX_EXP: u32 = 39;
/// Total bucket count for the fixed layout.
const BUCKETS: usize = ((MAX_EXP - SUB_BITS + 2) as usize) * (SUB as usize);

/// Bucket index for a value (total function: large values clamp to the top).
#[inline]
fn bucket_of(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let e = 63 - value.leading_zeros();
    if e > MAX_EXP {
        return BUCKETS - 1;
    }
    let block = (e - SUB_BITS + 1) as usize;
    let sub = ((value >> (e - SUB_BITS)) - SUB) as usize;
    block * (SUB as usize) + sub
}

/// Inclusive upper bound of a bucket — the value quantiles report, so the
/// estimate is conservative (never below the true sample).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let block = (index / SUB as usize) as u32;
    let sub = (index % SUB as usize) as u64;
    let shift = block - 1;
    ((SUB + sub) << shift) + (1u64 << shift) - 1
}

/// A concurrent log-linear histogram with the fixed bucket layout above.
///
/// `record` is lock-free and allocation-free; `snapshot` reads a consistent-
/// enough view for reporting (individual bucket reads are atomic; a snapshot
/// taken mid-record may be off by the in-flight sample, which is the usual
/// monitoring contract).
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            counts: counts.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. O(1), lock-free, allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a (possibly fractional) number of microseconds, rounding to
    /// the nearest integer value. Negative and non-finite inputs record 0.
    #[inline]
    pub fn record_f64(&self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value.round() as u64
        } else {
            0
        };
        self.record(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold another histogram into this one, bucket by bucket.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `q`-th quantile (nearest rank) of everything recorded so far, as
    /// the matching bucket's inclusive upper bound; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the histogram's state, detached from the
    /// atomics (sparse: only the non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (index, counter) in self.counts.iter().enumerate() {
            let n = counter.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((index as u32, n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A detached, serialisable copy of a [`Histogram`]'s state. Snapshots of
/// the shared layout merge and subtract bucket-wise, which is how interval
/// (scrape-to-scrape) quantiles are produced without resetting the live
/// series.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-th quantile (nearest rank), as the matching bucket's
    /// inclusive upper bound; 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64)
            .max(1)
            .min(self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Never report past the true maximum: the top occupied
                // bucket's upper bound can overshoot `max`.
                return bucket_upper(index as usize).min(self.max);
            }
        }
        self.max
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while a.peek().is_some() || b.peek().is_some() {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.count - other.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
    }

    /// The interval histogram between `earlier` (a previous snapshot of the
    /// **same** series) and this one: bucket-wise saturating subtraction.
    /// `min`/`max` cannot be recovered for an interval and are reported as
    /// the interval's quantile extremes instead.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut before = earlier.buckets.iter().peekable();
        for &(index, n) in &self.buckets {
            let prior = loop {
                match before.peek() {
                    Some(&&(i, _)) if i < index => {
                        before.next();
                        continue;
                    }
                    Some(&&(i, p)) if i == index => {
                        before.next();
                        break p;
                    }
                    _ => break 0,
                }
            };
            let delta = n.saturating_sub(prior);
            if delta > 0 {
                buckets.push((index, delta));
            }
        }
        let count = self.count.saturating_sub(earlier.count);
        let mut interval = HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: 0,
            max: self.max,
        };
        interval.min = interval.quantile(0.0);
        interval.max = interval.quantile(1.0);
        interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_buckets_are_exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut last = 0usize;
        // Exhaustive over the low range, then octave edges above it.
        for v in (0..4096u64)
            .chain((12..=20u32).flat_map(|e| [1u64 << e, (1u64 << e) + 1, (1u64 << (e + 1)) - 1]))
        {
            let b = bucket_of(v);
            assert!(b >= last, "bucket index regressed at {v}");
            assert!(v <= bucket_upper(b), "{v} above its bucket bound");
            last = b;
        }
        assert!(last < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1_000_000, 87_654_321] {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v);
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "error {err} at {v}");
        }
    }

    #[test]
    fn huge_values_clamp_instead_of_panicking() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 60);
        assert_eq!(h.count(), 2);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_without_resorting() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        // Within one sub-bucket of the exact nearest-rank answers.
        assert!((500..=516).contains(&p50), "p50 = {p50}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!((999..=1000).contains(&p999), "p999 = {p999}");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_of_parts_equals_whole() {
        let (a, b, whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            let v = v * 37 % 10_000;
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            };
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn snapshot_since_yields_interval_counts() {
        let h = Histogram::new();
        h.record(10);
        h.record(10_000);
        let early = h.snapshot();
        h.record(20);
        h.record(20);
        let interval = h.snapshot().since(&early);
        assert_eq!(interval.count, 2);
        assert_eq!(interval.quantile(0.5), 20);
        assert_eq!(interval.min, 20);
        assert_eq!(interval.max, 20);
        // Self-diff is empty.
        let zero = h.snapshot().since(&h.snapshot());
        assert_eq!(zero.count, 0);
        assert_eq!(zero.quantile(0.99), 0);
    }

    #[test]
    fn record_f64_guards_pathological_inputs() {
        let h = Histogram::new();
        h.record_f64(-3.0);
        h.record_f64(f64::NAN);
        h.record_f64(1.6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 2);
    }

    proptest! {
        /// Merging any split of a sample set reproduces the whole — the
        /// property that lets per-shard histograms aggregate exactly.
        #[test]
        fn prop_merge_of_parts_equals_whole(values in proptest::collection::vec(0u64..1_000_000, 0..200), mask in proptest::collection::vec(0u64..2, 0..200)) {
            let (left, right, whole) = (Histogram::new(), Histogram::new(), Histogram::new());
            for (i, &v) in values.iter().enumerate() {
                whole.record(v);
                if mask.get(i).copied().unwrap_or(0) == 1 { left.record(v) } else { right.record(v) };
            }
            left.merge(&right);
            prop_assert_eq!(left.snapshot(), whole.snapshot());
        }

        /// Snapshot-merge agrees with live merge.
        #[test]
        fn prop_snapshot_merge_matches_live_merge(a in proptest::collection::vec(0u64..100_000, 0..100), b in proptest::collection::vec(0u64..100_000, 0..100)) {
            let (ha, hb) = (Histogram::new(), Histogram::new());
            for &v in &a { ha.record(v); }
            for &v in &b { hb.record(v); }
            let mut snap = ha.snapshot();
            snap.merge(&hb.snapshot());
            ha.merge(&hb);
            prop_assert_eq!(snap, ha.snapshot());
        }

        /// Quantiles never undershoot the true value by more than one
        /// sub-bucket and never exceed the recorded maximum.
        #[test]
        fn prop_quantile_bounds(values in proptest::collection::vec(1u64..1_000_000, 1..200)) {
            let h = Histogram::new();
            for &v in &values { h.record(v); }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &(q, idx) in &[(0.5f64, values.len().div_ceil(2) - 1), (1.0, values.len() - 1)] {
                let estimate = h.quantile(q);
                let exact = sorted[idx];
                prop_assert!(estimate >= exact, "q{q}: {estimate} < exact {exact}");
                prop_assert!(estimate <= *sorted.last().unwrap());
                let err = (estimate - exact) as f64 / exact as f64;
                prop_assert!(err <= 1.0 / SUB as f64 + 1e-9, "q{q}: err {err}");
            }
        }
    }
}
