//! Exporters: Prometheus text exposition, JSON-lines snapshots, and the
//! snapshot diff API for interval (scrape-to-scrape) rates.
//!
//! A [`TelemetrySnapshot`] is a detached copy of every registered series at
//! one instant. Export it whole ([`TelemetrySnapshot::prometheus`],
//! [`TelemetrySnapshot::json_lines`]) or diff it against an earlier
//! snapshot of the same registry ([`TelemetrySnapshot::since`]) to get
//! interval rates and interval histogram quantiles — the shape a periodic
//! scraper wants, produced without ever resetting the live series.

use crate::hist::HistogramSnapshot;
use crate::registry::{RegistrySnapshot, SeriesKey};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// Histogram quantiles every exporter reports.
const QUANTILES: &[(f64, &str)] = &[(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")];

/// A point-in-time copy of every series in a telemetry registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Microseconds since the owning [`Telemetry`](crate::Telemetry) was
    /// created.
    pub at_us: u64,
    /// The registry's series.
    pub registry: RegistrySnapshot,
}

/// Prometheus metric name for a series: `loom_` prefix, dots and dashes
/// flattened to underscores.
fn prom_name(key: &SeriesKey, suffix: &str) -> String {
    let mut name = String::with_capacity(key.name.len() + 8);
    name.push_str("loom_");
    for c in key.name.chars() {
        name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    name.push_str(suffix);
    name
}

/// `{k="v",...}` with escaped values, or the empty string for no labels.
fn prom_labels(key: &SeriesKey, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn json_labels(key: &SeriesKey) -> String {
    let pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| {
            format!(
                "\"{k}\":\"{}\"",
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    format!("{{{}}}", pairs.join(","))
}

impl TelemetrySnapshot {
    /// Render the snapshot in the Prometheus text exposition format:
    /// counters as `<name>_total`, gauges plain, histograms as summaries
    /// (`quantile` labels plus `_sum`/`_count`).
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.registry.counters {
            let name = prom_name(key, "_total");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{} {value}", prom_labels(key, None));
        }
        for (key, value) in &self.registry.gauges {
            let name = prom_name(key, "");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{} {value}", prom_labels(key, None));
        }
        for (key, hist) in &self.registry.histograms {
            let name = prom_name(key, "");
            let _ = writeln!(out, "# TYPE {name} summary");
            for &(q, tag) in QUANTILES {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    prom_labels(key, Some(("quantile", tag))),
                    hist.quantile(q)
                );
            }
            let _ = writeln!(out, "{name}_sum{} {}", prom_labels(key, None), hist.sum);
            let _ = writeln!(out, "{name}_count{} {}", prom_labels(key, None), hist.count);
        }
        out
    }

    /// Render the snapshot as JSON lines: one self-contained object per
    /// series (histograms carry count/sum/min/max and p50/p99/p999).
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.registry.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"labels\":{},\"value\":{value}}}",
                key.name,
                json_labels(key)
            );
        }
        for (key, value) in &self.registry.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{value}}}",
                key.name,
                json_labels(key)
            );
        }
        for (key, hist) in &self.registry.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"labels\":{},\"count\":{},\
                 \"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                key.name,
                json_labels(key),
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.quantile(0.5),
                hist.quantile(0.99),
                hist.quantile(0.999),
            );
        }
        out
    }

    /// The interval between `earlier` (a previous snapshot of the same
    /// registry) and this one: counter deltas + per-second rates, current
    /// gauge levels, and interval histograms (bucket-wise subtraction, so
    /// interval quantiles are exact with respect to the bucket layout).
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetryDelta {
        let interval_us = self.at_us.saturating_sub(earlier.at_us);
        let find_counter = |key: &SeriesKey| {
            earlier
                .registry
                .counters
                .iter()
                .find(|(k, _)| k == key)
                .map_or(0, |(_, v)| *v)
        };
        let find_hist = |key: &SeriesKey| {
            earlier
                .registry
                .histograms
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, h)| h.clone())
                .unwrap_or_default()
        };
        TelemetryDelta {
            interval_us,
            counters: self
                .registry
                .counters
                .iter()
                .map(|(key, value)| (key.clone(), value.saturating_sub(find_counter(key))))
                .collect(),
            gauges: self.registry.gauges.clone(),
            histograms: self
                .registry
                .histograms
                .iter()
                .map(|(key, hist)| (key.clone(), hist.since(&find_hist(key))))
                .collect(),
        }
    }
}

/// What changed between two snapshots of one registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryDelta {
    /// Interval length in microseconds.
    pub interval_us: u64,
    /// Counter deltas over the interval, sorted by key.
    pub counters: Vec<(SeriesKey, u64)>,
    /// Gauge levels at the end of the interval, sorted by key.
    pub gauges: Vec<(SeriesKey, i64)>,
    /// Interval histograms (only the samples recorded inside the interval),
    /// sorted by key.
    pub histograms: Vec<(SeriesKey, HistogramSnapshot)>,
}

impl TelemetryDelta {
    /// Interval length in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_us as f64 / 1e6
    }

    /// A counter's per-second rate over the interval (0 for an empty
    /// interval).
    pub fn rate(&self, key: &SeriesKey) -> f64 {
        if self.interval_us == 0 {
            return 0.0;
        }
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0.0, |(_, delta)| *delta as f64 / self.interval_secs())
    }

    /// Sum of a counter's interval deltas across every labelled series of
    /// `name` (e.g. total `serve.rejected` over all shards in this ramp
    /// step).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, delta)| *delta)
            .sum()
    }

    /// Every labelled series of histogram `name` merged into one interval
    /// snapshot — the per-step cross-shard distribution an open-loop ramp
    /// reads its queue-wait and latency quantiles from.
    pub fn histogram_merged(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (key, hist) in &self.histograms {
            if key.name == name {
                merged.merge(hist);
            }
        }
        merged
    }
}

impl fmt::Display for TelemetryDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "interval {:.3}s:", self.interval_secs())?;
        for (key, delta) in &self.counters {
            if *delta > 0 {
                writeln!(f, "  {key} +{delta} ({:.1}/s)", self.rate(key))?;
            }
        }
        for (key, value) in &self.gauges {
            writeln!(f, "  {key} = {value}")?;
        }
        for (key, hist) in &self.histograms {
            if hist.count > 0 {
                writeln!(
                    f,
                    "  {key} n={} p50={}us p99={}us p999={}us max={}us",
                    hist.count,
                    hist.quantile(0.5),
                    hist.quantile(0.99),
                    hist.quantile(0.999),
                    hist.max
                )?;
            }
        }
        Ok(())
    }
}

/// Validate a Prometheus text exposition: every non-comment line must be
/// `name[{labels}] value` with a well-formed metric name, balanced label
/// braces, and a numeric value. Returns the distinct series names, sorted.
///
/// This is the checker the CI telemetry smoke step runs over
/// `examples/telemetry.rs` output — a deliberate consumer-side guard that
/// the exposition stays machine-parseable.
///
/// # Errors
///
/// The first malformed line, described with its line number.
pub fn validate_prometheus(text: &str) -> Result<Vec<String>, String> {
    let mut names = std::collections::BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| Err(format!("line {}: {what}: {line}", lineno + 1));
        let (series, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return err("expected `name value`"),
        };
        if value.parse::<f64>().is_err() {
            return err("value is not numeric");
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return err("unbalanced label braces");
                }
                let body = &labels[..labels.len() - 1];
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let well_formed = pair
                        .split_once('=')
                        .is_some_and(|(_, v)| v.starts_with('"') && v.ends_with('"'));
                    if !well_formed {
                        return err("malformed label pair");
                    }
                }
                name
            }
            None => series,
        };
        let valid_name = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit());
        if !valid_name {
            return err("invalid metric name");
        }
        names.insert(name.to_string());
    }
    Ok(names.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let reg = MetricRegistry::new();
        reg.counter("serve.admitted", &[("shard", "0".to_string())])
            .add(5);
        reg.gauge("serve.queue_depth", &[("shard", "0".to_string())])
            .set(2);
        let h = reg.histogram("serve.execute", &[("shard", "0".to_string())]);
        for v in [100, 200, 300] {
            h.record(v);
        }
        TelemetrySnapshot {
            at_us: 1_000_000,
            registry: reg.snapshot(),
        }
    }

    #[test]
    fn prometheus_exposition_validates_and_names_series() {
        let text = sample_snapshot().prometheus();
        let names = validate_prometheus(&text).expect("valid exposition");
        assert!(names.contains(&"loom_serve_admitted_total".to_string()));
        assert!(names.contains(&"loom_serve_queue_depth".to_string()));
        assert!(names.contains(&"loom_serve_execute".to_string()));
        assert!(names.contains(&"loom_serve_execute_count".to_string()));
        assert!(text.contains("quantile=\"0.99\""));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("loom_x{unbalanced 1").is_err());
        assert!(validate_prometheus("loom_x not_a_number").is_err());
        assert!(validate_prometheus("1bad_name 2").is_err());
        assert!(validate_prometheus("loom_x{k=unquoted} 2").is_err());
        assert!(validate_prometheus("# just a comment\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn json_lines_are_one_object_per_series() {
        let out = sample_snapshot().json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(out.contains("\"type\":\"histogram\""));
        assert!(out.contains("\"p99\":"));
    }

    #[test]
    fn since_reports_interval_rates_and_quantiles() {
        let reg = MetricRegistry::new();
        let c = reg.counter("ops", &[]);
        let h = reg.histogram("lat", &[]);
        c.add(10);
        h.record(1_000_000);
        let early = TelemetrySnapshot {
            at_us: 0,
            registry: reg.snapshot(),
        };
        c.add(20);
        h.record(5);
        h.record(5);
        let late = TelemetrySnapshot {
            at_us: 2_000_000,
            registry: reg.snapshot(),
        };
        let delta = late.since(&early);
        assert_eq!(delta.interval_secs(), 2.0);
        let key = &delta.counters[0].0;
        assert_eq!(delta.rate(key), 10.0, "20 more ops over 2s");
        // The interval histogram sees only the two new samples.
        let (_, interval) = &delta.histograms[0];
        assert_eq!(interval.count, 2);
        assert_eq!(interval.quantile(0.99), 5);
        let text = delta.to_string();
        assert!(text.contains("+20"));
        assert!(text.contains("p99=5us"));
    }

    #[test]
    fn delta_sums_and_merges_across_labelled_series() {
        let reg = MetricRegistry::new();
        for shard in 0..3u32 {
            reg.counter("serve.rejected", &[("shard", shard.to_string())])
                .add(u64::from(shard) + 1);
            let h = reg.histogram("serve.queue_wait", &[("shard", shard.to_string())]);
            h.record(10 * (u64::from(shard) + 1));
        }
        let early = TelemetrySnapshot {
            at_us: 0,
            registry: RegistrySnapshot::default(),
        };
        let late = TelemetrySnapshot {
            at_us: 1_000_000,
            registry: reg.snapshot(),
        };
        let delta = late.since(&early);
        // 1 + 2 + 3 rejections across the three shard series.
        assert_eq!(delta.counter_sum("serve.rejected"), 6);
        assert_eq!(delta.counter_sum("serve.admitted"), 0);
        let merged = delta.histogram_merged("serve.queue_wait");
        assert_eq!(merged.count, 3);
        // The merged p99 is the largest shard's sample (log-linear bucket
        // upper bound, ≤ 1/32 above 30).
        assert!(merged.quantile(0.99) >= 30);
        assert_eq!(delta.histogram_merged("missing").count, 0);
    }
}
