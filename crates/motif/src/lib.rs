//! # loom-motif
//!
//! Query workloads, motifs and the TPSTry++ data structure for LOOM
//! (Firth & Missier, GraphQ@EDBT 2016).
//!
//! This crate implements everything the paper needs in order to reason about
//! a *workload of sub-graph pattern matching queries* `Q`:
//!
//! * [`query`] — pattern queries ([`PatternQuery`]) and their answer
//!   semantics (labelled sub-graph isomorphism, paper §2);
//! * [`isomorphism`] — a VF2-style backtracking matcher used to execute
//!   queries exactly and to verify signature matches;
//! * [`canonical`] — canonical codes for small labelled graphs, so that
//!   isomorphic motifs collapse onto a single TPSTry++ node;
//! * [`primes`] / [`signature`] — the number-theoretic graph signatures of
//!   Song et al. (VLDB'15) used by the paper for cheap, incremental,
//!   non-authoritative matching (§4.2–4.3);
//! * [`tpstry`] — the TPSTry++ DAG: an intensional encoding of the motifs
//!   that occur in `Q`, each node carrying its support and p-value (§4.2);
//! * [`mining`] — the paper's Algorithm 1, which weaves every connected
//!   sub-graph of each query graph into the TPSTry++;
//! * [`workload`] — workload model (queries + relative frequencies) and
//!   deterministic workload generators (path / branch / cycle queries with
//!   uniform or Zipf frequencies);
//! * [`fixtures`] — the worked examples from the paper's Figures 1–3, used
//!   in tests, examples and documentation.
//!
//! ## Example: mining motifs from the paper's example workload
//!
//! ```
//! use loom_motif::fixtures::paper_example_workload;
//! use loom_motif::mining::MotifMiner;
//!
//! let workload = paper_example_workload();
//! let miner = MotifMiner::default();
//! let tpstry = miner.mine(&workload).unwrap();
//! // The abc path is a frequent motif: it appears in q2 (a-b-c) and q3 (a-b-c-d).
//! assert!(tpstry.node_count() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canonical;
pub mod error;
pub mod fixtures;
pub mod isomorphism;
pub mod mining;
pub mod primes;
pub mod query;
pub mod signature;
pub mod tpstry;
pub mod workload;

pub use error::MotifError;
pub use query::{PatternQuery, QueryId};
pub use signature::{PrimeTable, Signature};
pub use tpstry::{MotifId, MotifNode, Tpstry};
pub use workload::Workload;

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::canonical::canonical_code;
    pub use crate::error::MotifError;
    pub use crate::fixtures::{paper_example_graph, paper_example_workload};
    pub use crate::isomorphism::{find_matches, find_matches_limited, has_match};
    pub use crate::mining::MotifMiner;
    pub use crate::query::{PatternQuery, QueryId};
    pub use crate::signature::{PrimeTable, Signature};
    pub use crate::tpstry::{MotifId, Tpstry};
    pub use crate::workload::{Workload, WorkloadGenerator};
}
