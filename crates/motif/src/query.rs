//! Pattern matching queries.
//!
//! A pattern matching query (paper §2) is a small labelled graph; its answer
//! over a data graph `G` is the set of sub-graphs of `G` isomorphic to it
//! (matching structure *and* labels). This module provides the query type and
//! builders for the query shapes used in the paper and the experiments:
//! label paths, branches (stars), and cycles.

use crate::error::{MotifError, Result};
use loom_graph::prelude::*;
use serde::{Deserialize, Serialize};

/// Identifier of a query within a workload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Create a query id from a raw integer.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A sub-graph pattern matching query: a connected labelled graph plus an id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternQuery {
    id: QueryId,
    graph: LabelledGraph,
}

impl PatternQuery {
    /// Wrap an arbitrary connected labelled graph as a query.
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidQuery`] if the graph is empty or
    /// disconnected (the paper only considers connected pattern graphs).
    pub fn new(id: QueryId, graph: LabelledGraph) -> Result<Self> {
        if graph.is_empty() {
            return Err(MotifError::InvalidQuery(format!(
                "query {id} has no vertices"
            )));
        }
        if !loom_graph::traversal::is_connected(&graph) {
            return Err(MotifError::InvalidQuery(format!(
                "query {id} is disconnected"
            )));
        }
        Ok(Self { id, graph })
    }

    /// A path query `l0 - l1 - ... - l{n-1}` over the given label sequence.
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidQuery`] if `labels` is empty.
    pub fn path(id: QueryId, labels: &[Label]) -> Result<Self> {
        if labels.is_empty() {
            return Err(MotifError::InvalidQuery("path query needs labels".into()));
        }
        let mut g = LabelledGraph::with_capacity(labels.len(), labels.len());
        let mut prev = None;
        for &label in labels {
            let v = g.add_vertex(label);
            if let Some(p) = prev {
                g.add_edge(p, v)?;
            }
            prev = Some(v);
        }
        Self::new(id, g)
    }

    /// A cycle query over the given label sequence (requires ≥ 3 labels).
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidQuery`] for fewer than three labels.
    pub fn cycle(id: QueryId, labels: &[Label]) -> Result<Self> {
        if labels.len() < 3 {
            return Err(MotifError::InvalidQuery(
                "cycle query needs at least three labels".into(),
            ));
        }
        let mut query = Self::path(id, labels)?;
        let ids = query.graph.vertices_sorted();
        query.graph.add_edge(ids[0], ids[ids.len() - 1])?;
        Ok(query)
    }

    /// A branch (star) query: a centre label connected to each leaf label.
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidQuery`] if there are no leaves.
    pub fn branch(id: QueryId, centre: Label, leaves: &[Label]) -> Result<Self> {
        if leaves.is_empty() {
            return Err(MotifError::InvalidQuery("branch query needs leaves".into()));
        }
        let mut g = LabelledGraph::with_capacity(leaves.len() + 1, leaves.len());
        let hub = g.add_vertex(centre);
        for &leaf in leaves {
            let v = g.add_vertex(leaf);
            g.add_edge(hub, v)?;
        }
        Self::new(id, g)
    }

    /// The query id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The query's pattern graph.
    pub fn graph(&self) -> &LabelledGraph {
        &self.graph
    }

    /// Number of vertices in the pattern.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges in the pattern.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The multiset of labels used by this query, sorted.
    pub fn label_sequence(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self
            .graph
            .labelled_vertices()
            .map(|(_, label)| label)
            .collect();
        labels.sort_unstable();
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    #[test]
    fn path_query_structure() {
        let q = PatternQuery::path(QueryId::new(1), &[l(0), l(1), l(2)]).unwrap();
        assert_eq!(q.vertex_count(), 3);
        assert_eq!(q.edge_count(), 2);
        assert_eq!(q.id().to_string(), "q1");
        assert_eq!(q.label_sequence(), vec![l(0), l(1), l(2)]);
    }

    #[test]
    fn cycle_query_structure() {
        let q = PatternQuery::cycle(QueryId::new(2), &[l(0), l(1), l(0), l(1)]).unwrap();
        assert_eq!(q.vertex_count(), 4);
        assert_eq!(q.edge_count(), 4);
        assert!(PatternQuery::cycle(QueryId::new(3), &[l(0), l(1)]).is_err());
    }

    #[test]
    fn branch_query_structure() {
        let q = PatternQuery::branch(QueryId::new(4), l(0), &[l(1), l(2), l(3)]).unwrap();
        assert_eq!(q.vertex_count(), 4);
        assert_eq!(q.edge_count(), 3);
        assert!(PatternQuery::branch(QueryId::new(5), l(0), &[]).is_err());
    }

    #[test]
    fn rejects_empty_and_disconnected_graphs() {
        assert!(PatternQuery::new(QueryId::new(0), LabelledGraph::new()).is_err());
        let mut g = LabelledGraph::new();
        g.add_vertex(l(0));
        g.add_vertex(l(1));
        assert!(PatternQuery::new(QueryId::new(0), g).is_err());
        assert!(PatternQuery::path(QueryId::new(0), &[]).is_err());
    }

    #[test]
    fn single_vertex_query_is_valid() {
        let q = PatternQuery::path(QueryId::new(9), &[l(2)]).unwrap();
        assert_eq!(q.vertex_count(), 1);
        assert_eq!(q.edge_count(), 0);
    }
}
