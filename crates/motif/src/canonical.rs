//! Canonical codes for small labelled graphs.
//!
//! The G-Trie work that inspired TPSTry++ stores each node's graph in a
//! canonical form so that isomorphic graphs map to the same trie node. The
//! paper replaces unlabelled canonical forms with label-aware signatures,
//! which are *non-authoritative*; we additionally keep an exact canonical
//! code for the small motif graphs stored in TPSTry++ nodes so that node
//! identity is never corrupted by a signature collision.
//!
//! The code is the lexicographically smallest serialisation of the label
//! sequence plus adjacency matrix over all vertex permutations. Permutations
//! are pruned by first grouping vertices into (label, degree) classes, which
//! keeps the search practical for motif-sized graphs (≲ 10 vertices). Above
//! [`EXACT_LIMIT`] vertices the code degrades to a strong but inexact
//! invariant (sorted label/degree/neighbour-label profile), which is
//! acceptable because motifs of that size are never produced by the miner's
//! default configuration.

use loom_graph::{LabelledGraph, VertexId};

/// Maximum graph size for which the canonical code is exact.
pub const EXACT_LIMIT: usize = 10;

/// A canonical code: equal codes ⇔ isomorphic graphs (exact up to
/// [`EXACT_LIMIT`] vertices, a strong invariant beyond that).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalCode(Vec<u32>);

impl CanonicalCode {
    /// The raw code words.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

/// Compute the canonical code of a labelled graph.
pub fn canonical_code(graph: &LabelledGraph) -> CanonicalCode {
    let n = graph.vertex_count();
    if n == 0 {
        return CanonicalCode(vec![]);
    }
    if n > EXACT_LIMIT {
        return CanonicalCode(invariant_code(graph));
    }
    let vertices = graph.vertices_sorted();
    // Group vertices by (label, degree); only permutations that respect the
    // groups can be automorphisms, so we only permute within groups.
    let mut groups: Vec<(u64, Vec<VertexId>)> = Vec::new();
    {
        let mut keyed: Vec<(u64, VertexId)> = vertices
            .iter()
            .map(|&v| {
                let key = (u64::from(graph.label(v).expect("vertex exists").raw()) << 32)
                    | graph.degree(v) as u64;
                (key, v)
            })
            .collect();
        keyed.sort_unstable();
        for (key, v) in keyed {
            match groups.last_mut() {
                Some((k, members)) if *k == key => members.push(v),
                _ => groups.push((key, vec![v])),
            }
        }
    }

    let mut best: Option<Vec<u32>> = None;
    let mut arrangement: Vec<VertexId> = Vec::with_capacity(n);
    permute_groups(graph, &groups, 0, &mut arrangement, &mut best);
    CanonicalCode(best.expect("at least one permutation considered"))
}

fn permute_groups(
    graph: &LabelledGraph,
    groups: &[(u64, Vec<VertexId>)],
    group_index: usize,
    arrangement: &mut Vec<VertexId>,
    best: &mut Option<Vec<u32>>,
) {
    if group_index == groups.len() {
        let code = encode(graph, arrangement);
        if best.as_ref().map(|b| code < *b).unwrap_or(true) {
            *best = Some(code);
        }
        return;
    }
    let members = &groups[group_index].1;
    let mut perm: Vec<VertexId> = members.clone();
    permute_within(graph, groups, group_index, &mut perm, 0, arrangement, best);
}

fn permute_within(
    graph: &LabelledGraph,
    groups: &[(u64, Vec<VertexId>)],
    group_index: usize,
    perm: &mut Vec<VertexId>,
    start: usize,
    arrangement: &mut Vec<VertexId>,
    best: &mut Option<Vec<u32>>,
) {
    if start == perm.len() {
        let len_before = arrangement.len();
        arrangement.extend_from_slice(perm);
        permute_groups(graph, groups, group_index + 1, arrangement, best);
        arrangement.truncate(len_before);
        return;
    }
    for i in start..perm.len() {
        perm.swap(start, i);
        permute_within(
            graph,
            groups,
            group_index,
            perm,
            start + 1,
            arrangement,
            best,
        );
        perm.swap(start, i);
    }
}

/// Encode a fixed vertex arrangement as label sequence + upper-triangular
/// adjacency bits (one u32 word per bit, kept simple since codes are short).
fn encode(graph: &LabelledGraph, arrangement: &[VertexId]) -> Vec<u32> {
    let n = arrangement.len();
    let mut code = Vec::with_capacity(n + n * (n - 1) / 2);
    for &v in arrangement {
        code.push(graph.label(v).expect("vertex exists").raw());
    }
    for i in 0..n {
        for j in (i + 1)..n {
            code.push(u32::from(
                graph.contains_edge(arrangement[i], arrangement[j]),
            ));
        }
    }
    code
}

/// Inexact fallback invariant for oversized graphs: sorted
/// (label, degree, sorted neighbour labels) profiles flattened into words.
fn invariant_code(graph: &LabelledGraph) -> Vec<u32> {
    let mut profiles: Vec<Vec<u32>> = graph
        .vertices_sorted()
        .into_iter()
        .map(|v| {
            let mut profile = vec![
                graph.label(v).expect("vertex exists").raw(),
                graph.degree(v) as u32,
            ];
            let mut neighbour_labels: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .map(|&n| graph.label(n).expect("neighbour exists").raw())
                .collect();
            neighbour_labels.sort_unstable();
            profile.extend(neighbour_labels);
            profile
        })
        .collect();
    profiles.sort();
    let mut code = vec![
        u32::MAX,
        graph.vertex_count() as u32,
        graph.edge_count() as u32,
    ];
    for p in profiles {
        code.push(u32::MAX - 1); // separator
        code.extend(p);
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::are_isomorphic;
    use loom_graph::generators::regular::{cycle_graph, path_graph, star_graph};
    use loom_graph::Label;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    #[test]
    fn isomorphic_graphs_share_a_code() {
        // Same path with ids assigned in different orders.
        let a = path_graph(4, &[l(0), l(1), l(2), l(3)]);
        let mut b = LabelledGraph::new();
        let v3 = b.add_vertex(l(3));
        let v2 = b.add_vertex(l(2));
        let v1 = b.add_vertex(l(1));
        let v0 = b.add_vertex(l(0));
        b.add_edge(v0, v1).unwrap();
        b.add_edge(v1, v2).unwrap();
        b.add_edge(v2, v3).unwrap();
        assert!(are_isomorphic(&a, &b));
        assert_eq!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let path = path_graph(4, &[l(0), l(1), l(0), l(1)]);
        let cycle = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
        assert_ne!(canonical_code(&path), canonical_code(&cycle));

        let star = star_graph(3, &[l(0), l(1), l(1), l(1)]);
        let path4 = path_graph(4, &[l(1), l(0), l(1), l(1)]);
        assert_ne!(canonical_code(&star), canonical_code(&path4));
    }

    #[test]
    fn label_permutations_matter() {
        let ab = path_graph(2, &[l(0), l(1)]);
        let ba = path_graph(2, &[l(1), l(0)]);
        // a-b and b-a are the same undirected labelled edge.
        assert_eq!(canonical_code(&ab), canonical_code(&ba));
        let aa = path_graph(2, &[l(0), l(0)]);
        assert_ne!(canonical_code(&ab), canonical_code(&aa));
    }

    #[test]
    fn empty_and_single_vertex_codes() {
        assert_eq!(
            canonical_code(&LabelledGraph::new()).as_slice(),
            &[] as &[u32]
        );
        let mut g = LabelledGraph::new();
        g.add_vertex(l(7));
        assert_eq!(canonical_code(&g).as_slice(), &[7]);
    }

    #[test]
    fn large_graph_uses_invariant_fallback() {
        let big = cycle_graph(EXACT_LIMIT + 5, &[l(0), l(1)]);
        let code = canonical_code(&big);
        assert_eq!(code.as_slice()[0], u32::MAX);
        // The invariant still distinguishes clearly different graphs.
        let other = path_graph(EXACT_LIMIT + 5, &[l(0), l(1)]);
        assert_ne!(code, canonical_code(&other));
    }

    #[test]
    fn code_is_stable_under_id_relabelling() {
        // Same square, ids shifted by 100.
        let base = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
        let mut shifted = LabelledGraph::new();
        for v in base.vertices_sorted() {
            shifted.insert_vertex(VertexId::new(v.raw() + 100), base.label(v).unwrap());
        }
        for e in base.edges_sorted() {
            shifted
                .add_edge(
                    VertexId::new(e.lo.raw() + 100),
                    VertexId::new(e.hi.raw() + 100),
                )
                .unwrap();
        }
        assert_eq!(canonical_code(&base), canonical_code(&shifted));
    }
}
