//! Number-theoretic graph signatures (after Song et al., VLDB 2015).
//!
//! A signature encodes a small labelled graph as a product of prime factors:
//! one factor per vertex (determined by its label) and one per edge
//! (determined by the unordered pair of endpoint labels). Two properties make
//! this useful for streaming motif matching (paper §4.2–4.3):
//!
//! * **Incrementality** — adding a vertex or an edge to a sub-graph multiplies
//!   its signature by a single factor, so the signature of a growing window
//!   sub-graph is maintained in O(1) per update.
//! * **Divisibility ⇒ containment (of the factor multiset)** — if a window
//!   sub-graph's signature is not divisible by a motif's signature, the
//!   sub-graph cannot contain a match for the motif. The converse does not
//!   hold (the check is *non-authoritative*), exactly as in the paper; callers
//!   that need certainty verify with [`crate::isomorphism`].
//!
//! Rather than multiplying into an unbounded big integer, a [`Signature`]
//! stores the **sorted multiset of prime factors** plus a 128-bit wrapping
//! product used as a cheap hash. Divisibility is multiset inclusion, which is
//! exact with respect to the factor model and never overflows.

use crate::error::{MotifError, Result};
use crate::primes::LabelPrimes;
use loom_graph::{Label, LabelledGraph};
use serde::{Deserialize, Serialize};

/// Mapping from labels / label pairs to prime factors, shared by every
/// signature in a pipeline. Wraps [`LabelPrimes`] with error reporting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrimeTable {
    primes: LabelPrimes,
}

impl PrimeTable {
    /// Build a table for a label alphabet of `label_count` labels.
    pub fn new(label_count: u32) -> Self {
        Self {
            primes: LabelPrimes::new(label_count),
        }
    }

    /// The alphabet size.
    pub fn label_count(&self) -> u32 {
        self.primes.label_count()
    }

    /// Factor contributed by a vertex with the given label.
    pub fn vertex_factor(&self, label: Label) -> Result<u64> {
        self.primes
            .vertex_prime(label.raw())
            .ok_or(MotifError::PrimeTableExhausted {
                capacity: self.primes.label_count(),
                label: label.raw(),
            })
    }

    /// Factor contributed by an edge between vertices labelled `a` and `b`.
    pub fn edge_factor(&self, a: Label, b: Label) -> Result<u64> {
        self.primes
            .pair_prime(a.raw(), b.raw())
            .ok_or(MotifError::PrimeTableExhausted {
                capacity: self.primes.label_count(),
                label: a.raw().max(b.raw()),
            })
    }

    /// Compute the signature of a whole graph from scratch.
    pub fn signature_of(&self, graph: &LabelledGraph) -> Result<Signature> {
        let mut signature = Signature::empty();
        for (_, label) in graph.labelled_vertices() {
            signature.multiply(self.vertex_factor(label)?);
        }
        for e in graph.edges() {
            let la = graph.label(e.lo).expect("edge endpoint exists");
            let lb = graph.label(e.hi).expect("edge endpoint exists");
            signature.multiply(self.edge_factor(la, lb)?);
        }
        Ok(signature)
    }
}

/// A multiplicative graph signature: a sorted multiset of prime factors plus
/// a 128-bit wrapping product used for fast equality short-circuiting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Signature {
    /// Sorted prime factors with multiplicity.
    factors: Vec<u64>,
    /// Wrapping product of the factors (hash only — not unique).
    product: u128,
}

impl Signature {
    /// The signature of the empty graph (multiplicative identity).
    pub fn empty() -> Self {
        Self {
            factors: Vec::new(),
            product: 1,
        }
    }

    /// The signature of a single vertex with the given label.
    pub fn single_vertex(table: &PrimeTable, label: Label) -> Result<Self> {
        let mut s = Self::empty();
        s.multiply(table.vertex_factor(label)?);
        Ok(s)
    }

    /// Multiply a raw factor into the signature (keeps factors sorted).
    pub fn multiply(&mut self, factor: u64) {
        let position = self.factors.partition_point(|&f| f < factor);
        self.factors.insert(position, factor);
        self.product = self.product.wrapping_mul(u128::from(factor));
    }

    /// Return a copy with the vertex factor for `label` multiplied in.
    pub fn with_vertex(&self, table: &PrimeTable, label: Label) -> Result<Self> {
        let mut next = self.clone();
        next.multiply(table.vertex_factor(label)?);
        Ok(next)
    }

    /// Return a copy with the edge factor for `(a, b)` multiplied in.
    pub fn with_edge(&self, table: &PrimeTable, a: Label, b: Label) -> Result<Self> {
        let mut next = self.clone();
        next.multiply(table.edge_factor(a, b)?);
        Ok(next)
    }

    /// Number of prime factors (vertices + edges encoded).
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// Whether this is the empty (identity) signature.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The wrapping 128-bit product (a cheap hash, not unique).
    pub fn product_hash(&self) -> u128 {
        self.product
    }

    /// The sorted factor multiset.
    pub fn factors(&self) -> &[u64] {
        &self.factors
    }

    /// Whether `self` divides `other`, i.e. every factor of `self` appears in
    /// `other` with at least the same multiplicity. A sub-graph's signature
    /// always divides its super-graph's signature.
    pub fn divides(&self, other: &Signature) -> bool {
        if self.factors.len() > other.factors.len() {
            return false;
        }
        // Both factor lists are sorted: a single merge pass suffices.
        let mut oi = 0usize;
        for &f in &self.factors {
            loop {
                if oi >= other.factors.len() {
                    return false;
                }
                match other.factors[oi].cmp(&f) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// Whether `other` divides `self`.
    pub fn is_divisible_by(&self, other: &Signature) -> bool {
        other.divides(self)
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sig[{} factors, hash={:x}]",
            self.factors.len(),
            self.product
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::{cycle_graph, path_graph};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    #[test]
    fn empty_signature_is_identity() {
        let s = Signature::empty();
        assert!(s.is_empty());
        assert_eq!(s.product_hash(), 1);
        let other = Signature::empty();
        assert!(s.divides(&other));
        assert!(other.divides(&s));
    }

    #[test]
    fn signature_is_order_independent() {
        let table = PrimeTable::new(4);
        // Build a-b-c two ways: batch and incrementally in different orders.
        let graph = path_graph(3, &[l(0), l(1), l(2)]);
        let batch = table.signature_of(&graph).unwrap();

        let mut incremental = Signature::empty();
        incremental.multiply(table.edge_factor(l(1), l(2)).unwrap());
        incremental.multiply(table.vertex_factor(l(2)).unwrap());
        incremental.multiply(table.vertex_factor(l(0)).unwrap());
        incremental.multiply(table.edge_factor(l(0), l(1)).unwrap());
        incremental.multiply(table.vertex_factor(l(1)).unwrap());

        assert_eq!(batch, incremental);
        assert_eq!(batch.product_hash(), incremental.product_hash());
    }

    #[test]
    fn subgraph_signature_divides_supergraph() {
        let table = PrimeTable::new(4);
        let ab = path_graph(2, &[l(0), l(1)]);
        let abc = path_graph(3, &[l(0), l(1), l(2)]);
        let abcd = path_graph(4, &[l(0), l(1), l(2), l(3)]);
        let s_ab = table.signature_of(&ab).unwrap();
        let s_abc = table.signature_of(&abc).unwrap();
        let s_abcd = table.signature_of(&abcd).unwrap();
        assert!(s_ab.divides(&s_abc));
        assert!(s_ab.divides(&s_abcd));
        assert!(s_abc.divides(&s_abcd));
        assert!(!s_abcd.divides(&s_abc));
        assert!(s_abcd.is_divisible_by(&s_abc));
    }

    #[test]
    fn different_topologies_with_same_labels_can_differ() {
        let table = PrimeTable::new(2);
        let path = path_graph(4, &[l(0), l(1), l(0), l(1)]);
        let cycle = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
        let s_path = table.signature_of(&path).unwrap();
        let s_cycle = table.signature_of(&cycle).unwrap();
        // The cycle has one more edge, so the path divides the cycle but not
        // vice versa, and the signatures differ.
        assert_ne!(s_path, s_cycle);
        assert!(s_path.divides(&s_cycle));
        assert!(!s_cycle.divides(&s_path));
    }

    #[test]
    fn disjoint_label_sets_do_not_divide() {
        let table = PrimeTable::new(6);
        let ab = path_graph(2, &[l(0), l(1)]);
        let cd = path_graph(2, &[l(2), l(3)]);
        let s_ab = table.signature_of(&ab).unwrap();
        let s_cd = table.signature_of(&cd).unwrap();
        assert!(!s_ab.divides(&s_cd));
        assert!(!s_cd.divides(&s_ab));
    }

    #[test]
    fn with_vertex_and_with_edge_are_incremental() {
        let table = PrimeTable::new(3);
        let single = Signature::single_vertex(&table, l(0)).unwrap();
        let extended = single
            .with_vertex(&table, l(1))
            .unwrap()
            .with_edge(&table, l(0), l(1))
            .unwrap();
        let direct = table.signature_of(&path_graph(2, &[l(0), l(1)])).unwrap();
        assert_eq!(extended, direct);
    }

    #[test]
    fn exceeding_the_alphabet_is_an_error() {
        let table = PrimeTable::new(2);
        assert!(table.vertex_factor(l(5)).is_err());
        assert!(table.edge_factor(l(0), l(5)).is_err());
        let mut g = LabelledGraph::new();
        g.add_vertex(l(9));
        assert!(table.signature_of(&g).is_err());
    }

    #[test]
    fn display_mentions_factor_count() {
        let table = PrimeTable::new(2);
        let s = table.signature_of(&path_graph(2, &[l(0), l(1)])).unwrap();
        assert!(s.to_string().contains("3 factors"));
    }

    #[test]
    fn multiplicity_matters_for_divisibility() {
        let table = PrimeTable::new(2);
        // a-a single edge vs a-a-a path (two a-a edges, three a vertices).
        let aa = path_graph(2, &[l(0), l(0)]);
        let aaa = path_graph(3, &[l(0), l(0), l(0)]);
        let s_aa = table.signature_of(&aa).unwrap();
        let s_aaa = table.signature_of(&aaa).unwrap();
        assert!(s_aa.divides(&s_aaa));
        // Two disjoint a-a edges require factor multiplicity 2 for the edge
        // prime, which a single a-a edge does not have.
        let mut two_edges = Signature::empty();
        two_edges.multiply(table.edge_factor(l(0), l(0)).unwrap());
        two_edges.multiply(table.edge_factor(l(0), l(0)).unwrap());
        let mut one_edge = Signature::empty();
        one_edge.multiply(table.edge_factor(l(0), l(0)).unwrap());
        assert!(one_edge.divides(&two_edges));
        assert!(!two_edges.divides(&one_edge));
    }
}
