//! Motif mining — the paper's Algorithm 1.
//!
//! For every query graph in the workload, the miner enumerates its connected
//! sub-graphs co-recursively: starting from each single vertex, it repeatedly
//! adds one incident edge at a time, inserting every intermediate sub-graph
//! into the TPSTry++ and recording a parent → child extension link. Support
//! is added once per (motif, query) pair weighted by the query's frequency,
//! so a node's p-value is "the probability that a query drawn from `Q`
//! contains this motif".
//!
//! The enumeration is exponential in the worst case, but query graphs are
//! small; the miner additionally enforces configurable vertex/edge caps so a
//! pathological workload cannot blow up the trie.

use crate::error::{MotifError, Result};
use crate::query::PatternQuery;
use crate::signature::PrimeTable;
use crate::tpstry::{MotifId, Tpstry};
use crate::workload::Workload;
use loom_graph::fxhash::FxHashSet;
use loom_graph::ids::EdgeKey;
use loom_graph::{LabelledGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Configuration for the motif miner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotifMiner {
    /// Largest motif (in vertices) that will be inserted into the trie.
    pub max_motif_vertices: usize,
    /// Largest motif (in edges) that will be inserted into the trie.
    pub max_motif_edges: usize,
}

impl Default for MotifMiner {
    fn default() -> Self {
        Self {
            max_motif_vertices: 6,
            max_motif_edges: 8,
        }
    }
}

impl MotifMiner {
    /// Mine a fresh TPSTry++ from a workload. The trie's prime table is sized
    /// to the workload's label alphabet.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate configurations or if a query uses more
    /// labels than its declared alphabet (impossible for workloads built via
    /// [`Workload`]'s constructors).
    pub fn mine(&self, workload: &Workload) -> Result<Tpstry> {
        let table = PrimeTable::new(workload.label_alphabet_size());
        self.mine_with_table(workload, table)
    }

    /// Mine a TPSTry++ using an explicit prime table (so signatures stay
    /// comparable with other components built against the same table).
    ///
    /// # Errors
    ///
    /// See [`MotifMiner::mine`].
    pub fn mine_with_table(&self, workload: &Workload, table: PrimeTable) -> Result<Tpstry> {
        if self.max_motif_vertices == 0 {
            return Err(MotifError::InvalidConfig(
                "max_motif_vertices must be positive".into(),
            ));
        }
        let mut trie = Tpstry::new(table);
        for (index, (query, frequency)) in workload.iter().enumerate() {
            let _ = index;
            self.weave(query, frequency, &mut trie)?;
        }
        debug_assert!(trie.check_invariants().is_ok());
        Ok(trie)
    }

    /// Fold a single query into an existing trie (the "continuous summary"
    /// use-case: the workload is observed as a stream of queries).
    ///
    /// # Errors
    ///
    /// Fails if the query's labels exceed the trie's prime table alphabet.
    pub fn weave(&self, query: &PatternQuery, weight: f64, trie: &mut Tpstry) -> Result<()> {
        trie.record_query_weight(weight);
        let graph = query.graph();
        let mut seen: FxHashSet<SubgraphKey> = FxHashSet::default();

        for start in graph.vertices_sorted() {
            let state = SubgraphState::single(start);
            self.corecurse(graph, query, weight, state, None, trie, &mut seen)?;
        }
        Ok(())
    }

    /// The co-recursive step of Algorithm 1: insert the current sub-graph,
    /// link it to the sub-graph it extends, and recurse into every one-edge
    /// extension.
    #[allow(clippy::too_many_arguments)]
    fn corecurse(
        &self,
        graph: &LabelledGraph,
        query: &PatternQuery,
        weight: f64,
        state: SubgraphState,
        parent: Option<MotifId>,
        trie: &mut Tpstry,
        seen: &mut FxHashSet<SubgraphKey>,
    ) -> Result<()> {
        let key = state.key();
        let already_seen = !seen.insert(key);

        // Insert (or find) the node and record support + the extension link.
        let motif = loom_graph::subgraph::edge_subgraph(graph, &state.vertices, &state.edges);
        let id = trie.insert_motif(&motif)?;
        trie.add_support(id, query.id(), weight);
        if let Some(parent_id) = parent {
            trie.link(parent_id, id);
        }
        if already_seen {
            // The sub-graph (and everything reachable from it) has already
            // been enumerated for this query; only the new link above was
            // worth recording.
            return Ok(());
        }

        // Enumerate one-edge extensions: edges incident to the sub-graph that
        // are not part of it yet.
        if state.edges.len() >= self.max_motif_edges {
            return Ok(());
        }
        let mut extensions: Vec<EdgeKey> = Vec::new();
        for &v in &state.vertices {
            for &n in graph.neighbors(v) {
                let e = EdgeKey::new(v, n);
                if !state.edges.contains(&e) {
                    extensions.push(e);
                }
            }
        }
        extensions.sort_unstable();
        extensions.dedup();

        for e in extensions {
            let adds_vertex = !state.vertices.contains(&e.lo) || !state.vertices.contains(&e.hi);
            if adds_vertex && state.vertices.len() >= self.max_motif_vertices {
                continue;
            }
            let next = state.extend(e);
            self.corecurse(graph, query, weight, next, Some(id), trie, seen)?;
        }
        Ok(())
    }
}

/// Dedup key for a sub-graph during one query's enumeration: the sorted edge
/// list plus sorted vertex list (vertices matter for the single-vertex case).
type SubgraphKey = (Vec<VertexId>, Vec<EdgeKey>);

/// A connected sub-graph of the query graph under construction.
#[derive(Debug, Clone)]
struct SubgraphState {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeKey>,
}

impl SubgraphState {
    fn single(v: VertexId) -> Self {
        Self {
            vertices: vec![v],
            edges: Vec::new(),
        }
    }

    fn extend(&self, e: EdgeKey) -> Self {
        let mut vertices = self.vertices.clone();
        for v in [e.lo, e.hi] {
            if !vertices.contains(&v) {
                vertices.push(v);
            }
        }
        vertices.sort_unstable();
        let mut edges = self.edges.clone();
        edges.push(e);
        edges.sort_unstable();
        Self { vertices, edges }
    }

    fn key(&self) -> SubgraphKey {
        let mut vertices = self.vertices.clone();
        vertices.sort_unstable();
        (vertices, self.edges.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example_workload;
    use crate::query::QueryId;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    #[test]
    fn single_path_query_produces_all_prefix_motifs() {
        // The a-b-c path contains motifs: a, b, c, a-b, b-c, a-b-c.
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        assert_eq!(trie.node_count(), 6);
        assert!(trie.check_invariants().is_ok());
        // Every node is supported by the single query, so every p-value is 1.
        for node in trie.nodes() {
            assert!((trie.p_value(node.id()) - 1.0).abs() < 1e-12);
        }
        // Roots exist for each distinct label.
        assert!(trie.root(l(0)).is_some());
        assert!(trie.root(l(1)).is_some());
        assert!(trie.root(l(2)).is_some());
    }

    #[test]
    fn shared_motifs_accumulate_support_across_queries() {
        let q_abc = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let q_abcd = PatternQuery::path(QueryId::new(1), &[l(0), l(1), l(2), l(3)]).unwrap();
        let w = Workload::uniform(vec![q_abc.clone(), q_abcd]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        // The a-b-c motif is contained in both queries → p-value 1.0.
        let abc = trie
            .find_isomorphic(&path_graph(3, &[l(0), l(1), l(2)]))
            .expect("abc motif present");
        assert!((trie.p_value(abc) - 1.0).abs() < 1e-12);
        // The a-b-c-d motif occurs only in the second query → p-value 0.5.
        let abcd = trie
            .find_isomorphic(&path_graph(4, &[l(0), l(1), l(2), l(3)]))
            .expect("abcd motif present");
        assert!((trie.p_value(abcd) - 0.5).abs() < 1e-12);
        assert!(trie.check_invariants().is_ok());
    }

    #[test]
    fn paper_example_workload_mines_expected_motifs() {
        let w = paper_example_workload();
        let trie = MotifMiner::default().mine(&w).unwrap();
        assert!(trie.check_invariants().is_ok());
        // Figure 2 of the paper shows (among others) these motifs for the
        // Fig. 1 workload: single labels a, b, c, d; edges a-b, b-c, c-d;
        // paths a-b-c, b-c-d, a-b-c-d; the b-a / a-b square and its
        // sub-paths. Check a representative subset.
        for motif in [
            path_graph(1, &[l(0)]),
            path_graph(2, &[l(0), l(1)]),
            path_graph(3, &[l(0), l(1), l(2)]),
            path_graph(4, &[l(0), l(1), l(2), l(3)]),
        ] {
            assert!(
                trie.find_isomorphic(&motif).is_some(),
                "missing motif with {} vertices",
                motif.vertex_count()
            );
        }
        // The a-b edge occurs in every query → p-value 1.
        let ab = trie.find_isomorphic(&path_graph(2, &[l(0), l(1)])).unwrap();
        assert!((trie.p_value(ab) - 1.0).abs() < 1e-12);
        // The a-b-a-b square occurs only in q1 (frequency 1/3).
        let square = trie
            .find_isomorphic(&loom_graph::generators::regular::cycle_graph(
                4,
                &[l(0), l(1), l(0), l(1)],
            ))
            .expect("square motif present");
        assert!((trie.p_value(square) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn links_form_one_edge_extensions() {
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        for node in trie.nodes() {
            for &child in node.children() {
                let child_node = trie.node(child);
                assert_eq!(child_node.edge_count(), node.edge_count() + 1);
                assert!(child_node.vertex_count() <= node.vertex_count() + 1);
            }
        }
    }

    #[test]
    fn size_caps_limit_the_trie() {
        let q = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2), l(3), l(0), l(1)]).unwrap();
        let small = MotifMiner {
            max_motif_vertices: 3,
            max_motif_edges: 2,
        };
        let trie = small
            .mine(&Workload::uniform(vec![q.clone()]).unwrap())
            .unwrap();
        for node in trie.nodes() {
            assert!(node.vertex_count() <= 3);
            assert!(node.edge_count() <= 2);
        }
        let zero = MotifMiner {
            max_motif_vertices: 0,
            max_motif_edges: 0,
        };
        assert!(zero.mine(&Workload::uniform(vec![q]).unwrap()).is_err());
    }

    #[test]
    fn branch_queries_produce_branch_motifs() {
        let q = PatternQuery::branch(QueryId::new(0), l(0), &[l(1), l(2), l(3)]).unwrap();
        let w = Workload::uniform(vec![q]).unwrap();
        let trie = MotifMiner::default().mine(&w).unwrap();
        let star = loom_graph::generators::regular::star_graph(3, &[l(0), l(1), l(2), l(3)]);
        assert!(trie.find_isomorphic(&star).is_some());
        assert!(trie.check_invariants().is_ok());
    }

    #[test]
    fn weaving_queries_incrementally_matches_batch_mining() {
        let q1 = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let q2 = PatternQuery::path(QueryId::new(1), &[l(1), l(2), l(3)]).unwrap();
        let w = Workload::uniform(vec![q1.clone(), q2.clone()]).unwrap();
        let miner = MotifMiner::default();
        let batch = miner.mine(&w).unwrap();

        let table = PrimeTable::new(w.label_alphabet_size());
        let mut incremental = Tpstry::new(table);
        miner.weave(&q1, 0.5, &mut incremental).unwrap();
        miner.weave(&q2, 0.5, &mut incremental).unwrap();

        assert_eq!(batch.node_count(), incremental.node_count());
        for node in batch.nodes() {
            let other = incremental
                .find_isomorphic(node.graph())
                .expect("same motif set");
            assert!((batch.p_value(node.id()) - incremental.p_value(other)).abs() < 1e-9);
        }
    }
}
