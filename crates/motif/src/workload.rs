//! Query workloads: sets of pattern queries with relative frequencies.
//!
//! The paper defines a workload `Q` as a set of pattern matching queries
//! together with each query's relative frequency. [`Workload`] models exactly
//! that; [`WorkloadGenerator`] produces synthetic workloads whose queries
//! share common sub-structure (motifs), with optionally skewed (Zipf)
//! frequencies — the regime the paper motivates.

use crate::error::{MotifError, Result};
use crate::query::{PatternQuery, QueryId};
use loom_graph::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A workload `Q`: pattern queries plus normalised relative frequencies.
#[derive(Debug, Clone)]
pub struct Workload {
    queries: Vec<PatternQuery>,
    frequencies: Vec<f64>,
}

impl Workload {
    /// Build a workload from `(query, weight)` pairs; weights are normalised
    /// to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidWorkload`] if the workload is empty or any
    /// weight is non-positive / non-finite.
    pub fn new(entries: Vec<(PatternQuery, f64)>) -> Result<Self> {
        if entries.is_empty() {
            return Err(MotifError::InvalidWorkload("no queries".into()));
        }
        let mut queries = Vec::with_capacity(entries.len());
        let mut frequencies = Vec::with_capacity(entries.len());
        let mut total = 0.0;
        for (query, weight) in entries {
            if !weight.is_finite() || weight <= 0.0 {
                return Err(MotifError::InvalidWorkload(format!(
                    "query {} has invalid weight {weight}",
                    query.id()
                )));
            }
            total += weight;
            queries.push(query);
            frequencies.push(weight);
        }
        for f in &mut frequencies {
            *f /= total;
        }
        Ok(Self {
            queries,
            frequencies,
        })
    }

    /// Build a workload where every query has the same frequency.
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidWorkload`] if `queries` is empty.
    pub fn uniform(queries: Vec<PatternQuery>) -> Result<Self> {
        let entries = queries.into_iter().map(|q| (q, 1.0)).collect();
        Self::new(entries)
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload has no queries (never true for a constructed
    /// workload, but useful for defensive call sites).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries.
    pub fn queries(&self) -> &[PatternQuery] {
        &self.queries
    }

    /// Iterate over `(query, frequency)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PatternQuery, f64)> + '_ {
        self.queries.iter().zip(self.frequencies.iter().copied())
    }

    /// The normalised frequency of the `i`-th query.
    pub fn frequency(&self, index: usize) -> f64 {
        self.frequencies[index]
    }

    /// Find a query by id.
    pub fn query(&self, id: QueryId) -> Option<&PatternQuery> {
        self.queries.iter().find(|q| q.id() == id)
    }

    /// Draw a query index according to the workload frequencies.
    pub fn sample_index(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.random_range(0.0..1.0);
        let mut cumulative = 0.0;
        for (i, &f) in self.frequencies.iter().enumerate() {
            cumulative += f;
            if x < cumulative {
                return i;
            }
        }
        self.frequencies.len() - 1
    }

    /// Draw a query according to the workload frequencies.
    pub fn sample(&self, rng: &mut StdRng) -> &PatternQuery {
        &self.queries[self.sample_index(rng)]
    }

    /// The size of the label alphabet needed to encode every query
    /// (`max label + 1`).
    pub fn label_alphabet_size(&self) -> u32 {
        self.queries
            .iter()
            .flat_map(|q| q.label_sequence())
            .map(|l| l.raw() + 1)
            .max()
            .unwrap_or(1)
    }

    /// The largest query size (vertices) in the workload.
    pub fn max_query_size(&self) -> usize {
        self.queries
            .iter()
            .map(PatternQuery::vertex_count)
            .max()
            .unwrap_or(0)
    }
}

/// The shape of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryShape {
    /// A label path.
    Path,
    /// A star with a centre label and leaves.
    Branch,
    /// A label cycle.
    Cycle,
}

/// Generator for synthetic workloads with shared motifs and skewed
/// frequencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadGenerator {
    /// Number of queries to generate.
    pub query_count: usize,
    /// Label alphabet size.
    pub label_count: u32,
    /// Number of distinct "core" label paths shared across queries. Shared
    /// cores are what make some motifs frequent.
    pub core_count: usize,
    /// Length (vertices) of each core path, ≥ 2.
    pub core_length: usize,
    /// Maximum number of extra vertices appended to a core per query.
    pub max_extension: usize,
    /// Zipf exponent for query frequencies; 0.0 gives uniform frequencies.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadGenerator {
    fn default() -> Self {
        Self {
            query_count: 20,
            label_count: 4,
            core_count: 3,
            core_length: 3,
            max_extension: 2,
            zipf_exponent: 1.0,
            seed: 42,
        }
    }
}

impl WorkloadGenerator {
    /// Generate a workload.
    ///
    /// Each query starts from one of `core_count` shared label paths and is
    /// extended with up to `max_extension` extra labels, either prolonging
    /// the path or attaching a branch. Query frequencies follow a Zipf
    /// distribution over the query rank.
    ///
    /// # Errors
    ///
    /// Returns [`MotifError::InvalidConfig`] for degenerate parameters.
    pub fn generate(&self) -> Result<Workload> {
        if self.query_count == 0 {
            return Err(MotifError::InvalidConfig("query_count must be > 0".into()));
        }
        if self.core_count == 0 || self.core_length < 2 {
            return Err(MotifError::InvalidConfig(
                "need at least one core of length >= 2".into(),
            ));
        }
        if self.label_count == 0 {
            return Err(MotifError::InvalidConfig("label_count must be > 0".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let label = |rng: &mut StdRng| Label::new(rng.random_range(0..self.label_count));

        // Shared cores.
        let cores: Vec<Vec<Label>> = (0..self.core_count)
            .map(|_| (0..self.core_length).map(|_| label(&mut rng)).collect())
            .collect();

        let mut entries = Vec::with_capacity(self.query_count);
        for i in 0..self.query_count {
            let core = &cores[rng.random_range(0..cores.len())];
            let extension = if self.max_extension == 0 {
                0
            } else {
                rng.random_range(0..=self.max_extension)
            };
            let id = QueryId::new(i as u32);
            let query = if extension == 0 {
                PatternQuery::path(id, core)?
            } else if rng.random_bool(0.5) {
                // Prolong the path.
                let mut labels = core.clone();
                for _ in 0..extension {
                    labels.push(label(&mut rng));
                }
                PatternQuery::path(id, &labels)?
            } else {
                // Turn the core into a branch: centre = core[0], leaves =
                // rest of core + extra labels.
                let mut leaves: Vec<Label> = core[1..].to_vec();
                for _ in 0..extension {
                    leaves.push(label(&mut rng));
                }
                PatternQuery::branch(id, core[0], &leaves)?
            };
            let weight = zipf_weight(i, self.zipf_exponent);
            entries.push((query, weight));
        }
        Workload::new(entries)
    }
}

/// Unnormalised Zipf weight of rank `rank` (0-based) with exponent `s`.
pub fn zipf_weight(rank: usize, s: f64) -> f64 {
    if s <= 0.0 {
        1.0
    } else {
        1.0 / ((rank + 1) as f64).powf(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn simple_queries() -> Vec<PatternQuery> {
        vec![
            PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap(),
            PatternQuery::path(QueryId::new(1), &[l(0), l(1), l(2)]).unwrap(),
            PatternQuery::path(QueryId::new(2), &[l(2), l(3)]).unwrap(),
        ]
    }

    #[test]
    fn uniform_workload_normalises_frequencies() {
        let w = Workload::uniform(simple_queries()).unwrap();
        assert_eq!(w.len(), 3);
        for (_, f) in w.iter() {
            assert!((f - 1.0 / 3.0).abs() < 1e-12);
        }
        let total: f64 = (0..w.len()).map(|i| w.frequency(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_workload_preserves_ratios() {
        let queries = simple_queries();
        let entries = vec![(queries[0].clone(), 3.0), (queries[1].clone(), 1.0)];
        let w = Workload::new(entries).unwrap();
        assert!((w.frequency(0) - 0.75).abs() < 1e-12);
        assert!((w.frequency(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_workloads_are_rejected() {
        assert!(Workload::uniform(vec![]).is_err());
        let q = simple_queries().remove(0);
        assert!(Workload::new(vec![(q.clone(), 0.0)]).is_err());
        assert!(Workload::new(vec![(q, f64::NAN)]).is_err());
    }

    #[test]
    fn sampling_respects_frequencies() {
        let queries = simple_queries();
        let entries = vec![(queries[0].clone(), 9.0), (queries[1].clone(), 1.0)];
        let w = Workload::new(entries).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 2];
        for _ in 0..5_000 {
            counts[w.sample_index(&mut rng)] += 1;
        }
        let ratio = counts[0] as f64 / 5_000.0;
        assert!((ratio - 0.9).abs() < 0.05, "ratio={ratio}");
    }

    #[test]
    fn alphabet_and_max_size() {
        let w = Workload::uniform(simple_queries()).unwrap();
        assert_eq!(w.label_alphabet_size(), 4);
        assert_eq!(w.max_query_size(), 3);
        assert!(w.query(QueryId::new(1)).is_some());
        assert!(w.query(QueryId::new(9)).is_none());
    }

    #[test]
    fn generator_produces_valid_workloads() {
        let generator = WorkloadGenerator::default();
        let w = generator.generate().unwrap();
        assert_eq!(w.len(), generator.query_count);
        assert!(w.label_alphabet_size() <= generator.label_count);
        // Frequencies are normalised and descending-ish (Zipf over rank).
        let total: f64 = (0..w.len()).map(|i| w.frequency(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(w.frequency(0) > w.frequency(w.len() - 1));
    }

    #[test]
    fn generator_is_deterministic() {
        let generator = WorkloadGenerator::default();
        let a = generator.generate().unwrap();
        let b = generator.generate().unwrap();
        for (qa, qb) in a.queries().iter().zip(b.queries()) {
            assert_eq!(qa.label_sequence(), qb.label_sequence());
            assert_eq!(qa.edge_count(), qb.edge_count());
        }
    }

    #[test]
    fn generator_rejects_bad_config() {
        let mut g = WorkloadGenerator {
            query_count: 0,
            ..WorkloadGenerator::default()
        };
        assert!(g.generate().is_err());
        g.query_count = 5;
        g.core_length = 1;
        assert!(g.generate().is_err());
        g.core_length = 3;
        g.label_count = 0;
        assert!(g.generate().is_err());
    }

    #[test]
    fn zipf_weights_decay() {
        assert_eq!(zipf_weight(0, 0.0), 1.0);
        assert_eq!(zipf_weight(5, 0.0), 1.0);
        assert!(zipf_weight(0, 1.0) > zipf_weight(1, 1.0));
        assert!((zipf_weight(1, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_zipf_exponent_gives_uniform_frequencies() {
        let generator = WorkloadGenerator {
            zipf_exponent: 0.0,
            ..WorkloadGenerator::default()
        };
        let w = generator.generate().unwrap();
        let first = w.frequency(0);
        assert!((0..w.len()).all(|i| (w.frequency(i) - first).abs() < 1e-12));
    }
}
