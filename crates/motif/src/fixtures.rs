//! Worked examples from the paper, used by tests, examples and docs.
//!
//! * [`paper_example_graph`] — the 8-vertex example graph `G` of Figure 1
//!   (labels `1:a 2:b 3:c 4:d 5:b 6:a 7:d 8:c`).
//! * [`paper_example_workload`] — the three-query workload `Q` of Figure 1:
//!   `q1` the a–b / b–a square, `q2` the `a-b-c` path, `q3` the `a-b-c-d`
//!   path, with uniform frequencies.
//! * [`fig3_stream_graph`] — the small graph of Figure 3: two overlapping
//!   `a-b-c` motif instances sharing the `a-b` edge, used to exercise the
//!   stream matcher's incremental-recomputation path.

use crate::query::{PatternQuery, QueryId};
use crate::workload::Workload;
use loom_graph::{Label, LabelledGraph, VertexId};

/// Label `a` (0), used by the fixtures.
pub const LABEL_A: Label = Label::new(0);
/// Label `b` (1), used by the fixtures.
pub const LABEL_B: Label = Label::new(1);
/// Label `c` (2), used by the fixtures.
pub const LABEL_C: Label = Label::new(2);
/// Label `d` (3), used by the fixtures.
pub const LABEL_D: Label = Label::new(3);

/// The example graph `G` of the paper's Figure 1.
///
/// Vertices `1..=8` carry labels `1:a 2:b 3:c 4:d 5:b 6:a 7:d 8:c`. The edge
/// set is chosen so that the documented query answers hold: the answer to
/// `q1` (the a–b/b–a square) is exactly the sub-graph on vertices
/// `{1, 2, 5, 6}`, and the `a-b-c-d` path of `q3` has matches along the
/// bottom row.
pub fn paper_example_graph() -> LabelledGraph {
    let mut g = LabelledGraph::new();
    let labels = [
        (1u64, LABEL_A),
        (2, LABEL_B),
        (3, LABEL_C),
        (4, LABEL_D),
        (5, LABEL_B),
        (6, LABEL_A),
        (7, LABEL_D),
        (8, LABEL_C),
    ];
    for (id, label) in labels {
        g.insert_vertex(VertexId::new(id), label);
    }
    let edges = [
        (1u64, 2u64), // a-b (bottom row)
        (2, 3),       // b-c
        (3, 4),       // c-d
        (1, 5),       // a-b (up the left side)
        (2, 6),       // b-a
        (5, 6),       // b-a (top row) — closes the q1 square 1-2-6-5
        (6, 7),       // a-d
        (3, 7),       // c-d (vertical)
        (4, 8),       // d-c
        (7, 8),       // d-c (top row)
    ];
    for (a, b) in edges {
        g.add_edge(VertexId::new(a), VertexId::new(b))
            .expect("fixture edges are valid");
    }
    g
}

/// The query workload `Q` of the paper's Figure 1 (uniform frequencies).
///
/// * `q1`: the 4-cycle with alternating labels `a, b, a, b`;
/// * `q2`: the path `a - b - c`;
/// * `q3`: the path `a - b - c - d`.
pub fn paper_example_workload() -> Workload {
    let q1 = PatternQuery::cycle(QueryId::new(1), &[LABEL_A, LABEL_B, LABEL_A, LABEL_B])
        .expect("q1 is a valid cycle query");
    let q2 = PatternQuery::path(QueryId::new(2), &[LABEL_A, LABEL_B, LABEL_C])
        .expect("q2 is a valid path query");
    let q3 = PatternQuery::path(QueryId::new(3), &[LABEL_A, LABEL_B, LABEL_C, LABEL_D])
        .expect("q3 is a valid path query");
    Workload::uniform(vec![q1, q2, q3]).expect("three valid queries")
}

/// The small graph of the paper's Figure 3: a path `a - b - c` plus a second
/// `c`-labelled vertex attached to the same `b`, so that two distinct `abc`
/// motif instances share the `a - b` edge.
///
/// Returns the graph together with the ids `(a, b, c1, c2)`.
pub fn fig3_stream_graph() -> (LabelledGraph, [VertexId; 4]) {
    let mut g = LabelledGraph::new();
    let a = VertexId::new(1);
    let b = VertexId::new(2);
    let c1 = VertexId::new(3);
    let c2 = VertexId::new(4);
    g.insert_vertex(a, LABEL_A);
    g.insert_vertex(b, LABEL_B);
    g.insert_vertex(c1, LABEL_C);
    g.insert_vertex(c2, LABEL_C);
    g.add_edge(a, b).expect("valid edge");
    g.add_edge(b, c1).expect("valid edge");
    g.add_edge(b, c2).expect("valid edge");
    (g, [a, b, c1, c2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::find_matches;

    #[test]
    fn fig1_graph_shape() {
        let g = paper_example_graph();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.label(VertexId::new(1)), Some(LABEL_A));
        assert_eq!(g.label(VertexId::new(8)), Some(LABEL_C));
    }

    #[test]
    fn fig1_q1_answer_is_vertices_1_2_5_6() {
        // "the answer to q1 would be the sub-graph of G containing the
        //  vertices 1, 2, 5, 6 and their interconnecting edges"
        let g = paper_example_graph();
        let workload = paper_example_workload();
        let q1 = workload.query(QueryId::new(1)).unwrap();
        let matches = find_matches(q1.graph(), &g);
        assert!(!matches.is_empty());
        for m in &matches {
            let mut image: Vec<u64> = m.values().map(|v| v.raw()).collect();
            image.sort_unstable();
            assert_eq!(image, vec![1, 2, 5, 6]);
        }
    }

    #[test]
    fn fig1_q2_and_q3_have_matches() {
        let g = paper_example_graph();
        let workload = paper_example_workload();
        for id in [QueryId::new(2), QueryId::new(3)] {
            let q = workload.query(id).unwrap();
            assert!(
                !find_matches(q.graph(), &g).is_empty(),
                "query {id} should match the example graph"
            );
        }
    }

    #[test]
    fn workload_is_uniform_over_three_queries() {
        let w = paper_example_workload();
        assert_eq!(w.len(), 3);
        for (_, f) in w.iter() {
            assert!((f - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(w.label_alphabet_size(), 4);
    }

    #[test]
    fn fig3_graph_contains_two_abc_instances() {
        let (g, [a, b, c1, c2]) = fig3_stream_graph();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        let abc = loom_graph::generators::regular::path_graph(3, &[LABEL_A, LABEL_B, LABEL_C]);
        let matches = find_matches(&abc, &g);
        assert_eq!(matches.len(), 2);
        let _ = (a, b, c1, c2);
    }
}
