//! TPSTry++ — the Traversal Pattern Summary Trie, generalised to a DAG.
//!
//! Each node of the TPSTry++ represents a *motif*: a small connected labelled
//! graph that occurs as a sub-graph of at least one query graph in the
//! workload `Q` (paper §4.2). A node stores
//!
//! * the motif graph itself (a canonical representative),
//! * its exact [`canonical code`](crate::canonical) and its
//!   [`Signature`] (the non-authoritative matching key used online),
//! * the set of queries that contain it and its accumulated (frequency
//!   weighted) support, from which the node's **p-value** is derived,
//! * child edges to every motif that extends it by exactly one edge
//!   (possibly introducing one new vertex), and parent edges back.
//!
//! The structure is a DAG rather than a tree because a motif with `k` edges
//! can be reached by adding its edges in any order, and because there is one
//! root per distinct vertex label (paper §4.2).
//!
//! Nodes whose p-value meets a user threshold `T` are *frequent*; those are
//! the motifs LOOM tries to keep within partition boundaries.

use crate::canonical::{canonical_code, CanonicalCode};
use crate::error::Result;
use crate::query::QueryId;
use crate::signature::{PrimeTable, Signature};
use loom_graph::fxhash::{FxHashMap, FxHashSet};
use loom_graph::{Label, LabelledGraph};
use serde::{Deserialize, Serialize};

/// Identifier of a motif node within a [`Tpstry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct MotifId(pub u32);

impl MotifId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MotifId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A node of the TPSTry++.
#[derive(Debug, Clone)]
pub struct MotifNode {
    id: MotifId,
    graph: LabelledGraph,
    code: CanonicalCode,
    signature: Signature,
    support: f64,
    supporting_queries: FxHashSet<QueryId>,
    children: Vec<MotifId>,
    parents: Vec<MotifId>,
}

impl MotifNode {
    /// The node id.
    pub fn id(&self) -> MotifId {
        self.id
    }

    /// The motif graph (canonical representative, ids are internal).
    pub fn graph(&self) -> &LabelledGraph {
        &self.graph
    }

    /// The motif's signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The motif's exact canonical code (node identity key).
    pub fn canonical(&self) -> &CanonicalCode {
        &self.code
    }

    /// Number of vertices in the motif.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges in the motif.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The motif's accumulated, frequency-weighted support.
    pub fn support(&self) -> f64 {
        self.support
    }

    /// The queries that contain this motif.
    pub fn supporting_queries(&self) -> &FxHashSet<QueryId> {
        &self.supporting_queries
    }

    /// Children: motifs extending this one by a single edge.
    pub fn children(&self) -> &[MotifId] {
        &self.children
    }

    /// Parents: motifs this one extends by a single edge.
    pub fn parents(&self) -> &[MotifId] {
        &self.parents
    }
}

/// The TPSTry++ DAG.
#[derive(Debug, Clone)]
pub struct Tpstry {
    nodes: Vec<MotifNode>,
    by_code: FxHashMap<CanonicalCode, MotifId>,
    by_signature: FxHashMap<Signature, Vec<MotifId>>,
    roots: FxHashMap<Label, MotifId>,
    total_weight: f64,
    prime_table: PrimeTable,
}

impl Tpstry {
    /// Create an empty TPSTry++ whose signatures use the given prime table.
    pub fn new(prime_table: PrimeTable) -> Self {
        Self {
            nodes: Vec::new(),
            by_code: FxHashMap::default(),
            by_signature: FxHashMap::default(),
            roots: FxHashMap::default(),
            total_weight: 0.0,
            prime_table,
        }
    }

    /// The prime table signatures are computed against.
    pub fn prime_table(&self) -> &PrimeTable {
        &self.prime_table
    }

    /// Number of motif nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the trie has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total query weight observed (denominator of every p-value).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Record that a query of the given weight has been folded into the trie
    /// (increases the p-value denominator).
    pub fn record_query_weight(&mut self, weight: f64) {
        self.total_weight += weight.max(0.0);
    }

    /// Look up or insert the node for (the isomorphism class of) `motif`.
    ///
    /// # Errors
    ///
    /// Fails if the motif uses labels outside the prime table's alphabet.
    pub fn insert_motif(&mut self, motif: &LabelledGraph) -> Result<MotifId> {
        let code = canonical_code(motif);
        if let Some(&id) = self.by_code.get(&code) {
            return Ok(id);
        }
        let signature = self.prime_table.signature_of(motif)?;
        let id = MotifId(self.nodes.len() as u32);
        let node = MotifNode {
            id,
            graph: motif.clone(),
            code: code.clone(),
            signature: signature.clone(),
            support: 0.0,
            supporting_queries: FxHashSet::default(),
            children: Vec::new(),
            parents: Vec::new(),
        };
        self.nodes.push(node);
        self.by_code.insert(code, id);
        self.by_signature.entry(signature).or_default().push(id);
        // Single-vertex motifs are the DAG's roots (one per label).
        if motif.vertex_count() == 1 && motif.edge_count() == 0 {
            let label = motif
                .labelled_vertices()
                .next()
                .map(|(_, l)| l)
                .expect("single vertex motif has a label");
            self.roots.entry(label).or_insert(id);
        }
        Ok(id)
    }

    /// Add support for a motif from a query. Support is only counted once per
    /// (motif, query) pair, no matter how many times the query contains the
    /// motif — the p-value models "the probability a random query traverses
    /// this pattern", not the embedding count.
    pub fn add_support(&mut self, id: MotifId, query: QueryId, weight: f64) {
        let node = &mut self.nodes[id.index()];
        if node.supporting_queries.insert(query) {
            node.support += weight.max(0.0);
        }
    }

    /// Record a parent → child extension edge (idempotent).
    pub fn link(&mut self, parent: MotifId, child: MotifId) {
        if parent == child {
            return;
        }
        if !self.nodes[parent.index()].children.contains(&child) {
            self.nodes[parent.index()].children.push(child);
        }
        if !self.nodes[child.index()].parents.contains(&parent) {
            self.nodes[child.index()].parents.push(parent);
        }
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this trie.
    pub fn node(&self, id: MotifId) -> &MotifNode {
        &self.nodes[id.index()]
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &MotifNode> + '_ {
        self.nodes.iter()
    }

    /// The node id whose motif is isomorphic to `graph`, if present.
    pub fn find_isomorphic(&self, graph: &LabelledGraph) -> Option<MotifId> {
        self.by_code.get(&canonical_code(graph)).copied()
    }

    /// The node ids whose signature equals `signature` (usually 0 or 1; more
    /// than 1 only under a signature collision between non-isomorphic
    /// motifs, which the paper argues is rare).
    pub fn find_by_signature(&self, signature: &Signature) -> &[MotifId] {
        self.by_signature
            .get(signature)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The root node for a vertex label, if a single-vertex motif with that
    /// label has been inserted.
    pub fn root(&self, label: Label) -> Option<MotifId> {
        self.roots.get(&label).copied()
    }

    /// All root nodes, keyed by label.
    pub fn roots(&self) -> &FxHashMap<Label, MotifId> {
        &self.roots
    }

    /// The p-value of a node: its weighted support divided by the total query
    /// weight folded into the trie (0.0 when the trie is empty).
    pub fn p_value(&self, id: MotifId) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.nodes[id.index()].support / self.total_weight
        }
    }

    /// Whether a node is *frequent* at threshold `threshold`.
    pub fn is_frequent(&self, id: MotifId, threshold: f64) -> bool {
        self.p_value(id) >= threshold
    }

    /// All frequent motif ids at threshold `threshold`, sorted by descending
    /// p-value (ties broken by larger motif, then id, for determinism).
    pub fn frequent_motifs(&self, threshold: f64) -> Vec<MotifId> {
        let mut result: Vec<MotifId> = self
            .nodes
            .iter()
            .filter(|n| self.p_value(n.id) >= threshold)
            .map(|n| n.id)
            .collect();
        result.sort_by(|&a, &b| {
            self.p_value(b)
                .partial_cmp(&self.p_value(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| self.node(b).edge_count().cmp(&self.node(a).edge_count()))
                .then_with(|| a.cmp(&b))
        });
        result
    }

    /// Verify structural invariants (used by tests and debug assertions):
    /// support monotonicity (a child's supporting query set is a subset of
    /// each parent's... in fact of the union of parents') and parent/child
    /// symmetry. Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for node in &self.nodes {
            for &child in &node.children {
                if !self.nodes[child.index()].parents.contains(&node.id) {
                    return Err(format!("child {child} of {} lacks back edge", node.id));
                }
                // A child motif extends the parent, so every query containing
                // the child also contains the parent: child support ≤ parent.
                let child_node = &self.nodes[child.index()];
                if !child_node
                    .supporting_queries
                    .is_subset(&node.supporting_queries)
                {
                    return Err(format!(
                        "child {child} supported by queries its parent {} is not",
                        node.id
                    ));
                }
                if child_node.support > node.support + 1e-9 {
                    return Err(format!(
                        "child {child} support {} exceeds parent {} support {}",
                        child_node.support, node.id, node.support
                    ));
                }
            }
            for &parent in &node.parents {
                if !self.nodes[parent.index()].children.contains(&node.id) {
                    return Err(format!("parent {parent} of {} lacks forward edge", node.id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn single(label: Label) -> LabelledGraph {
        let mut g = LabelledGraph::new();
        g.add_vertex(label);
        g
    }

    #[test]
    fn insert_is_idempotent_up_to_isomorphism() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let ab = path_graph(2, &[l(0), l(1)]);
        let ba = path_graph(2, &[l(1), l(0)]);
        let id1 = trie.insert_motif(&ab).unwrap();
        let id2 = trie.insert_motif(&ba).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(trie.node_count(), 1);
        assert_eq!(trie.find_isomorphic(&ab), Some(id1));
    }

    #[test]
    fn roots_are_single_vertex_motifs() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let a = trie.insert_motif(&single(l(0))).unwrap();
        let b = trie.insert_motif(&single(l(1))).unwrap();
        let ab = trie.insert_motif(&path_graph(2, &[l(0), l(1)])).unwrap();
        assert_eq!(trie.root(l(0)), Some(a));
        assert_eq!(trie.root(l(1)), Some(b));
        assert_eq!(trie.root(l(2)), None);
        assert_eq!(trie.roots().len(), 2);
        assert_ne!(ab, a);
    }

    #[test]
    fn support_is_counted_once_per_query() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let id = trie.insert_motif(&path_graph(2, &[l(0), l(1)])).unwrap();
        trie.record_query_weight(1.0);
        trie.add_support(id, QueryId::new(0), 1.0);
        trie.add_support(id, QueryId::new(0), 1.0); // duplicate, ignored
        assert!((trie.node(id).support() - 1.0).abs() < 1e-12);
        assert!((trie.p_value(id) - 1.0).abs() < 1e-12);
        trie.record_query_weight(1.0);
        trie.add_support(id, QueryId::new(1), 1.0);
        assert!((trie.p_value(id) - 1.0).abs() < 1e-12);
        assert_eq!(trie.node(id).supporting_queries().len(), 2);
    }

    #[test]
    fn p_values_and_frequent_set() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let a = trie.insert_motif(&single(l(0))).unwrap();
        let ab = trie.insert_motif(&path_graph(2, &[l(0), l(1)])).unwrap();
        // Two queries of weight 1 each; 'a' occurs in both, 'ab' in one.
        trie.record_query_weight(1.0);
        trie.record_query_weight(1.0);
        trie.add_support(a, QueryId::new(0), 1.0);
        trie.add_support(a, QueryId::new(1), 1.0);
        trie.add_support(ab, QueryId::new(0), 1.0);
        assert!((trie.p_value(a) - 1.0).abs() < 1e-12);
        assert!((trie.p_value(ab) - 0.5).abs() < 1e-12);
        assert!(trie.is_frequent(a, 0.9));
        assert!(!trie.is_frequent(ab, 0.9));
        let frequent = trie.frequent_motifs(0.5);
        assert_eq!(frequent, vec![a, ab]);
        let very_frequent = trie.frequent_motifs(0.75);
        assert_eq!(very_frequent, vec![a]);
    }

    #[test]
    fn links_are_symmetric_and_idempotent() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let a = trie.insert_motif(&single(l(0))).unwrap();
        let ab = trie.insert_motif(&path_graph(2, &[l(0), l(1)])).unwrap();
        trie.link(a, ab);
        trie.link(a, ab);
        trie.link(a, a); // self link ignored
        assert_eq!(trie.node(a).children(), &[ab]);
        assert_eq!(trie.node(ab).parents(), &[a]);
        assert!(trie.check_invariants().is_ok());
    }

    #[test]
    fn invariant_checker_catches_support_violations() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let a = trie.insert_motif(&single(l(0))).unwrap();
        let ab = trie.insert_motif(&path_graph(2, &[l(0), l(1)])).unwrap();
        trie.link(a, ab);
        trie.record_query_weight(1.0);
        // Child supported by a query the parent is not: violates monotonicity.
        trie.add_support(ab, QueryId::new(0), 1.0);
        assert!(trie.check_invariants().is_err());
    }

    #[test]
    fn signature_lookup_finds_nodes() {
        let mut trie = Tpstry::new(PrimeTable::new(4));
        let abc = path_graph(3, &[l(0), l(1), l(2)]);
        let id = trie.insert_motif(&abc).unwrap();
        let sig = trie.prime_table().signature_of(&abc).unwrap();
        assert_eq!(trie.find_by_signature(&sig), &[id]);
        let other = trie
            .prime_table()
            .signature_of(&path_graph(2, &[l(0), l(1)]))
            .unwrap();
        assert!(trie.find_by_signature(&other).is_empty());
    }

    #[test]
    fn empty_trie_behaviour() {
        let trie = Tpstry::new(PrimeTable::new(2));
        assert!(trie.is_empty());
        assert_eq!(trie.total_weight(), 0.0);
        assert!(trie.frequent_motifs(0.0).is_empty());
        assert!(trie.check_invariants().is_ok());
    }
}
