//! Prime number utilities backing the number-theoretic graph signatures.
//!
//! Song et al.'s signatures represent graph features as prime factors so
//! that sub-graph containment becomes divisibility. This module provides a
//! deterministic sieve and the mapping from vertex labels and (unordered)
//! label pairs to distinct primes.

use serde::{Deserialize, Serialize};

/// Generate the first `count` prime numbers with a simple growing sieve.
pub fn first_primes(count: usize) -> Vec<u64> {
    if count == 0 {
        return Vec::new();
    }
    // Over-estimate the sieve bound: p_n < n (ln n + ln ln n) for n ≥ 6.
    let n = count.max(6) as f64;
    let bound = (n * (n.ln() + n.ln().ln())).ceil() as usize + 16;
    let mut sieve = vec![true; bound + 1];
    sieve[0] = false;
    if bound >= 1 {
        sieve[1] = false;
    }
    let mut primes = Vec::with_capacity(count);
    for i in 2..=bound {
        if sieve[i] {
            primes.push(i as u64);
            if primes.len() == count {
                break;
            }
            let mut multiple = i * i;
            while multiple <= bound {
                sieve[multiple] = false;
                multiple += i;
            }
        }
    }
    debug_assert_eq!(primes.len(), count, "sieve bound was too small");
    primes
}

/// Deterministic assignment of primes to vertex labels and unordered label
/// pairs, for a fixed label alphabet size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelPrimes {
    label_count: u32,
    vertex_primes: Vec<u64>,
    pair_primes: Vec<u64>,
}

impl LabelPrimes {
    /// Build the tables for an alphabet of `label_count` labels.
    pub fn new(label_count: u32) -> Self {
        let label_count = label_count.max(1);
        let n = label_count as usize;
        let pair_count = n * (n + 1) / 2;
        let primes = first_primes(n + pair_count);
        let vertex_primes = primes[..n].to_vec();
        let pair_primes = primes[n..].to_vec();
        Self {
            label_count,
            vertex_primes,
            pair_primes,
        }
    }

    /// The alphabet size the table was built for.
    pub fn label_count(&self) -> u32 {
        self.label_count
    }

    /// The prime assigned to a vertex label, or `None` if it exceeds the
    /// alphabet the table was built for.
    pub fn vertex_prime(&self, label: u32) -> Option<u64> {
        self.vertex_primes.get(label as usize).copied()
    }

    /// The prime assigned to the unordered pair of labels `(a, b)`.
    pub fn pair_prime(&self, a: u32, b: u32) -> Option<u64> {
        if a >= self.label_count || b >= self.label_count {
            return None;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Index into the upper triangle (including the diagonal):
        // row `lo` starts after sum_{i<lo} (label_count - i).
        let lo = lo as usize;
        let hi = hi as usize;
        let n = self.label_count as usize;
        let row_start = lo * n - lo * (lo.saturating_sub(1)) / 2 - lo;
        let index = row_start + (hi - lo) + lo; // simplifies to triangular index
        self.pair_primes.get(index).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn first_primes_are_correct() {
        assert_eq!(first_primes(0), Vec::<u64>::new());
        assert_eq!(first_primes(1), vec![2]);
        assert_eq!(first_primes(10), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        let thousand = first_primes(1000);
        assert_eq!(thousand.len(), 1000);
        assert_eq!(*thousand.last().unwrap(), 7919);
    }

    #[test]
    fn vertex_and_pair_primes_are_distinct() {
        let table = LabelPrimes::new(6);
        let mut seen = HashSet::new();
        for l in 0..6 {
            let p = table.vertex_prime(l).unwrap();
            assert!(seen.insert(p), "duplicate prime {p}");
        }
        for a in 0..6u32 {
            for b in a..6u32 {
                let p = table.pair_prime(a, b).unwrap();
                assert!(seen.insert(p), "duplicate prime {p} for pair ({a},{b})");
            }
        }
    }

    #[test]
    fn pair_prime_is_symmetric() {
        let table = LabelPrimes::new(5);
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(table.pair_prime(a, b), table.pair_prime(b, a));
            }
        }
    }

    #[test]
    fn out_of_range_labels_return_none() {
        let table = LabelPrimes::new(3);
        assert!(table.vertex_prime(3).is_none());
        assert!(table.pair_prime(0, 3).is_none());
        assert!(table.pair_prime(7, 1).is_none());
        assert!(table.vertex_prime(2).is_some());
    }

    #[test]
    fn zero_label_count_is_clamped() {
        let table = LabelPrimes::new(0);
        assert_eq!(table.label_count(), 1);
        assert!(table.vertex_prime(0).is_some());
        assert!(table.pair_prime(0, 0).is_some());
    }

    #[test]
    fn tables_are_deterministic() {
        let a = LabelPrimes::new(8);
        let b = LabelPrimes::new(8);
        for l in 0..8 {
            assert_eq!(a.vertex_prime(l), b.vertex_prime(l));
        }
        assert_eq!(a.pair_prime(2, 7), b.pair_prime(2, 7));
    }
}
