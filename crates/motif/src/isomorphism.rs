//! Labelled sub-graph isomorphism (VF2-style backtracking).
//!
//! The paper defines a query answer as every sub-graph of `G` for which a
//! bijection onto the query graph exists that preserves edges and labels
//! (§2). This module provides:
//!
//! * [`find_matches`] / [`find_matches_limited`] — enumerate embeddings of a
//!   pattern into a target graph;
//! * [`has_match`] — early-exit existence check;
//! * [`are_isomorphic`] — exact isomorphism between two graphs of the same
//!   size, used to collapse motifs onto canonical TPSTry++ nodes and to
//!   verify the non-authoritative signature matches.
//!
//! The matcher uses the standard VF2 ingredients: pattern vertices are
//! ordered so that each (after the first) touches an already-matched vertex,
//! candidates are restricted by label and degree, and adjacency consistency
//! is enforced against every previously matched pattern neighbour.

use loom_graph::fxhash::{FxHashMap, FxHashSet};
use loom_graph::{LabelledGraph, VertexId};

/// A single embedding: pattern vertex → target vertex.
pub type Embedding = FxHashMap<VertexId, VertexId>;

/// Find every embedding of `pattern` into `target`.
///
/// An embedding maps distinct pattern vertices to distinct target vertices
/// such that labels match and every pattern edge maps to a target edge
/// (sub-graph *monomorphism*, the semantics used for query answering).
pub fn find_matches(pattern: &LabelledGraph, target: &LabelledGraph) -> Vec<Embedding> {
    find_matches_limited(pattern, target, usize::MAX)
}

/// Like [`find_matches`] but stops after `limit` embeddings have been found.
pub fn find_matches_limited(
    pattern: &LabelledGraph,
    target: &LabelledGraph,
    limit: usize,
) -> Vec<Embedding> {
    let mut results = Vec::new();
    if pattern.is_empty() || pattern.vertex_count() > target.vertex_count() || limit == 0 {
        return results;
    }
    let order = matching_order(pattern);
    let mut state = MatchState {
        pattern,
        target,
        order: &order,
        mapping: FxHashMap::default(),
        used: FxHashSet::default(),
        results: &mut results,
        limit,
    };
    state.extend(0);
    results
}

/// Whether at least one embedding of `pattern` into `target` exists.
pub fn has_match(pattern: &LabelledGraph, target: &LabelledGraph) -> bool {
    !find_matches_limited(pattern, target, 1).is_empty()
}

/// Exact labelled isomorphism between two graphs.
pub fn are_isomorphic(a: &LabelledGraph, b: &LabelledGraph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.is_empty() {
        return true;
    }
    // Same vertex and edge count, so a monomorphism a → b is automatically an
    // isomorphism *provided* it is edge-surjective; since it maps |E_a| = |E_b|
    // distinct edges onto distinct edges, it is.
    has_match(a, b)
}

/// Count the embeddings of `pattern` in `target` (convenience wrapper).
pub fn count_matches(pattern: &LabelledGraph, target: &LabelledGraph) -> usize {
    find_matches(pattern, target).len()
}

/// Order pattern vertices so each one (after the first) is adjacent to at
/// least one earlier vertex; ties broken towards higher degree so the most
/// constrained vertices are matched first.
fn matching_order(pattern: &LabelledGraph) -> Vec<VertexId> {
    let mut order = Vec::with_capacity(pattern.vertex_count());
    let mut placed: FxHashSet<VertexId> = FxHashSet::default();
    let mut vertices = pattern.vertices_sorted();
    // Start from the highest-degree vertex (most constrained).
    vertices.sort_by_key(|&v| std::cmp::Reverse(pattern.degree(v)));
    while placed.len() < pattern.vertex_count() {
        // Prefer an unplaced vertex adjacent to the placed set.
        let next = vertices
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .max_by_key(|&v| {
                let connectivity = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|n| placed.contains(n))
                    .count();
                (connectivity, pattern.degree(v))
            })
            .expect("there is always an unplaced vertex in the loop");
        placed.insert(next);
        order.push(next);
    }
    order
}

struct MatchState<'a> {
    pattern: &'a LabelledGraph,
    target: &'a LabelledGraph,
    order: &'a [VertexId],
    mapping: Embedding,
    used: FxHashSet<VertexId>,
    results: &'a mut Vec<Embedding>,
    limit: usize,
}

impl MatchState<'_> {
    fn extend(&mut self, depth: usize) {
        if self.results.len() >= self.limit {
            return;
        }
        if depth == self.order.len() {
            self.results.push(self.mapping.clone());
            return;
        }
        let pv = self.order[depth];
        let p_label = self.pattern.label(pv).expect("pattern vertex exists");
        let p_degree = self.pattern.degree(pv);

        // Matched pattern neighbours constrain the candidate set: the target
        // vertex must be adjacent to their images.
        let matched_neighbours: Vec<VertexId> = self
            .pattern
            .neighbors(pv)
            .iter()
            .copied()
            .filter(|n| self.mapping.contains_key(n))
            .collect();

        let candidates: Vec<VertexId> = if let Some(&anchor) = matched_neighbours.first() {
            let image = self.mapping[&anchor];
            self.target.neighbors(image).to_vec()
        } else {
            self.target.vertices_sorted()
        };

        for tv in candidates {
            if self.used.contains(&tv) {
                continue;
            }
            if self.target.label(tv) != Some(p_label) {
                continue;
            }
            if self.target.degree(tv) < p_degree {
                continue;
            }
            let consistent = matched_neighbours
                .iter()
                .all(|n| self.target.contains_edge(tv, self.mapping[n]));
            if !consistent {
                continue;
            }
            self.mapping.insert(pv, tv);
            self.used.insert(tv);
            self.extend(depth + 1);
            self.mapping.remove(&pv);
            self.used.remove(&tv);
            if self.results.len() >= self.limit {
                return;
            }
        }
    }
}

/// Check that `embedding` really is a valid embedding of `pattern` into
/// `target` (used by property tests and by the signature verifier).
pub fn verify_embedding(
    pattern: &LabelledGraph,
    target: &LabelledGraph,
    embedding: &Embedding,
) -> bool {
    if embedding.len() != pattern.vertex_count() {
        return false;
    }
    let mut images: FxHashSet<VertexId> = FxHashSet::default();
    for (pv, tv) in embedding {
        if pattern.label(*pv) != target.label(*tv) {
            return false;
        }
        if !images.insert(*tv) {
            return false;
        }
    }
    pattern
        .edges()
        .all(|e| match (embedding.get(&e.lo), embedding.get(&e.hi)) {
            (Some(&a), Some(&b)) => target.contains_edge(a, b),
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::{clique, cycle_graph, path_graph, star_graph};
    use loom_graph::Label;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    /// The paper's Figure 1 example graph: 8 vertices, labels
    /// 1:a 2:b 3:c 4:d 5:b 6:a 7:d 8:c with a 4-cycle (1,2,5,6) and a path.
    fn fig1_graph() -> LabelledGraph {
        let mut g = LabelledGraph::new();
        // index 0 unused so ids match the paper's 1-based numbering
        let labels = [0u32, 0, 1, 2, 3, 1, 0, 3, 2]; // 1:a 2:b 3:c 4:d 5:b 6:a 7:d 8:c
        for i in 1..=8u64 {
            g.insert_vertex(VertexId::new(i), l(labels[i as usize]));
        }
        let edges = [
            (1u64, 2u64),
            (2, 3),
            (3, 4),
            (1, 5),
            (2, 6),
            (5, 6),
            (6, 7),
            (3, 7),
            (4, 8),
            (7, 8),
        ];
        for (a, b) in edges {
            g.add_edge(VertexId::new(a), VertexId::new(b)).unwrap();
        }
        g
    }

    #[test]
    fn path_pattern_matches_in_path_target() {
        let pattern = path_graph(3, &[l(0), l(1), l(0)]);
        let target = path_graph(5, &[l(0), l(1), l(0), l(1), l(0)]);
        let matches = find_matches(&pattern, &target);
        // a-b-a occurs at positions (0,1,2), (2,1,0), (2,3,4), (4,3,2).
        assert_eq!(matches.len(), 4);
        for m in &matches {
            assert!(verify_embedding(&pattern, &target, m));
        }
    }

    #[test]
    fn label_mismatch_produces_no_matches() {
        let pattern = path_graph(2, &[l(5), l(6)]);
        let target = path_graph(4, &[l(0), l(1), l(0), l(1)]);
        assert!(find_matches(&pattern, &target).is_empty());
        assert!(!has_match(&pattern, &target));
    }

    #[test]
    fn square_query_matches_fig1_cycle() {
        // q1 from the paper: the a-b / b-a square matches vertices 1,2,5,6.
        let pattern = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
        let target = fig1_graph();
        let matches = find_matches(&pattern, &target);
        assert!(!matches.is_empty());
        for m in &matches {
            let mut image: Vec<u64> = m.values().map(|v| v.raw()).collect();
            image.sort_unstable();
            assert_eq!(image, vec![1, 2, 5, 6]);
        }
    }

    #[test]
    fn abcd_path_matches_fig1() {
        // q3 from the paper: the a-b-c-d path.
        let pattern = path_graph(4, &[l(0), l(1), l(2), l(3)]);
        let target = fig1_graph();
        let matches = find_matches(&pattern, &target);
        assert!(!matches.is_empty());
        for m in &matches {
            assert!(verify_embedding(&pattern, &target, m));
        }
    }

    #[test]
    fn limit_stops_enumeration_early() {
        let pattern = path_graph(2, &[l(0), l(0)]);
        let target = clique(6, &[l(0)]);
        let all = find_matches(&pattern, &target);
        assert_eq!(all.len(), 30); // ordered pairs of distinct vertices
        let limited = find_matches_limited(&pattern, &target, 3);
        assert_eq!(limited.len(), 3);
    }

    #[test]
    fn isomorphism_checks() {
        let a = cycle_graph(4, &[l(0), l(1), l(0), l(1)]);
        let b = cycle_graph(4, &[l(1), l(0), l(1), l(0)]);
        assert!(are_isomorphic(&a, &b));
        let c = cycle_graph(4, &[l(0), l(0), l(1), l(1)]);
        assert!(!are_isomorphic(&a, &c));
        let d = path_graph(4, &[l(0), l(1), l(0), l(1)]);
        assert!(!are_isomorphic(&a, &d));
        assert!(are_isomorphic(&LabelledGraph::new(), &LabelledGraph::new()));
    }

    #[test]
    fn star_matches_respect_degree_constraints() {
        let pattern = star_graph(3, &[l(0), l(1), l(1), l(1)]);
        let target = star_graph(2, &[l(0), l(1), l(1)]);
        // Hub has degree 2 < 3 in the target, so no match exists.
        assert!(!has_match(&pattern, &target));
        let bigger = star_graph(5, &[l(0), l(1), l(1), l(1), l(1), l(1)]);
        assert!(has_match(&pattern, &bigger));
    }

    #[test]
    fn empty_pattern_and_oversized_pattern() {
        let target = path_graph(3, &[l(0), l(1), l(2)]);
        assert!(find_matches(&LabelledGraph::new(), &target).is_empty());
        let pattern = path_graph(5, &[l(0), l(1), l(2), l(0), l(1)]);
        assert!(find_matches(&pattern, &target).is_empty());
    }

    #[test]
    fn verify_embedding_rejects_bad_mappings() {
        let pattern = path_graph(2, &[l(0), l(1)]);
        let target = path_graph(2, &[l(0), l(1)]);
        let pv = pattern.vertices_sorted();
        let tv = target.vertices_sorted();
        // Swapped labels: map a-vertex onto b-vertex.
        let mut bad: Embedding = FxHashMap::default();
        bad.insert(pv[0], tv[1]);
        bad.insert(pv[1], tv[0]);
        assert!(!verify_embedding(&pattern, &target, &bad));
        // Non-injective mapping.
        let mut dup: Embedding = FxHashMap::default();
        dup.insert(pv[0], tv[0]);
        dup.insert(pv[1], tv[0]);
        assert!(!verify_embedding(&pattern, &target, &dup));
    }

    #[test]
    fn count_matches_counts_all_embeddings() {
        let pattern = path_graph(2, &[l(0), l(1)]);
        let target = path_graph(4, &[l(0), l(1), l(0), l(1)]);
        // Edges with (a,b) label pattern: (0,1), (2,1), (2,3) → 3 embeddings
        // (each pattern vertex maps one way because labels differ).
        assert_eq!(count_matches(&pattern, &target), 3);
    }
}
