//! Error types for workload capture and motif mining.

use std::fmt;

/// Errors produced while building queries, mining motifs or constructing the
/// TPSTry++.
#[derive(Debug, Clone, PartialEq)]
pub enum MotifError {
    /// A query graph was empty or disconnected — the paper only considers
    /// connected pattern queries.
    InvalidQuery(String),
    /// A workload was constructed with no queries or non-positive frequencies.
    InvalidWorkload(String),
    /// The motif miner was configured with impossible limits.
    InvalidConfig(String),
    /// The label alphabet exceeded the configured prime table capacity.
    PrimeTableExhausted {
        /// Number of labels the table was built for.
        capacity: u32,
        /// The offending label value.
        label: u32,
    },
    /// An underlying graph operation failed.
    Graph(loom_graph::GraphError),
}

impl fmt::Display for MotifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotifError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            MotifError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            MotifError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MotifError::PrimeTableExhausted { capacity, label } => write!(
                f,
                "prime table built for {capacity} labels cannot encode label {label}"
            ),
            MotifError::Graph(err) => write!(f, "graph error: {err}"),
        }
    }
}

impl std::error::Error for MotifError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MotifError::Graph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<loom_graph::GraphError> for MotifError {
    fn from(err: loom_graph::GraphError) -> Self {
        MotifError::Graph(err)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, MotifError>;

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::{GraphError, VertexId};

    #[test]
    fn display_is_informative() {
        assert!(MotifError::InvalidQuery("empty".into())
            .to_string()
            .contains("empty"));
        assert!(MotifError::PrimeTableExhausted {
            capacity: 4,
            label: 9
        }
        .to_string()
        .contains("label 9"));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let err: MotifError = GraphError::MissingVertex(VertexId::new(1)).into();
        assert!(matches!(err, MotifError::Graph(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
