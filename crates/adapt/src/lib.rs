//! # loom-adapt
//!
//! Workload-drift detection and incremental shard re-partitioning: the layer
//! that closes the loop from *observed* queries back to *placement*.
//!
//! LOOM's core claim (Firth & Missier, GraphQ@EDBT 2016) is that partitioning
//! should follow the query workload — yet mining happens once, at build time.
//! When the live traffic's motif mix shifts away from the mined distribution,
//! a static placement serves an ever-worsening remote-hop fraction. This
//! crate notices and repairs that, without ever blocking reads:
//!
//! * [`tracker::WorkloadTracker`] — a decayed sliding histogram of the query
//!   mix observed in every
//!   [`ServeReport`](loom_serve::metrics::ServeReport), compared against the
//!   mix the partitioning was mined for by total-variation distance; crossing
//!   a threshold flags **drift**;
//! * [`MigrationPlanner`](loom_partition::migrate::MigrationPlanner) (in
//!   `loom-partition`) — turns the drifted mix's hot-label weights into a
//!   **bounded batch** of gain-scored, Fennel-balance-penalized vertex moves
//!   rather than a full repartition;
//! * [`adaptive::AdaptiveServing`] — the driver: applies the plan through
//!   [`ShardedStore::apply_migration`](loom_serve::shard::ShardedStore::apply_migration)
//!   (rebuilding only the affected shards' CSR slices, label indexes and
//!   halos) and publishes the result as a new epoch through the existing
//!   [`EpochStore`](loom_serve::epoch::EpochStore) — queries in flight keep
//!   their pinned snapshot.
//!
//! The two-phase [`DriftScenario`](loom_sim::drift::DriftScenario) in
//! `loom-sim` (disjoint hot motif families per phase) exercises the loop end
//! to end; `tests/adapt.rs` at the workspace root proves both migration
//! parity and remote-hop recovery after a phase change.
//!
//! ```
//! use loom_adapt::prelude::*;
//! use loom_graph::generators::regular::path_graph;
//! use loom_graph::Label;
//! use loom_motif::query::{PatternQuery, QueryId};
//! use loom_motif::workload::Workload;
//! use loom_partition::partition::{PartitionId, Partitioning};
//! use loom_serve::engine::ServeConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = path_graph(12, &[Label::new(0), Label::new(1), Label::new(2)]);
//! let mut partitioning = Partitioning::new(2, 12)?;
//! for (i, v) in graph.vertices_sorted().into_iter().enumerate() {
//!     partitioning.assign(v, PartitionId::new((i % 2) as u32))?;
//! }
//! let workload = Workload::uniform(vec![PatternQuery::path(
//!     QueryId::new(0),
//!     &[Label::new(0), Label::new(1), Label::new(2)],
//! )?])?;
//!
//! let mut serving = AdaptiveServing::new(
//!     graph,
//!     partitioning,
//!     workload.clone(),
//!     ServeConfig::new(2),
//!     AdaptConfig::default(),
//! );
//! let (report, adaptation) = serving.serve(&workload, 100, 42)?;
//! assert_eq!(report.queries, 100);
//! # let _ = adaptation;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod tracker;

pub use adaptive::{AdaptConfig, AdaptOutcome, AdaptiveServing};
pub use tracker::{DriftConfig, WorkloadTracker};

/// Convenient re-exports for examples, tests and the umbrella crate.
pub mod prelude {
    pub use crate::adaptive::{AdaptConfig, AdaptOutcome, AdaptiveServing};
    pub use crate::tracker::{DriftConfig, WorkloadTracker};
}
