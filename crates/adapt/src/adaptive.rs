//! The adaptation driver: close the loop from observed queries to placement.
//!
//! [`AdaptiveServing`] owns the pieces the loop needs — the graph, the live
//! [`Partitioning`], an [`EpochStore`] of immutable shard snapshots, a
//! [`WorkloadTracker`] and a [`MigrationPlanner`] — and ties them into
//!
//! ```text
//!   serve batch ──► track query mix ──► drift? ──► plan bounded moves
//!        ▲                                              │
//!        │                                              ▼
//!   publish epoch ◄── rebuild affected shards ◄── apply to partitioning
//! ```
//!
//! Adaptation never blocks reads: queries pin whatever epoch is current when
//! they execute, the migrated snapshot is built incrementally *off to the
//! side* ([`ShardedStore::apply_migration`] rebuilds only the shards the
//! moves touched) and is published atomically through the epoch store.

use crate::tracker::{DriftConfig, WorkloadTracker};
use loom_graph::{LabelledGraph, StreamElement, VertexId};
use loom_motif::workload::Workload;
use loom_obs::{stage, FlightKind, SpanTimer, Telemetry};
use loom_partition::error::Result;
use loom_partition::migrate::{MigrationConfig, MigrationPlanner};
use loom_partition::partition::{PartitionId, Partitioning};
use loom_serve::engine::{ServeConfig, ServeEngine};
use loom_serve::epoch::EpochStore;
use loom_serve::metrics::ServeReport;
use loom_serve::shard::{record_tombstone_gauges, ShardedStore};
use loom_sim::context::{CancelToken, RequestContext};
use loom_sim::engine::{QueryEngine, QueryRequest, QueryResponse};
use loom_sim::plan::PlanCache;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration for [`AdaptiveServing`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Drift detection parameters.
    pub drift: DriftConfig,
    /// Per-round migration budget and scoring parameters.
    pub migration: MigrationConfig,
    /// Maximum planning rounds per adaptation (each round re-plans against
    /// the placement the previous round produced, so bounded batches can
    /// chase a large drift without one huge stale plan).
    pub max_rounds: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            drift: DriftConfig::default(),
            migration: MigrationConfig::default(),
            max_rounds: 4,
        }
    }
}

/// What one adaptation pass did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptOutcome {
    /// Total-variation drift that triggered the pass.
    pub drift_before: f64,
    /// Drift after the pass (0 right after a rebase).
    pub drift_after: f64,
    /// Vertices whose home shard changed.
    pub moved: usize,
    /// Planning rounds that produced at least one move.
    pub rounds: usize,
    /// Shards whose indexes were rebuilt (0 when no move was applied).
    pub affected_shards: usize,
    /// The epoch the migrated snapshot was published under (unchanged when
    /// no move was applied).
    pub epoch: u64,
}

/// What one mutation batch ([`AdaptiveServing::apply_mutations`]) did to the
/// serving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationOutcome {
    /// Vertices tombstoned in the published snapshot.
    pub removed_vertices: usize,
    /// Edges tombstoned in the published snapshot.
    pub removed_edges: usize,
    /// Vertices relabelled in place.
    pub relabelled: usize,
    /// The epoch the tombstoned snapshot was published under (unchanged when
    /// the batch touched nothing in the store).
    pub epoch: u64,
}

/// What one epoch-compaction pass ([`AdaptiveServing::compact_now`]) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactOutcome {
    /// Shards physically rewritten by the pass.
    pub compacted_shards: usize,
    /// Tombstoned vertices physically removed.
    pub purged_vertices: usize,
    /// Tombstoned adjacency slots physically reclaimed.
    pub purged_slots: usize,
    /// The epoch the compacted snapshot was published under (unchanged when
    /// nothing crossed the threshold).
    pub epoch: u64,
}

/// A serving endpoint that notices workload drift and incrementally migrates
/// the placement underneath in-flight queries.
#[derive(Debug)]
pub struct AdaptiveServing {
    graph: LabelledGraph,
    partitioning: Partitioning,
    epochs: EpochStore,
    engine: ServeEngine,
    tracker: WorkloadTracker,
    planner: MigrationPlanner,
    config: AdaptConfig,
    adaptations: usize,
    total_moved: usize,
    /// Optional telemetry: adaptation passes charge `adapt.plan` /
    /// `adapt.migrate` spans and leave flight-recorder events; the serving
    /// engine underneath is observed with the same handle.
    telemetry: Option<Arc<Telemetry>>,
    /// Cancellation token covering the current serving round. An adaptation
    /// pass fires it before migrating — in-flight executions running under
    /// it unwind cooperatively against their pinned (pre-migration)
    /// snapshot — and swaps in a fresh token for the next round.
    round_cancel: CancelToken,
}

impl AdaptiveServing {
    /// Stand up adaptive serving over `graph` placed by `partitioning`,
    /// tracking drift against `mined_workload` — the workload (query set
    /// *and* frequencies) the partitioning was mined for.
    pub fn new(
        graph: LabelledGraph,
        partitioning: Partitioning,
        mined_workload: Workload,
        serve: ServeConfig,
        config: AdaptConfig,
    ) -> Self {
        let store = ShardedStore::from_parts(&graph, &partitioning);
        Self {
            epochs: EpochStore::new(store),
            engine: ServeEngine::new(serve),
            tracker: WorkloadTracker::new(mined_workload, config.drift),
            planner: MigrationPlanner::new(config.migration),
            graph,
            partitioning,
            config,
            adaptations: 0,
            total_moved: 0,
            telemetry: None,
            round_cancel: CancelToken::new(),
        }
    }

    /// Builder-style telemetry: the serving engine underneath populates the
    /// shard counters and stage histograms, and adaptation passes charge
    /// `adapt.plan` / `adapt.migrate` spans plus [`FlightKind::Migrated`] and
    /// [`FlightKind::EpochPublished`] flight-recorder events.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.engine = std::mem::take(&mut self.engine).with_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
        self
    }

    /// Builder-style plan cache: the serving engine underneath (router and
    /// workers alike) executes the cache's compiled plans instead of
    /// re-deriving matching orders per run.
    #[must_use]
    pub fn with_plan_cache(mut self, plans: Arc<PlanCache>) -> Self {
        self.engine = std::mem::take(&mut self.engine).with_plan_cache(plans);
        self
    }

    /// The live placement (kept in lock-step with the published snapshots).
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The epoch store serving queries; external readers may pin snapshots
    /// from it at any time.
    pub fn epochs(&self) -> &EpochStore {
        &self.epochs
    }

    /// The drift tracker.
    pub fn tracker(&self) -> &WorkloadTracker {
        &self.tracker
    }

    /// The epoch currently being served.
    pub fn current_epoch(&self) -> u64 {
        self.epochs.current_epoch()
    }

    /// Adaptation passes that applied at least one move.
    pub fn adaptations(&self) -> usize {
        self.adaptations
    }

    /// Total vertices migrated over the store's lifetime.
    pub fn total_moved(&self) -> usize {
        self.total_moved
    }

    /// The cancellation token covering the current serving round. Execute
    /// long-lived queries under a context carrying a clone of it
    /// (`RequestContext::unbounded().with_cancel(...)`) to have the next
    /// adaptation pass cancel them cooperatively instead of letting them
    /// finish against a placement that is about to be migrated away. Rotated
    /// (fired and replaced) at the start of every [`AdaptiveServing::adapt_now`].
    pub fn round_token(&self) -> CancelToken {
        self.round_cancel.clone()
    }

    /// Serve `samples` queries from the *live* workload, track the observed
    /// mix, and — when it has drifted past the threshold — run one adaptation
    /// pass before returning. Queries in flight keep their pinned snapshot;
    /// only queries admitted after the pass see the migrated placement.
    ///
    /// `workload` must present the same query set (and order) as the mined
    /// workload the tracker was built with; its frequencies are the live
    /// traffic's and may differ arbitrarily.
    ///
    /// # Errors
    ///
    /// Propagates placement errors from applying a migration plan (cannot
    /// occur for plans produced against the live partitioning).
    pub fn serve(
        &mut self,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> Result<(ServeReport, Option<AdaptOutcome>)> {
        // The batch runs under the round token, so a concurrent adaptation
        // (another handle firing the round) unwinds it cooperatively.
        let ctx = RequestContext::unbounded().with_cancel(self.round_cancel.clone());
        let request = QueryRequest::workload(samples).with_seed(seed);
        let (report, _) = self
            .engine
            .run_request_epochs_ctx(&self.epochs, workload, request, &ctx);
        self.tracker.observe(&report);
        let outcome = if self.tracker.is_drifted() {
            Some(self.adapt_now()?)
        } else {
            None
        };
        Ok((report, outcome))
    }

    /// Apply a mutation batch to the live serving state: removed vertices
    /// and edges leave the graph and the placement (so the planner can never
    /// again propose moving a dead vertex), and the **published** snapshot
    /// gets the matching tombstone marks — queries admitted after the publish
    /// skip the dead entries without any shard rebuild, while in-flight
    /// queries keep their pinned epoch. `AddVertex`/`AddEdge` elements are
    /// ignored here: additions change shard layout and go through a full
    /// republish (checkpoint or rebuild), not a tombstone pass.
    ///
    /// Reclaiming the tombstones' physical space is a separate, explicitly
    /// triggered pass: [`AdaptiveServing::compact_now`].
    pub fn apply_mutations(&mut self, batch: &[StreamElement]) -> MutationOutcome {
        for element in batch {
            match *element {
                StreamElement::AddVertex { .. } | StreamElement::AddEdge { .. } => {}
                StreamElement::RemoveVertex { id } => {
                    if self.graph.remove_vertex(id) {
                        self.partitioning.unassign(id);
                    }
                }
                StreamElement::RemoveEdge { source, target } => {
                    self.graph.remove_edge(source, target);
                }
                StreamElement::Relabel { id, label } => {
                    let _ = self.graph.set_label(id, label);
                }
            }
        }
        let mutated = self.epochs.load().apply_mutations(batch);
        let touched = mutated.removed_vertices + mutated.removed_edges + mutated.relabelled;
        let epoch = if touched > 0 {
            let epoch = self.epochs.publish(mutated.store);
            if let Some(t) = &self.telemetry {
                t.flight().record(FlightKind::EpochPublished { epoch });
            }
            epoch
        } else {
            self.epochs.current_epoch()
        };
        if let Some(t) = &self.telemetry {
            record_tombstone_gauges(&self.epochs.load(), t);
        }
        MutationOutcome {
            removed_vertices: mutated.removed_vertices,
            removed_edges: mutated.removed_edges,
            relabelled: mutated.relabelled,
            epoch,
        }
    }

    /// Run one epoch-compaction pass: rewrite every shard whose tombstone
    /// fraction is at least `threshold` (dropping its dead vertices and
    /// reclaiming its dead adjacency slots) and publish the result exactly
    /// like a migration. Shards below the threshold are carried over
    /// verbatim, tombstones and all — their queries keep skipping the marks.
    ///
    /// Compaction never moves a live vertex between shards, so — unlike
    /// [`AdaptiveServing::adapt_now`] — it does not cancel the serving round:
    /// in-flight queries finish against their pinned snapshot and observe
    /// exactly the same matches.
    pub fn compact_now(&mut self, threshold: f64) -> CompactOutcome {
        let hist = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_histogram(stage::SERVE_COMPACTION));
        let span = SpanTimer::start(hist.as_deref());
        let compacted = self.epochs.load().compact(threshold);
        if compacted.compacted_shards.is_empty()
            && compacted.purged_vertices == 0
            && compacted.purged_slots == 0
        {
            drop(span);
            return CompactOutcome {
                compacted_shards: 0,
                purged_vertices: 0,
                purged_slots: 0,
                epoch: self.epochs.current_epoch(),
            };
        }
        let shards = compacted.compacted_shards.len();
        let epoch = self.epochs.publish(compacted.store);
        drop(span);
        if let Some(t) = &self.telemetry {
            t.flight().record(FlightKind::Compacted {
                purged: compacted.purged_vertices as u64,
                shards: shards as u32,
                epoch,
            });
            t.flight().record(FlightKind::EpochPublished { epoch });
            record_tombstone_gauges(&self.epochs.load(), t);
        }
        CompactOutcome {
            compacted_shards: shards,
            purged_vertices: compacted.purged_vertices,
            purged_slots: compacted.purged_slots,
            epoch,
        }
    }

    /// Run one adaptation pass immediately, regardless of the drift flag:
    /// plan up to `max_rounds` bounded move batches against the observed
    /// mix's hot labels, apply them to the placement, rebuild only the
    /// affected shards and publish the result as a new epoch.
    ///
    /// The tracker is rebased onto the observed mix only once the planner
    /// runs dry. If the pass instead stopped on the round budget with moves
    /// still worth making, the drift flag stays raised so the next serving
    /// batch continues the repair — rebasing there would zero the signal
    /// with the placement only partially adapted.
    ///
    /// # Errors
    ///
    /// Propagates placement errors from applying a migration plan.
    pub fn adapt_now(&mut self) -> Result<AdaptOutcome> {
        // Cancel whatever is still executing under the old round before the
        // placement moves underneath it; the replacement token covers the
        // rounds served against the migrated snapshot.
        let retired = std::mem::replace(&mut self.round_cancel, CancelToken::new());
        retired.cancel();
        let drift_before = self.tracker.drift();
        let hot = self.tracker.hot_label_weights();
        let plan_hist = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_histogram(stage::ADAPT_PLAN));
        let plan_span = SpanTimer::start(plan_hist.as_deref());
        let mut moves: Vec<(VertexId, PartitionId)> = Vec::new();
        let mut rounds = 0;
        let mut planner_ran_dry = false;
        for _ in 0..self.config.max_rounds.max(1) {
            let plan = self.planner.plan(&self.graph, &self.partitioning, &hot);
            if plan.is_empty() {
                planner_ran_dry = true;
                break;
            }
            rounds += 1;
            moves.extend(plan.moves.iter().map(|m| (m.vertex, m.to)));
            plan.apply(&mut self.partitioning)?;
        }
        drop(plan_span);
        if moves.is_empty() {
            // Nothing worth moving (the placement already suits the mix):
            // accept the observed mix as the new baseline so the same drift
            // is not re-flagged every batch.
            self.tracker.rebase();
            return Ok(AdaptOutcome {
                drift_before,
                drift_after: self.tracker.drift(),
                moved: 0,
                rounds: 0,
                affected_shards: 0,
                epoch: self.epochs.current_epoch(),
            });
        }
        let migrate_hist = self
            .telemetry
            .as_ref()
            .map(|t| t.stage_histogram(stage::ADAPT_MIGRATE));
        let migrate_span = SpanTimer::start(migrate_hist.as_deref());
        let migrated = self.epochs.load().apply_migration(&moves);
        let epoch = self.epochs.publish(migrated.store);
        drop(migrate_span);
        if let Some(t) = &self.telemetry {
            t.flight().record(FlightKind::Migrated {
                moved: migrated.moved as u64,
                epoch,
            });
            t.flight().record(FlightKind::EpochPublished { epoch });
        }
        if planner_ran_dry {
            self.tracker.rebase();
        }
        self.adaptations += 1;
        self.total_moved += migrated.moved;
        Ok(AdaptOutcome {
            drift_before,
            drift_after: self.tracker.drift(),
            moved: migrated.moved,
            rounds,
            affected_shards: migrated.affected_shards.len(),
            epoch,
        })
    }
}

/// The read-only serving path of the unified engine API: requests execute
/// against the **current** epoch's snapshots (each query pins the epoch
/// live at its execution), sampling from the *mined* workload mix.
///
/// `run` never adapts — it neither observes the mix nor migrates — so it is
/// safe to call concurrently with external epoch readers; drifted live
/// traffic goes through [`AdaptiveServing::serve`], which closes the loop.
/// Metric parity: for the same request, `run` returns exactly the metrics
/// of [`loom_serve::engine::ServeEngine::serve_epochs`] over the mined
/// workload at the current epoch.
impl QueryEngine for AdaptiveServing {
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse {
        self.engine
            .run_request_epochs_ctx(&self.epochs, self.tracker.workload(), request, ctx)
            .1
    }

    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.engine.plan_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_motif::query::{PatternQuery, QueryId};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    /// A 12-vertex abc-path graph over 2 partitions, deliberately splitting
    /// every abc triple across the partition boundary at vertex granularity.
    fn fixture() -> (LabelledGraph, Partitioning, Workload) {
        let g = path_graph(12, &[l(0), l(1), l(2)]);
        let mut part = Partitioning::new(2, 12).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            // Alternate assignment: maximally scattered.
            part.assign(v, PartitionId::new((i % 2) as u32)).unwrap();
        }
        let workload = Workload::uniform(vec![PatternQuery::path(
            QueryId::new(0),
            &[l(0), l(1), l(2)],
        )
        .unwrap()])
        .unwrap();
        (g, part, workload)
    }

    #[test]
    fn query_engine_run_matches_the_legacy_epoch_path() {
        let (g, part, workload) = fixture();
        let adaptive = AdaptiveServing::new(
            g,
            part,
            workload.clone(),
            ServeConfig::new(2),
            AdaptConfig::default(),
        );
        let request = QueryRequest::workload(60).with_seed(11);
        let response = adaptive.run(request);
        let legacy = adaptive
            .engine
            .serve_epochs(&adaptive.epochs, &workload, 60, 11);
        assert_eq!(response.metrics, legacy.aggregate);
        // Read-only: no adaptation, no epoch churn, no observation.
        assert_eq!(adaptive.current_epoch(), 1);
        assert_eq!(adaptive.adaptations(), 0);
        assert_eq!(adaptive.tracker().batches(), 0);
        assert!(adaptive.plan_cache().is_none());
    }

    #[test]
    fn serving_without_drift_keeps_the_epoch() {
        let (g, part, workload) = fixture();
        let mut adaptive = AdaptiveServing::new(
            g,
            part,
            workload.clone(),
            ServeConfig::new(2),
            AdaptConfig::default(),
        );
        let (report, outcome) = adaptive.serve(&workload, 50, 3).unwrap();
        assert_eq!(report.queries, 50);
        assert!(outcome.is_none(), "uniform traffic matches the baseline");
        assert_eq!(adaptive.current_epoch(), 1);
        assert_eq!(adaptive.adaptations(), 0);
    }

    #[test]
    fn adapt_now_repairs_locality_and_publishes_an_epoch() {
        let (g, part, workload) = fixture();
        let mut adaptive = AdaptiveServing::new(
            g.clone(),
            part,
            workload.clone(),
            ServeConfig::new(2),
            AdaptConfig::default(),
        );
        let before = adaptive
            .engine
            .serve_epochs(&adaptive.epochs, &workload, 200, 7);
        adaptive.tracker.observe_counts(&[200]);
        let outcome = adaptive.adapt_now().unwrap();
        assert!(outcome.moved > 0);
        assert!(outcome.rounds >= 1);
        assert_eq!(outcome.epoch, 2);
        assert_eq!(adaptive.current_epoch(), 2);
        let after = adaptive
            .engine
            .serve_epochs(&adaptive.epochs, &workload, 200, 7);
        assert!(
            after.remote_hop_fraction() < before.remote_hop_fraction(),
            "migration should cut remote hops: {} -> {}",
            before.remote_hop_fraction(),
            after.remote_hop_fraction()
        );
        // The live partitioning matches the published snapshot.
        let snapshot = adaptive.epochs().load();
        for (v, p) in adaptive.partitioning().assignments() {
            assert_eq!(snapshot.home_shard(v), Some(p));
        }
    }

    #[test]
    fn exhausted_round_budget_keeps_the_drift_flag_raised() {
        // A budget far too small for the pending repair: the pass must NOT
        // rebase, so the next batch continues migrating instead of stranding
        // the remaining gains behind a zeroed drift signal.
        let (g, part, _) = fixture();
        let q_fwd = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let q_rev = PatternQuery::path(QueryId::new(1), &[l(2), l(1), l(0)]).unwrap();
        let mined = Workload::new(vec![(q_fwd.clone(), 9.0), (q_rev.clone(), 1.0)]).unwrap();
        let live = Workload::new(vec![(q_fwd, 1.0), (q_rev, 9.0)]).unwrap();
        let config = AdaptConfig {
            migration: MigrationConfig::new(1),
            max_rounds: 1,
            ..AdaptConfig::default()
        };
        let mut adaptive = AdaptiveServing::new(g, part, mined, ServeConfig::new(2), config);
        adaptive.tracker.observe_counts(&[0, 200]);
        assert!(adaptive.tracker.is_drifted());
        let first = adaptive.adapt_now().unwrap();
        assert_eq!(first.moved, 1);
        assert!(
            adaptive.tracker.is_drifted(),
            "budget-exhausted pass must not rebase"
        );
        // Serving the still-drifted traffic again triggers another pass.
        let (_, outcome) = adaptive.serve(&live, 100, 4).unwrap();
        assert!(outcome.is_some(), "repair continues on the next batch");
        assert!(adaptive.total_moved() >= 2);
    }

    #[test]
    fn adapt_now_fires_and_rotates_the_round_token() {
        let (g, part, workload) = fixture();
        let mut adaptive = AdaptiveServing::new(
            g,
            part,
            workload,
            ServeConfig::new(2),
            AdaptConfig::default(),
        );
        let old_round = adaptive.round_token();
        assert!(!old_round.is_cancelled());
        assert!(old_round.is_linked_to(&adaptive.round_token()));
        adaptive.tracker.observe_counts(&[200]);
        adaptive.adapt_now().unwrap();
        // Executions under the retired round observe the cancellation; the
        // fresh round's token is unfired and unlinked.
        assert!(old_round.is_cancelled());
        let new_round = adaptive.round_token();
        assert!(!new_round.is_cancelled());
        assert!(!new_round.is_linked_to(&old_round));
        // A cancelled-round request unwinds with zero traversals.
        let ctx = RequestContext::unbounded().with_cancel(old_round);
        let response = adaptive.run_ctx(QueryRequest::workload(10).with_seed(2), &ctx);
        assert!(response.metrics.cancelled);
        assert_eq!(response.metrics.total_traversals, 0);
    }

    #[test]
    fn adaptation_without_useful_moves_rebases_quietly() {
        // Already-perfect placement: each abc triple wholly inside one
        // partition. Drift gets flagged, but no move clears the gain bar.
        let g = path_graph(6, &[l(0), l(1), l(2)]);
        let mut part = Partitioning::new(2, 6).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 3) as u32)).unwrap();
        }
        let workload = Workload::new(vec![
            (
                PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap(),
                9.0,
            ),
            (
                PatternQuery::path(QueryId::new(1), &[l(2), l(1)]).unwrap(),
                1.0,
            ),
        ])
        .unwrap();
        let mut adaptive = AdaptiveServing::new(
            g,
            part,
            workload,
            ServeConfig::new(2),
            AdaptConfig::default(),
        );
        adaptive.tracker.observe_counts(&[0, 100]);
        assert!(adaptive.tracker.is_drifted());
        let outcome = adaptive.adapt_now().unwrap();
        assert_eq!(adaptive.current_epoch(), 1, "no pointless epoch churn");
        assert!(!adaptive.tracker.is_drifted(), "rebased");
        assert!(outcome.drift_before > 0.0);
        assert_eq!(outcome.drift_after, 0.0);
    }

    #[test]
    fn mutations_tombstone_the_snapshot_and_starve_the_planner() {
        let (g, part, workload) = fixture();
        let dead = g.vertices_sorted()[0];
        let mut adaptive = AdaptiveServing::new(
            g,
            part,
            workload,
            ServeConfig::new(2),
            AdaptConfig::default(),
        );
        let outcome = adaptive.apply_mutations(&[StreamElement::RemoveVertex { id: dead }]);
        assert_eq!(outcome.removed_vertices, 1);
        assert_eq!(outcome.epoch, 2, "tombstone publish bumps the epoch");
        // Dead everywhere: published snapshot, live graph, live placement.
        let snapshot = adaptive.epochs().load();
        assert_eq!(snapshot.home_shard(dead), None);
        assert_eq!(snapshot.tombstoned_vertices(), 1);
        assert!(adaptive.graph.label(dead).is_none());
        assert!(adaptive.partitioning.assignments().all(|(v, _)| v != dead));
        // A forced adaptation pass can no longer name the dead vertex: the
        // migrated snapshot keeps it tombstoned and the placement keeps it
        // unassigned.
        adaptive.tracker.observe_counts(&[200]);
        adaptive.adapt_now().unwrap();
        assert_eq!(adaptive.epochs().load().home_shard(dead), None);
        assert!(adaptive.partitioning.assignments().all(|(v, _)| v != dead));
        // Idempotent: re-removing touches nothing and keeps the epoch.
        let epoch = adaptive.current_epoch();
        let again = adaptive.apply_mutations(&[StreamElement::RemoveVertex { id: dead }]);
        assert_eq!(again.removed_vertices, 0);
        assert_eq!(again.epoch, epoch);
    }

    #[test]
    fn compact_now_reclaims_tombstones_and_publishes_like_a_migration() {
        let (g, part, workload) = fixture();
        let dead = g.vertices_sorted()[5];
        let telemetry = Arc::new(Telemetry::new());
        let mut adaptive = AdaptiveServing::new(
            g,
            part,
            workload.clone(),
            ServeConfig::new(2),
            AdaptConfig::default(),
        )
        .with_telemetry(Arc::clone(&telemetry));
        // Nothing tombstoned yet: compaction is a no-op and keeps the epoch.
        let idle = adaptive.compact_now(0.0);
        assert_eq!(idle.compacted_shards, 0);
        assert_eq!(idle.epoch, 1);
        assert_eq!(adaptive.current_epoch(), 1);
        adaptive.apply_mutations(&[StreamElement::RemoveVertex { id: dead }]);
        let before = adaptive
            .engine
            .serve_epochs(&adaptive.epochs, &workload, 100, 3);
        let outcome = adaptive.compact_now(0.0);
        assert_eq!(outcome.purged_vertices, 1);
        assert!(outcome.purged_slots >= 2, "a path vertex frees both arcs");
        assert!(outcome.compacted_shards >= 1);
        assert_eq!(outcome.epoch, 3);
        let snapshot = adaptive.epochs().load();
        assert_eq!(snapshot.tombstoned_vertices(), 0);
        for shard in snapshot.shards() {
            assert_eq!(snapshot.tombstone_fraction(shard.id()), 0.0);
        }
        // Same answers over the compacted snapshot as over the tombstoned one.
        let after = adaptive
            .engine
            .serve_epochs(&adaptive.epochs, &workload, 100, 3);
        assert_eq!(
            before.aggregate.matches_found,
            after.aggregate.matches_found
        );
        assert_eq!(
            before.aggregate.queries_executed,
            after.aggregate.queries_executed
        );
        // The pass left its flight-recorder trail.
        let dump = telemetry.flight().dump("test");
        assert!(dump
            .events
            .iter()
            .any(|e| matches!(e.kind, FlightKind::Compacted { purged: 1, .. })));
    }
}
