//! Workload-drift tracking: a decayed histogram of the observed query mix.
//!
//! The partitioning a serving engine runs on was mined for one query-mix —
//! the workload frequencies handed to the TPSTry++ miner. [`WorkloadTracker`]
//! watches the mix actually arriving (the
//! [`ServeReport::query_counts`](loom_serve::metrics::ServeReport) each
//! serving batch produces), folds it into an exponentially-decayed sliding
//! histogram, and reports the **total-variation distance** between the two
//! distributions. Crossing a configured threshold flags *drift*: the traffic
//! no longer looks like what the placement was optimised for, and the
//! adaptation loop should re-plan.

use loom_graph::fxhash::FxHashMap;
use loom_graph::Label;
use loom_motif::workload::Workload;
use loom_serve::metrics::ServeReport;
use serde::{Deserialize, Serialize};

/// Configuration for a [`WorkloadTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Multiplicative decay applied to the accumulated histogram before each
    /// new observation batch is folded in (0 = only the latest batch counts,
    /// 1 = never forget). 0.5 halves the weight of history per batch.
    pub decay: f64,
    /// Total-variation distance (in `[0, 1]`) between the observed and the
    /// baseline distribution above which drift is flagged.
    pub threshold: f64,
    /// Minimum decayed sample mass before drift can be flagged at all —
    /// guards against reacting to a handful of queries.
    pub min_samples: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            decay: 0.5,
            threshold: 0.15,
            min_samples: 32.0,
        }
    }
}

/// Tracks the observed query mix against the mix a partitioning was mined
/// for, and flags drift.
#[derive(Debug, Clone)]
pub struct WorkloadTracker {
    workload: Workload,
    /// The distribution the current placement was optimised for, normalised.
    baseline: Vec<f64>,
    /// Decayed observation counts per query index.
    observed: Vec<f64>,
    config: DriftConfig,
    batches: usize,
}

impl WorkloadTracker {
    /// Track drift against the mined `workload`'s frequencies. The workload's
    /// *query set and order* must match the workloads later served (only the
    /// frequencies may differ between phases) so that
    /// [`ServeReport::query_counts`] indexes line up.
    pub fn new(workload: Workload, config: DriftConfig) -> Self {
        let baseline = (0..workload.len()).map(|i| workload.frequency(i)).collect();
        let observed = vec![0.0; workload.len()];
        Self {
            workload,
            baseline,
            observed,
            config,
            batches: 0,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// The query set the tracker indexes against.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of observation batches folded in so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Fold one serving report's observed query mix into the histogram.
    /// Reports over a different query-set length are ignored (they cannot be
    /// aligned with the baseline).
    pub fn observe(&mut self, report: &ServeReport) {
        self.observe_counts(&report.query_counts);
    }

    /// Fold raw per-query-index counts into the decayed histogram.
    pub fn observe_counts(&mut self, counts: &[usize]) {
        if counts.len() != self.observed.len() {
            return;
        }
        for o in &mut self.observed {
            *o *= self.config.decay;
        }
        for (o, &c) in self.observed.iter_mut().zip(counts) {
            *o += c as f64;
        }
        self.batches += 1;
    }

    /// Total decayed sample mass currently in the histogram.
    pub fn sample_mass(&self) -> f64 {
        self.observed.iter().sum()
    }

    /// The normalised observed distribution (the baseline when nothing has
    /// been observed yet, so an idle tracker never reports drift).
    pub fn observed_distribution(&self) -> Vec<f64> {
        let mass = self.sample_mass();
        if mass <= 0.0 {
            return self.baseline.clone();
        }
        self.observed.iter().map(|&o| o / mass).collect()
    }

    /// The distribution the current placement is optimised for.
    pub fn baseline_distribution(&self) -> &[f64] {
        &self.baseline
    }

    /// Total-variation distance between the observed mix and the baseline:
    /// `0.5 · Σ |observed_i − baseline_i|`, in `[0, 1]`. Reports 0 until the
    /// decayed sample mass reaches `min_samples`.
    pub fn drift(&self) -> f64 {
        if self.sample_mass() < self.config.min_samples {
            return 0.0;
        }
        let observed = self.observed_distribution();
        0.5 * observed
            .iter()
            .zip(&self.baseline)
            .map(|(o, b)| (o - b).abs())
            .sum::<f64>()
    }

    /// Whether the tracked mix has drifted past the configured threshold.
    pub fn is_drifted(&self) -> bool {
        self.drift() > self.config.threshold
    }

    /// Per-label heat under the observed mix, normalised so the hottest label
    /// weighs 1.0: each query spreads its observed probability uniformly over
    /// its pattern's vertex labels. This is the weight map the
    /// [`MigrationPlanner`](loom_partition::migrate::MigrationPlanner) scores
    /// edges with.
    pub fn hot_label_weights(&self) -> FxHashMap<Label, f64> {
        let observed = self.observed_distribution();
        let mut heat: FxHashMap<Label, f64> = FxHashMap::default();
        for (i, query) in self.workload.queries().iter().enumerate() {
            let pattern = query.graph();
            if pattern.is_empty() {
                continue;
            }
            let share = observed[i] / pattern.vertex_count() as f64;
            for (_, label) in pattern.labelled_vertices() {
                *heat.entry(label).or_insert(0.0) += share;
            }
        }
        let max = heat.values().fold(0.0f64, |a, &b| a.max(b));
        if max > 0.0 {
            for w in heat.values_mut() {
                *w /= max;
            }
        }
        heat
    }

    /// Accept the observed mix as the new baseline — called after the
    /// placement has been adapted to it, so drift is measured against what
    /// the partitioning is *now* optimised for.
    pub fn rebase(&mut self) {
        self.baseline = self.observed_distribution();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::Label;
    use loom_motif::query::{PatternQuery, QueryId};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn two_query_workload(w0: f64, w1: f64) -> Workload {
        Workload::new(vec![
            (
                PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap(),
                w0,
            ),
            (
                PatternQuery::path(QueryId::new(1), &[l(2), l(3)]).unwrap(),
                w1,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn idle_tracker_reports_no_drift() {
        let tracker = WorkloadTracker::new(two_query_workload(9.0, 1.0), DriftConfig::default());
        assert_eq!(tracker.drift(), 0.0);
        assert!(!tracker.is_drifted());
        assert_eq!(tracker.observed_distribution(), vec![0.9, 0.1]);
    }

    #[test]
    fn matching_traffic_stays_under_threshold() {
        let mut tracker =
            WorkloadTracker::new(two_query_workload(9.0, 1.0), DriftConfig::default());
        tracker.observe_counts(&[90, 10]);
        tracker.observe_counts(&[89, 11]);
        assert!(tracker.drift() < 0.02);
        assert!(!tracker.is_drifted());
    }

    #[test]
    fn flipped_traffic_is_flagged_as_drift() {
        let mut tracker =
            WorkloadTracker::new(two_query_workload(9.0, 1.0), DriftConfig::default());
        tracker.observe_counts(&[10, 90]);
        // TV distance between (0.9, 0.1) and (0.1, 0.9) is 0.8.
        assert!((tracker.drift() - 0.8).abs() < 1e-9);
        assert!(tracker.is_drifted());
    }

    #[test]
    fn small_samples_are_ignored() {
        let mut tracker =
            WorkloadTracker::new(two_query_workload(9.0, 1.0), DriftConfig::default());
        tracker.observe_counts(&[0, 5]);
        assert_eq!(tracker.drift(), 0.0, "below min_samples");
        tracker.observe_counts(&[0, 60]);
        assert!(tracker.is_drifted());
    }

    #[test]
    fn decay_forgets_old_phases() {
        let config = DriftConfig {
            decay: 0.25,
            ..DriftConfig::default()
        };
        let mut tracker = WorkloadTracker::new(two_query_workload(1.0, 1.0), config);
        tracker.observe_counts(&[100, 0]);
        for _ in 0..4 {
            tracker.observe_counts(&[0, 100]);
        }
        let observed = tracker.observed_distribution();
        assert!(observed[1] > 0.95, "old phase should have decayed away");
    }

    #[test]
    fn mismatched_report_lengths_are_ignored() {
        let mut tracker =
            WorkloadTracker::new(two_query_workload(1.0, 1.0), DriftConfig::default());
        tracker.observe_counts(&[1, 2, 3]);
        assert_eq!(tracker.batches(), 0);
        assert_eq!(tracker.sample_mass(), 0.0);
    }

    #[test]
    fn hot_label_weights_follow_the_observed_mix() {
        let mut tracker =
            WorkloadTracker::new(two_query_workload(9.0, 1.0), DriftConfig::default());
        tracker.observe_counts(&[10, 90]);
        let heat = tracker.hot_label_weights();
        // Query 1's labels (2, 3) are hot; query 0's (0, 1) are not.
        assert_eq!(heat[&l(2)], 1.0);
        assert_eq!(heat[&l(3)], 1.0);
        assert!(heat[&l(0)] < 0.2);
    }

    #[test]
    fn rebase_resets_the_drift_reference() {
        let mut tracker =
            WorkloadTracker::new(two_query_workload(9.0, 1.0), DriftConfig::default());
        tracker.observe_counts(&[10, 90]);
        assert!(tracker.is_drifted());
        tracker.rebase();
        assert!(!tracker.is_drifted());
        // The same traffic keeps matching the new baseline.
        tracker.observe_counts(&[10, 90]);
        assert!(tracker.drift() < 0.05);
    }
}
