//! Per-request deadlines and cooperative cancellation.
//!
//! Heavy mixed traffic needs two controls the traversal budget alone cannot
//! provide: a **wall-clock deadline** (the caller stops caring about the
//! answer after some instant, however cheap the remaining work is) and a
//! **cancellation token** (an external event — a dropped connection, an
//! adaptation pass about to migrate the placement — invalidates the request
//! mid-flight). Both are *cooperative*: the matcher polls them inside its
//! existing traversal-budget check and unwinds the backtracking search at the
//! next candidate expansion, returning the partial metrics it collected so
//! far flagged `deadline_exceeded` / `cancelled` in
//! [`ExecutionMetrics`](crate::executor::ExecutionMetrics).
//!
//! [`RequestContext`] bundles the two and rides alongside a
//! [`QueryRequest`](crate::engine::QueryRequest) through every engine:
//! router, shard workers and matcher all observe the same context. A default
//! context is unbounded — no deadline, a token nobody fires — and adds one
//! relaxed atomic load per traversal, so the no-deadline path keeps its
//! bit-identical cross-engine parity.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cooperative cancellation token.
///
/// Clones share one flag: firing any clone cancels every holder. The flag is
/// one-way — there is no reset; contexts that outlive a cancellation swap in
/// a fresh token instead (see the adaptive loop's round token).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire the token: every clone observes the cancellation from now on.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has been fired.
    ///
    /// A relaxed load — the matcher calls this on its hot path, and the only
    /// consequence of observing the flag one traversal late is one extra
    /// candidate expansion.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Whether `other` shares this token's flag (clones are linked; fresh
    /// tokens are not).
    pub fn is_linked_to(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.fired, &other.fired)
    }
}

/// The per-request execution context threaded from the engine entry point
/// down into the matcher: an optional wall-clock deadline plus a
/// cancellation token.
#[derive(Debug, Clone, Default)]
pub struct RequestContext {
    /// The instant after which the request's executions cooperatively
    /// unwind and report `deadline_exceeded`. `None` means unbounded.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation token; firing it unwinds every execution
    /// running under this context at its next traversal check.
    pub cancel: CancelToken,
}

impl RequestContext {
    /// An unbounded context: no deadline, a token nobody fires.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Builder-style absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style relative deadline (`now + timeout`).
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Builder-style cancellation token (replacing the default one).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The context tightened by a request's own deadline: the effective
    /// deadline is the earlier of the two, the token is shared.
    #[must_use]
    pub fn tightened_by(&self, request_deadline: Option<Instant>) -> Self {
        let deadline = match (self.deadline, request_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Self {
            deadline,
            cancel: self.cancel.clone(),
        }
    }

    /// Whether the deadline (if any) has already passed.
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the cancellation token has been fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Time remaining until the deadline (`None` when unbounded, zero when
    /// already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_share_their_flag_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(token.is_linked_to(&clone));
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(!token.is_linked_to(&CancelToken::new()));
    }

    #[test]
    fn unbounded_context_never_expires() {
        let ctx = RequestContext::unbounded();
        assert!(!ctx.is_expired());
        assert!(!ctx.is_cancelled());
        assert_eq!(ctx.remaining(), None);
    }

    #[test]
    fn expired_deadline_is_observed() {
        let ctx =
            RequestContext::unbounded().with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(ctx.is_expired());
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
        let future = RequestContext::unbounded().with_timeout(Duration::from_secs(3600));
        assert!(!future.is_expired());
        assert!(future.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn tightening_takes_the_earlier_deadline_and_keeps_the_token() {
        let near = Instant::now() + Duration::from_millis(1);
        let far = Instant::now() + Duration::from_secs(60);
        let ctx = RequestContext::unbounded().with_deadline(far);
        let tightened = ctx.tightened_by(Some(near));
        assert_eq!(tightened.deadline, Some(near));
        assert!(tightened.cancel.is_linked_to(&ctx.cancel));
        // Either side being None defers to the other.
        assert_eq!(ctx.tightened_by(None).deadline, Some(far));
        assert_eq!(
            RequestContext::unbounded()
                .tightened_by(Some(near))
                .deadline,
            Some(near)
        );
    }
}
