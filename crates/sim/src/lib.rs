//! # loom-sim
//!
//! A deterministic, in-process simulator of a *distributed* pattern-matching
//! query engine, used to measure the metric LOOM actually optimises: the
//! number (and probability) of **inter-partition traversals** incurred while
//! executing a workload of pattern matching queries against a partitioned
//! graph.
//!
//! The paper assumes a distributed graph database (e.g. Titan) hosting the
//! partitions; rebuilding one would add enormous noise without changing the
//! quantity of interest, so this crate substitutes a faithful cost model:
//!
//! * [`store::PartitionedStore`] — the partitioned graph: vertex data plus a
//!   routing table mapping every vertex to its host partition;
//! * [`plan`] — compile-once query planning: the [`plan::QueryPlanner`]
//!   cost-ranks candidate matching orders against graph statistics and the
//!   [`plan::PlanCache`] shares the compiled [`plan::QueryPlan`]s (one per
//!   workload query) with the router, the sequential executor and every
//!   serving worker;
//! * [`matcher`] — the reusable instrumented backtracking sub-graph matcher,
//!   generic over the [`matcher::PatternStore`] storage abstraction and
//!   driven by compiled plans ([`matcher::execute_plan`]) so the concurrent
//!   `loom-serve` engine executes the exact same search;
//! * [`executor`] — the sequential executor driving the matcher against a
//!   [`store::PartitionedStore`], counting every traversal it performs and
//!   whether the traversal stayed on the local partition or had to hop to a
//!   remote one (with a configurable latency model);
//! * [`engine`] — the unified [`engine::QueryEngine`] API:
//!   [`engine::QueryRequest`] / [`engine::QueryResponse`] with a pull-based
//!   [`engine::MatchCursor`] over concrete embeddings, implemented by the
//!   sequential engine here and by the `loom-serve` / `loom-adapt` layers;
//! * [`context`] — per-request deadlines and cooperative cancellation
//!   ([`context::RequestContext`] / [`context::CancelToken`]), threaded from
//!   every engine into the matcher's traversal-budget check so an expired
//!   deadline or a fired token unwinds a search mid-backtrack;
//! * [`drift`] — the two-phase drifting-workload scenario (disjoint hot
//!   motif families per phase) driving the `loom-adapt` adaptation story;
//! * [`churn`] — the deletion-churn scenario (grow, then dissolve planted
//!   instances through removals and relabels) driving the tombstone and
//!   epoch-compaction story;
//! * [`runner`] — the experiment driver: generate graph + workload, stream
//!   the graph through each partitioner under test, execute a sampled query
//!   mix against each resulting partitioning, and collect quality +
//!   execution metrics;
//! * [`report`] — plain-text and CSV table rendering for the experiment
//!   binary and EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod context;
pub mod drift;
pub mod engine;
pub mod executor;
pub mod growth;
pub mod matcher;
pub mod plan;
pub mod report;
pub mod runner;
pub mod store;

pub use churn::{ChurnRun, DeletionChurnScenario};
pub use context::{CancelToken, RequestContext};
pub use drift::DriftScenario;
pub use engine::{MatchCursor, QueryEngine, QueryRequest, QueryResponse, QueryTarget};
pub use executor::{ExecutionMetrics, LatencyModel, QueryExecutor, QueryMode};
pub use growth::{GrowthCheckpoint, GrowthScenario};
pub use matcher::{Embedding, PatternStore};
pub use plan::{GraphStatistics, PlanCache, PlanId, PlanStrategy, QueryPlan, QueryPlanner};
pub use runner::{ExperimentResult, ExperimentRunner, PartitionerKind};
pub use store::PartitionedStore;

/// Convenient re-exports for the experiment binary and examples.
pub mod prelude {
    pub use crate::churn::{ChurnRun, DeletionChurnScenario};
    pub use crate::context::{CancelToken, RequestContext};
    pub use crate::drift::DriftScenario;
    pub use crate::engine::{
        MatchCursor, QueryEngine, QueryRequest, QueryResponse, QueryTarget, SequentialEngine,
    };
    pub use crate::executor::{ExecutionMetrics, LatencyModel, QueryExecutor, QueryMode};
    pub use crate::growth::{GrowthCheckpoint, GrowthScenario};
    pub use crate::matcher::{Embedding, PatternStore};
    pub use crate::plan::{
        GraphStatistics, PlanCache, PlanId, PlanStrategy, QueryPlan, QueryPlanner,
    };
    pub use crate::report::{Table, TableRow};
    pub use crate::runner::{
        ExperimentConfig, ExperimentResult, ExperimentRunner, PartitionerKind,
    };
    pub use crate::store::PartitionedStore;
}
