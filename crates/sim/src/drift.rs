//! A two-phase drifting workload over one graph: the adaptation test bed.
//!
//! LOOM freezes workload awareness at mining time; this scenario manufactures
//! the situation that breaks that assumption. One graph carries two *disjoint*
//! planted motif families (an `a–b–c` path family on labels 0/1/2 and a
//! `d–e–f` family on labels 3/4/5). The query set is fixed across the run —
//! so query indices are stable and observed query-mix histograms stay
//! comparable — but the *frequencies* flip between phases:
//!
//! * **phase A** hammers the `abc` family (the mix the partitioning is mined
//!   and built for);
//! * **phase B** hammers the `def` family (the drifted traffic).
//!
//! A partitioning mined for phase A keeps `abc` instances intact but scatters
//! `def` instances, so its remote-hop fraction degrades when phase B arrives
//! — exactly the gap `loom-adapt` closes by incremental migration.

use loom_graph::generators::motif_planted::{MotifPlantConfig, PlantedInstance};
use loom_graph::generators::motif_planted_graph;
use loom_graph::generators::regular::path_graph;
use loom_graph::{Label, LabelledGraph};
use loom_motif::query::{PatternQuery, QueryId};
use loom_motif::workload::Workload;
use serde::{Deserialize, Serialize};

/// Parameters of the two-phase drift scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftScenario {
    /// Background vertices around the planted motif instances.
    pub background_vertices: usize,
    /// Planted instances per motif family.
    pub instances_per_motif: usize,
    /// Frequency weight of the hot query in each phase.
    pub hot_weight: f64,
    /// Frequency weight of the cold query in each phase.
    pub cold_weight: f64,
    /// RNG seed for the graph plant.
    pub seed: u64,
}

impl DriftScenario {
    /// A scenario sized for CI smoke tests and the adaptation test suite.
    pub fn small(seed: u64) -> Self {
        Self {
            background_vertices: 600,
            instances_per_motif: 60,
            hot_weight: 9.0,
            cold_weight: 1.0,
            seed,
        }
    }

    /// The `abc` motif (hot in phase A).
    pub fn motif_a() -> LabelledGraph {
        path_graph(3, &[Label::new(0), Label::new(1), Label::new(2)])
    }

    /// The `def` motif (hot in phase B).
    pub fn motif_b() -> LabelledGraph {
        path_graph(3, &[Label::new(3), Label::new(4), Label::new(5)])
    }

    /// The fixed query set shared by both phases: `[abc, def]`. Keeping the
    /// set (and its order) constant across phases is what makes observed
    /// query-count histograms comparable between them.
    pub fn queries() -> Vec<PatternQuery> {
        vec![
            PatternQuery::path(
                QueryId::new(0),
                &[Label::new(0), Label::new(1), Label::new(2)],
            )
            .expect("valid abc query"),
            PatternQuery::path(
                QueryId::new(1),
                &[Label::new(3), Label::new(4), Label::new(5)],
            )
            .expect("valid def query"),
        ]
    }

    /// Generate the graph: a random background with both motif families
    /// planted disjointly, stitched in with one attachment edge each.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors
    /// ([`loom_graph::error::GraphError`]) for degenerate sizes.
    pub fn build_graph(&self) -> loom_graph::error::Result<(LabelledGraph, Vec<PlantedInstance>)> {
        motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: self.background_vertices,
                background_edges: self.background_vertices * 5 / 2,
                instances_per_motif: self.instances_per_motif,
                attachment_edges: 1,
                // A wide background alphabet keeps both query families
                // selective: accidental instances outside the plants are rare.
                label_count: 10,
                seed: self.seed,
            },
            &[Self::motif_a(), Self::motif_b()],
        )
    }

    /// The phase-A workload: `abc` hot, `def` cold.
    pub fn phase_a(&self) -> Workload {
        let qs = Self::queries();
        Workload::new(vec![
            (qs[0].clone(), self.hot_weight),
            (qs[1].clone(), self.cold_weight),
        ])
        .expect("valid phase-A workload")
    }

    /// The phase-B workload: `def` hot, `abc` cold — the drifted traffic.
    pub fn phase_b(&self) -> Workload {
        let qs = Self::queries();
        Workload::new(vec![
            (qs[0].clone(), self.cold_weight),
            (qs[1].clone(), self.hot_weight),
        ])
        .expect("valid phase-B workload")
    }
}

impl Default for DriftScenario {
    fn default() -> Self {
        Self::small(42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_share_the_query_set_with_flipped_frequencies() {
        let scenario = DriftScenario::small(7);
        let (a, b) = (scenario.phase_a(), scenario.phase_b());
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        for i in 0..2 {
            assert_eq!(a.queries()[i].id(), b.queries()[i].id());
        }
        assert!(a.frequency(0) > a.frequency(1));
        assert!(b.frequency(1) > b.frequency(0));
        // The flip is symmetric.
        assert!((a.frequency(0) - b.frequency(1)).abs() < 1e-12);
    }

    #[test]
    fn graph_plants_both_motif_families() {
        let scenario = DriftScenario {
            background_vertices: 120,
            instances_per_motif: 10,
            ..DriftScenario::small(3)
        };
        let (graph, instances) = scenario.build_graph().unwrap();
        assert!(graph.vertex_count() >= 120 + 2 * 10 * 3);
        assert_eq!(instances.len(), 20);
        assert!(instances.iter().any(|i| i.motif_index == 0));
        assert!(instances.iter().any(|i| i.motif_index == 1));
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let scenario = DriftScenario {
            background_vertices: 80,
            instances_per_motif: 5,
            ..DriftScenario::small(11)
        };
        let (g1, _) = scenario.build_graph().unwrap();
        let (g2, _) = scenario.build_graph().unwrap();
        assert_eq!(g1.vertex_count(), g2.vertex_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
    }
}
