//! The partitioned graph store.
//!
//! [`PartitionedStore`] couples a data graph with a [`Partitioning`] and
//! answers the questions a distributed query router would: where does a
//! vertex live, what are its neighbours, and does following a given edge stay
//! on the same partition or cross to another one?
//!
//! The per-partition and per-label vertex indexes are built **once** at
//! construction — [`PartitionedStore::vertices_in`] and
//! [`PartitionedStore::vertices_with_label`] return slices into them, because
//! both sit on the query router's hot path (every rooted query starts with a
//! label-index lookup).

use crate::matcher::PatternStore;
use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, LabelledGraph, VertexId};
use loom_partition::partition::{PartitionId, Partitioning};

/// A data graph plus the partitioning that hosts it.
#[derive(Debug, Clone)]
pub struct PartitionedStore {
    graph: LabelledGraph,
    partitioning: Partitioning,
    /// Partition index → vertices hosted there, sorted by id.
    by_partition: Vec<Vec<VertexId>>,
    /// Label → vertices carrying it, sorted by id (the "label index" a graph
    /// database would consult to seed a query).
    by_label: FxHashMap<Label, Vec<VertexId>>,
}

impl PartitionedStore {
    /// Build a store from a graph and a partitioning. Vertices without an
    /// assignment are tolerated (they count as "remote to everyone"), which
    /// lets callers inspect partial/streaming states too.
    ///
    /// Construction materialises the per-partition and per-label indexes so
    /// every later lookup is a slice borrow.
    pub fn new(graph: LabelledGraph, partitioning: Partitioning) -> Self {
        let mut by_partition: Vec<Vec<VertexId>> = vec![Vec::new(); partitioning.k() as usize];
        for (v, p) in partitioning.assignments() {
            by_partition[p.index()].push(v);
        }
        for members in &mut by_partition {
            members.sort_unstable();
        }
        let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
        for (v, l) in graph.labelled_vertices() {
            by_label.entry(l).or_default().push(v);
        }
        for members in by_label.values_mut() {
            members.sort_unstable();
        }
        Self {
            graph,
            partitioning,
            by_partition,
            by_label,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &LabelledGraph {
        &self.graph
    }

    /// The partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitioning.k()
    }

    /// The partition hosting a vertex.
    pub fn partition_of(&self, v: VertexId) -> Option<PartitionId> {
        self.partitioning.partition_of(v)
    }

    /// The label of a vertex.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.graph.label(v)
    }

    /// Neighbours of a vertex.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.graph.neighbors(v)
    }

    /// Whether following the edge `from → to` crosses a partition boundary.
    /// Unassigned endpoints count as remote (worst case).
    pub fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool {
        match (self.partition_of(from), self.partition_of(to)) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }

    /// Vertices hosted by a partition (sorted by id). A slice into the index
    /// built at construction — no per-call allocation.
    pub fn vertices_in(&self, p: PartitionId) -> &[VertexId] {
        self.by_partition
            .get(p.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All vertices carrying a label, sorted by id. A slice into the label
    /// index built at construction — no per-call allocation.
    pub fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.by_label.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl PatternStore for PartitionedStore {
    fn label(&self, v: VertexId) -> Option<Label> {
        PartitionedStore::label(self, v)
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        PartitionedStore::neighbors(self, v)
    }

    fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.graph.contains_edge(a, b)
    }

    fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool {
        PartitionedStore::is_remote_traversal(self, from, to)
    }

    fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        PartitionedStore::vertices_with_label(self, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn store() -> PartitionedStore {
        let g = path_graph(4, &[Label::new(0), Label::new(1)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        // vs[3] deliberately left unassigned.
        PartitionedStore::new(g, part)
    }

    #[test]
    fn routing_and_lookup() {
        let s = store();
        let vs = s.graph().vertices_sorted();
        assert_eq!(s.partition_count(), 2);
        assert_eq!(s.partition_of(vs[0]), Some(PartitionId::new(0)));
        assert_eq!(s.partition_of(vs[3]), None);
        assert_eq!(s.label(vs[1]), Some(Label::new(1)));
        assert_eq!(s.neighbors(vs[0]), &[vs[1]]);
        assert_eq!(s.vertices_in(PartitionId::new(0)), &[vs[0], vs[1]]);
    }

    #[test]
    fn remote_traversal_detection() {
        let s = store();
        let vs = s.graph().vertices_sorted();
        assert!(!s.is_remote_traversal(vs[0], vs[1]));
        assert!(s.is_remote_traversal(vs[1], vs[2]));
        // Unassigned endpoint counts as remote.
        assert!(s.is_remote_traversal(vs[2], vs[3]));
    }

    #[test]
    fn label_index() {
        let s = store();
        let with_a = s.vertices_with_label(Label::new(0));
        assert_eq!(with_a.len(), 2);
        assert!(s.vertices_with_label(Label::new(9)).is_empty());
        // Slices are sorted and repeat lookups alias the same index.
        assert!(with_a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            s.vertices_with_label(Label::new(0)).as_ptr(),
            with_a.as_ptr()
        );
    }

    #[test]
    fn out_of_range_partition_lookup_is_empty() {
        let s = store();
        assert!(s.vertices_in(PartitionId::new(7)).is_empty());
    }
}
