//! The partitioned graph store.
//!
//! [`PartitionedStore`] couples a data graph with a [`Partitioning`] and
//! answers the questions a distributed query router would: where does a
//! vertex live, what are its neighbours, and does following a given edge stay
//! on the same partition or cross to another one?

use loom_graph::{Label, LabelledGraph, VertexId};
use loom_partition::partition::{PartitionId, Partitioning};

/// A data graph plus the partitioning that hosts it.
#[derive(Debug, Clone)]
pub struct PartitionedStore {
    graph: LabelledGraph,
    partitioning: Partitioning,
}

impl PartitionedStore {
    /// Build a store from a graph and a partitioning. Vertices without an
    /// assignment are tolerated (they count as "remote to everyone"), which
    /// lets callers inspect partial/streaming states too.
    pub fn new(graph: LabelledGraph, partitioning: Partitioning) -> Self {
        Self {
            graph,
            partitioning,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &LabelledGraph {
        &self.graph
    }

    /// The partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitioning.k()
    }

    /// The partition hosting a vertex.
    pub fn partition_of(&self, v: VertexId) -> Option<PartitionId> {
        self.partitioning.partition_of(v)
    }

    /// The label of a vertex.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.graph.label(v)
    }

    /// Neighbours of a vertex.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.graph.neighbors(v)
    }

    /// Whether following the edge `from → to` crosses a partition boundary.
    /// Unassigned endpoints count as remote (worst case).
    pub fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool {
        match (self.partition_of(from), self.partition_of(to)) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }

    /// Vertices hosted by a partition (sorted by id).
    pub fn vertices_in(&self, p: PartitionId) -> Vec<VertexId> {
        self.partitioning.members(p)
    }

    /// All vertices carrying a label, sorted by id (the "label index" a graph
    /// database would use to seed a query).
    pub fn vertices_with_label(&self, label: Label) -> Vec<VertexId> {
        let mut result: Vec<VertexId> = self
            .graph
            .labelled_vertices()
            .filter(|&(_, l)| l == label)
            .map(|(v, _)| v)
            .collect();
        result.sort_unstable();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn store() -> PartitionedStore {
        let g = path_graph(4, &[Label::new(0), Label::new(1)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        // vs[3] deliberately left unassigned.
        PartitionedStore::new(g, part)
    }

    #[test]
    fn routing_and_lookup() {
        let s = store();
        let vs = s.graph().vertices_sorted();
        assert_eq!(s.partition_count(), 2);
        assert_eq!(s.partition_of(vs[0]), Some(PartitionId::new(0)));
        assert_eq!(s.partition_of(vs[3]), None);
        assert_eq!(s.label(vs[1]), Some(Label::new(1)));
        assert_eq!(s.neighbors(vs[0]), &[vs[1]]);
        assert_eq!(s.vertices_in(PartitionId::new(0)), vec![vs[0], vs[1]]);
    }

    #[test]
    fn remote_traversal_detection() {
        let s = store();
        let vs = s.graph().vertices_sorted();
        assert!(!s.is_remote_traversal(vs[0], vs[1]));
        assert!(s.is_remote_traversal(vs[1], vs[2]));
        // Unassigned endpoint counts as remote.
        assert!(s.is_remote_traversal(vs[2], vs[3]));
    }

    #[test]
    fn label_index() {
        let s = store();
        let with_a = s.vertices_with_label(Label::new(0));
        assert_eq!(with_a.len(), 2);
        assert!(s.vertices_with_label(Label::new(9)).is_empty());
    }
}
