//! Plain-text and CSV rendering of experiment results.
//!
//! The `experiments` binary in `loom-bench` prints one [`Table`] per
//! experiment; EXPERIMENTS.md embeds the same tables. Keeping the renderer
//! here (rather than in the binary) lets integration tests assert on table
//! content.

use crate::runner::ExperimentResult;

/// A single rendered table row.
pub type TableRow = Vec<String>;

/// A simple column-aligned text table with a CSV escape hatch.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<TableRow>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Append a row; the row is padded / truncated to the header width.
    pub fn push_row(&mut self, row: TableRow) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:width$}", width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.headers));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&render_row(&rule));
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }

    /// Render as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// The standard comparison table used by most experiments: one row per
/// partitioner with both structural and workload-aware quality columns.
pub fn comparison_table(title: impl Into<String>, results: &[ExperimentResult]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "partitioner",
            "ordering",
            "|V|",
            "|E|",
            "k",
            "cut_ratio",
            "imbalance",
            "comm_vol",
            "ipt_prob",
            "remote/q",
            "local_only",
            "latency_us",
            "part_ms",
            "v/s",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.partitioner.clone(),
            r.ordering.clone(),
            r.graph_vertices.to_string(),
            r.graph_edges.to_string(),
            r.k.to_string(),
            format!("{:.4}", r.cut_ratio),
            format!("{:.3}", r.imbalance),
            r.communication_volume.to_string(),
            format!("{:.4}", r.ipt_probability),
            format!("{:.2}", r.remote_per_query),
            format!("{:.3}", r.local_only_fraction),
            format!("{:.1}", r.mean_latency_us),
            format!("{:.1}", r.partition_time_ms),
            format!("{:.0}", r.vertices_per_second),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(name: &str) -> ExperimentResult {
        ExperimentResult {
            partitioner: name.to_owned(),
            ordering: "bfs".to_owned(),
            graph_vertices: 100,
            graph_edges: 300,
            k: 4,
            cut_ratio: 0.25,
            imbalance: 1.05,
            communication_volume: 42,
            partition_time_ms: 1.5,
            vertices_per_second: 66_000.0,
            ipt_probability: 0.125,
            remote_per_query: 2.5,
            local_only_fraction: 0.75,
            mean_latency_us: 120.0,
            matches_found: 10,
        }
    }

    #[test]
    fn render_aligns_columns_and_includes_all_rows() {
        let table = comparison_table("T1", &[sample_result("ldg"), sample_result("loom")]);
        let rendered = table.render();
        assert!(rendered.starts_with("## T1"));
        assert!(rendered.contains("partitioner"));
        assert!(rendered.contains("ldg"));
        assert!(rendered.contains("loom"));
        assert!(rendered.contains("0.2500"));
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.title(), "T1");
    }

    #[test]
    fn csv_output_is_parsable() {
        let table = comparison_table("T1", &[sample_result("hash")]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and row column counts must match"
        );
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = Table::new("t", &["a", "b"]);
        table.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = Table::new("t", &["a", "b", "c"]);
        table.push_row(vec!["only".into()]);
        let rendered = table.render();
        assert!(rendered.contains("only"));
        assert_eq!(table.row_count(), 1);
    }
}
