//! Dynamic graph growth: streaming adaptation vs periodic offline
//! repartitioning.
//!
//! One of the paper's two arguments for *streaming* partitioners (§3.1) is
//! that offline partitioners such as METIS "may have to perform expensive
//! full repartitioning in the presence of graph changes". This module
//! quantifies that trade-off: a graph stream is replayed as a growing graph
//! with a number of checkpoints; at every checkpoint we record, for each
//! strategy,
//!
//! * the cumulative partitioning time spent so far,
//! * the quality (cut ratio) of the current partitioning of the
//!   graph-so-far, and
//! * the *churn*: the fraction of previously placed vertices whose partition
//!   changed since the last checkpoint (vertex moves are what a live system
//!   pays for as data migration).
//!
//! A streaming partitioner never moves a vertex (churn 0) and its cost grows
//! linearly with the stream; the offline partitioner produces better cuts but
//! pays a full repartition — and potentially large migrations — at every
//! checkpoint.

use crate::runner::{SimError, SimResult};
use loom_graph::fxhash::FxHashMap;
use loom_graph::{GraphStream, LabelledGraph, StreamElement, VertexId};
use loom_partition::metrics::evaluate;
use loom_partition::offline::{MultilevelConfig, MultilevelPartitioner};
use loom_partition::partition::{PartitionId, Partitioning};
use loom_partition::traits::Partitioner;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Measurements at one growth checkpoint for one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrowthCheckpoint {
    /// Strategy name (`"streaming:<partitioner>"` or `"offline"`).
    pub strategy: String,
    /// Fraction of the stream consumed at this checkpoint (0, 1].
    pub progress: f64,
    /// Vertices present in the graph-so-far.
    pub vertices: usize,
    /// Cut ratio of the current partitioning of the graph-so-far.
    pub cut_ratio: f64,
    /// Imbalance of the current partitioning.
    pub imbalance: f64,
    /// Cumulative partitioning time in milliseconds.
    pub cumulative_time_ms: f64,
    /// Vertices whose partition changed since the previous checkpoint.
    pub moved_vertices: usize,
    /// `moved_vertices / vertices` (0 for the first checkpoint).
    pub churn: f64,
}

/// Compare a streaming partitioner against periodic offline repartitioning on
/// a growing graph.
#[derive(Debug, Clone)]
pub struct GrowthScenario {
    /// Number of partitions.
    pub k: u32,
    /// Number of checkpoints (≥ 1); the stream is cut into this many equal
    /// element ranges.
    pub checkpoints: usize,
    /// Balance slack shared by both strategies.
    pub slack: f64,
}

impl GrowthScenario {
    /// Create a scenario with the given number of partitions and checkpoints.
    pub fn new(k: u32, checkpoints: usize) -> Self {
        Self {
            k,
            checkpoints: checkpoints.max(1),
            slack: 1.1,
        }
    }

    /// Run a streaming partitioner over the growing stream, recording a
    /// checkpoint after each segment. The partitioner keeps its state across
    /// checkpoints — no vertex is ever moved, so churn is always zero.
    ///
    /// Intermediate checkpoints use the non-destructive
    /// [`Partitioner::snapshot`] (a live system would checkpoint exactly
    /// this: buffered vertices are still awaiting placement); the final
    /// checkpoint calls [`Partitioner::finish`], flushing every buffered
    /// vertex and moving the complete partitioning out.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn run_streaming<P: Partitioner + ?Sized>(
        &self,
        partitioner: &mut P,
        stream: &GraphStream,
    ) -> SimResult<Vec<GrowthCheckpoint>> {
        let name = format!("streaming:{}", partitioner.name());
        let segments = segment_bounds(stream.len(), self.checkpoints);
        let mut checkpoints = Vec::with_capacity(self.checkpoints);
        let mut graph_so_far = LabelledGraph::new();
        let mut cumulative_ms = 0.0;
        let mut previous: FxHashMap<VertexId, PartitionId> = FxHashMap::default();
        let mut consumed = 0usize;
        let last_segment = segments.len().saturating_sub(1);
        for (index, end) in segments.iter().enumerate() {
            let start = Instant::now();
            partitioner
                .ingest_batch(&stream.elements()[consumed..*end])
                .map_err(SimError::from)?;
            for element in &stream.elements()[consumed..*end] {
                apply_element(&mut graph_so_far, element);
            }
            let partitioning = if index == last_segment {
                partitioner.finish().map_err(SimError::from)?
            } else {
                partitioner.snapshot()
            };
            cumulative_ms += start.elapsed().as_secs_f64() * 1_000.0;
            consumed = *end;
            checkpoints.push(self.checkpoint(
                &name,
                index,
                &graph_so_far,
                &partitioning,
                cumulative_ms,
                &mut previous,
            ));
        }
        Ok(checkpoints)
    }

    /// Repartition the graph-so-far from scratch with the offline multilevel
    /// partitioner at every checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn run_offline_periodic(&self, stream: &GraphStream) -> SimResult<Vec<GrowthCheckpoint>> {
        let segments = segment_bounds(stream.len(), self.checkpoints);
        let mut checkpoints = Vec::with_capacity(self.checkpoints);
        let mut graph_so_far = LabelledGraph::new();
        let mut cumulative_ms = 0.0;
        let mut previous: FxHashMap<VertexId, PartitionId> = FxHashMap::default();
        let mut consumed = 0usize;
        for (index, end) in segments.iter().enumerate() {
            for element in &stream.elements()[consumed..*end] {
                apply_element(&mut graph_so_far, element);
            }
            consumed = *end;
            let partitioner = MultilevelPartitioner::new(MultilevelConfig {
                k: self.k,
                slack: self.slack.max(1.05),
                ..MultilevelConfig::new(self.k)
            })
            .map_err(SimError::from)?;
            let start = Instant::now();
            let partitioning = partitioner
                .partition(&graph_so_far)
                .map_err(SimError::from)?;
            cumulative_ms += start.elapsed().as_secs_f64() * 1_000.0;
            checkpoints.push(self.checkpoint(
                "offline",
                index,
                &graph_so_far,
                &partitioning,
                cumulative_ms,
                &mut previous,
            ));
        }
        Ok(checkpoints)
    }

    fn checkpoint(
        &self,
        strategy: &str,
        index: usize,
        graph: &LabelledGraph,
        partitioning: &Partitioning,
        cumulative_ms: f64,
        previous: &mut FxHashMap<VertexId, PartitionId>,
    ) -> GrowthCheckpoint {
        let quality = evaluate(graph, partitioning);
        let mut moved = 0usize;
        for (v, p) in partitioning.assignments() {
            if let Some(&old) = previous.get(&v) {
                if old != p {
                    moved += 1;
                }
            }
        }
        previous.clear();
        previous.extend(partitioning.assignments());
        let vertices = graph.vertex_count();
        GrowthCheckpoint {
            strategy: strategy.to_owned(),
            progress: (index + 1) as f64 / self.checkpoints as f64,
            vertices,
            cut_ratio: quality.cut_ratio,
            imbalance: quality.imbalance,
            cumulative_time_ms: cumulative_ms,
            moved_vertices: moved,
            churn: if vertices == 0 {
                0.0
            } else {
                moved as f64 / vertices as f64
            },
        }
    }
}

/// Element index boundaries for `checkpoints` equal segments.
fn segment_bounds(len: usize, checkpoints: usize) -> Vec<usize> {
    (1..=checkpoints).map(|i| len * i / checkpoints).collect()
}

/// Apply one stream element to a materialised graph (the same idempotent
/// semantics as `GraphStream::materialise`). Shared with the deletion-churn
/// scenario, which replays a mutation stream onto a grown graph.
pub(crate) fn apply_element(graph: &mut LabelledGraph, element: &StreamElement) {
    match *element {
        StreamElement::AddVertex { id, label } => {
            graph.insert_vertex(id, label);
        }
        StreamElement::AddEdge { source, target } => {
            let _ = graph.add_edge_idempotent(source, target);
        }
        StreamElement::RemoveVertex { id } => {
            graph.remove_vertex(id);
        }
        StreamElement::RemoveEdge { source, target } => {
            graph.remove_edge(source, target);
        }
        StreamElement::Relabel { id, label } => {
            let _ = graph.set_label(id, label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::{barabasi_albert, GeneratorConfig};
    use loom_graph::ordering::StreamOrder;
    use loom_partition::ldg::{LdgConfig, LdgPartitioner};

    fn stream() -> (LabelledGraph, GraphStream) {
        let graph = barabasi_albert(GeneratorConfig::new(600, 4, 3), 2).unwrap();
        let stream = GraphStream::from_graph(&graph, &StreamOrder::Random { seed: 2 });
        (graph, stream)
    }

    #[test]
    fn streaming_strategy_has_zero_churn() {
        let (graph, stream) = stream();
        let scenario = GrowthScenario::new(4, 5);
        let mut ldg = LdgPartitioner::new(LdgConfig::new(4, graph.vertex_count())).unwrap();
        let checkpoints = scenario.run_streaming(&mut ldg, &stream).unwrap();
        assert_eq!(checkpoints.len(), 5);
        for c in &checkpoints {
            assert_eq!(c.moved_vertices, 0, "streaming must never move vertices");
            assert_eq!(c.churn, 0.0);
            assert!(c.cut_ratio >= 0.0 && c.cut_ratio <= 1.0);
        }
        // Progress and vertex counts grow monotonically; the final checkpoint
        // covers the whole graph.
        assert!((checkpoints.last().unwrap().progress - 1.0).abs() < 1e-12);
        assert_eq!(checkpoints.last().unwrap().vertices, graph.vertex_count());
        assert!(checkpoints
            .windows(2)
            .all(|w| w[0].vertices <= w[1].vertices));
        assert!(checkpoints
            .windows(2)
            .all(|w| w[0].cumulative_time_ms <= w[1].cumulative_time_ms));
    }

    #[test]
    fn offline_periodic_repartitioning_moves_vertices() {
        let (graph, stream) = stream();
        let scenario = GrowthScenario::new(4, 4);
        let checkpoints = scenario.run_offline_periodic(&stream).unwrap();
        assert_eq!(checkpoints.len(), 4);
        assert_eq!(checkpoints.last().unwrap().vertices, graph.vertex_count());
        // Re-partitioning from scratch after growth moves at least some
        // previously placed vertices at some checkpoint.
        let total_moved: usize = checkpoints.iter().map(|c| c.moved_vertices).sum();
        assert!(total_moved > 0, "offline repartitioning should cause churn");
    }

    #[test]
    fn offline_cut_is_no_worse_than_streaming_at_the_end() {
        let (graph, stream) = stream();
        let scenario = GrowthScenario::new(4, 3);
        let mut ldg = LdgPartitioner::new(LdgConfig::new(4, graph.vertex_count())).unwrap();
        let streaming = scenario.run_streaming(&mut ldg, &stream).unwrap();
        let offline = scenario.run_offline_periodic(&stream).unwrap();
        let final_streaming = streaming.last().unwrap();
        let final_offline = offline.last().unwrap();
        assert!(final_offline.cut_ratio <= final_streaming.cut_ratio + 0.05);
    }

    #[test]
    fn segment_bounds_cover_the_stream() {
        assert_eq!(segment_bounds(10, 3), vec![3, 6, 10]);
        assert_eq!(segment_bounds(0, 4), vec![0, 0, 0, 0]);
        assert_eq!(segment_bounds(5, 1), vec![5]);
    }
}
