//! The experiment driver.
//!
//! [`ExperimentRunner`] takes a data graph, a stream ordering and a query
//! workload, runs every partitioner under test over the same stream, then
//! executes a sampled query mix against each resulting partitioning and
//! collects both the classic partitioning metrics (cut, balance) and the
//! workload-aware ones (inter-partition traversal probability, latency).
//!
//! Partitioner runs are independent, so [`ExperimentRunner::run_many`] fans
//! them out across scoped threads.

use crate::executor::{ExecutionMetrics, LatencyModel, QueryExecutor, QueryMode};
use crate::plan::{GraphStatistics, PlanCache, PlanStrategy, QueryPlanner};
use crate::store::PartitionedStore;
use loom_core::{workload_registry, LoomConfig};
use loom_graph::ordering::StreamOrder;
use loom_graph::{GraphStream, LabelledGraph};
use loom_motif::mining::MotifMiner;
use loom_motif::tpstry::Tpstry;
use loom_motif::workload::Workload;
use loom_partition::fennel::FennelConfig;
use loom_partition::hash::HashConfig;
use loom_partition::ldg::LdgConfig;
use loom_partition::metrics::evaluate;
use loom_partition::offline::{MultilevelConfig, MultilevelPartitioner};
use loom_partition::partition::Partitioning;
use loom_partition::spec::{PartitionerRegistry, PartitionerSpec};
use loom_partition::traits::partition_stream_batched;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors produced while running an experiment.
#[derive(Debug)]
pub enum SimError {
    /// A partitioner failed.
    Partition(loom_partition::PartitionError),
    /// Workload mining failed.
    Motif(loom_motif::MotifError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Partition(e) => write!(f, "partitioning failed: {e}"),
            SimError::Motif(e) => write!(f, "workload mining failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<loom_partition::PartitionError> for SimError {
    fn from(e: loom_partition::PartitionError) -> Self {
        SimError::Partition(e)
    }
}

impl From<loom_motif::MotifError> for SimError {
    fn from(e: loom_motif::MotifError) -> Self {
        SimError::Motif(e)
    }
}

/// Result alias for experiment runs.
pub type SimResult<T> = std::result::Result<T, SimError>;

/// The partitioners the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionerKind {
    /// Hash placement (the distributed-store default).
    Hash,
    /// Linear Deterministic Greedy.
    Ldg,
    /// Fennel.
    Fennel,
    /// LOOM with the full workload-aware pipeline.
    Loom,
    /// Ablation: LOOM without motif clustering (≈ windowed LDG).
    LoomNoMotifs,
    /// Ablation: LOOM without the LDG capacity penalty in cluster placement.
    LoomNoCapacityPenalty,
    /// Ablation: LOOM without merging of overlapping matches.
    LoomNoOverlapMerge,
    /// The offline multilevel (METIS-like) reference partitioner.
    Offline,
}

impl PartitionerKind {
    /// Short, stable name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionerKind::Hash => "hash",
            PartitionerKind::Ldg => "ldg",
            PartitionerKind::Fennel => "fennel",
            PartitionerKind::Loom => "loom",
            PartitionerKind::LoomNoMotifs => "loom-no-motifs",
            PartitionerKind::LoomNoCapacityPenalty => "loom-no-penalty",
            PartitionerKind::LoomNoOverlapMerge => "loom-no-merge",
            PartitionerKind::Offline => "offline",
        }
    }

    /// The comparison set used by most experiments.
    pub fn standard_set() -> Vec<PartitionerKind> {
        vec![
            PartitionerKind::Hash,
            PartitionerKind::Ldg,
            PartitionerKind::Fennel,
            PartitionerKind::Loom,
            PartitionerKind::Offline,
        ]
    }

    /// The LOOM ablation set.
    pub fn ablation_set() -> Vec<PartitionerKind> {
        vec![
            PartitionerKind::Loom,
            PartitionerKind::LoomNoMotifs,
            PartitionerKind::LoomNoCapacityPenalty,
            PartitionerKind::LoomNoOverlapMerge,
        ]
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of partitions.
    pub k: u32,
    /// Balance slack used by every partitioner that honours one.
    pub slack: f64,
    /// LOOM window size (vertices).
    pub window_size: usize,
    /// LOOM motif frequency threshold `T`.
    pub motif_threshold: f64,
    /// Number of query executions sampled from the workload per run.
    pub query_samples: usize,
    /// RNG seed for the query sampling.
    pub seed: u64,
    /// Latency model for the executor.
    pub latency: LatencyModel,
    /// Query execution mode (rooted, by default, to model the online
    /// transactional queries the paper targets).
    pub query_mode: QueryMode,
    /// Chunk size used to drive streams through partitioners batch-wise
    /// (batched and per-element ingestion are contractually identical; this
    /// only affects throughput).
    pub chunk_size: usize,
    /// How workload queries are compiled into plans. The plans are compiled
    /// once per `(graph, workload)` pair and shared across every
    /// partitioner's execution run.
    pub plan_strategy: PlanStrategy,
}

impl ExperimentConfig {
    /// Sensible defaults for `k` partitions.
    pub fn new(k: u32) -> Self {
        Self {
            k,
            slack: 1.1,
            window_size: 256,
            motif_threshold: 0.4,
            query_samples: 200,
            seed: 42,
            latency: LatencyModel::default(),
            query_mode: QueryMode::Rooted { seed_count: 4 },
            chunk_size: loom_partition::traits::DEFAULT_BATCH_SIZE,
            plan_strategy: PlanStrategy::default(),
        }
    }
}

/// One row of an experiment: a partitioner's quality and execution figures on
/// one (graph, ordering, workload) combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Partitioner name.
    pub partitioner: String,
    /// Stream ordering name.
    pub ordering: String,
    /// Vertices in the data graph.
    pub graph_vertices: usize,
    /// Edges in the data graph.
    pub graph_edges: usize,
    /// Number of partitions.
    pub k: u32,
    /// Fraction of edges cut.
    pub cut_ratio: f64,
    /// Balance: max partition size over ideal size.
    pub imbalance: f64,
    /// Communication volume (distinct remote partitions summed over vertices).
    pub communication_volume: usize,
    /// Wall-clock time spent partitioning, in milliseconds.
    pub partition_time_ms: f64,
    /// Partitioning throughput in vertices per second.
    pub vertices_per_second: f64,
    /// Probability that a query traversal crosses partitions.
    pub ipt_probability: f64,
    /// Mean remote traversals per query.
    pub remote_per_query: f64,
    /// Fraction of query executions answered without any remote traversal.
    pub local_only_fraction: f64,
    /// Mean estimated query latency, in microseconds.
    pub mean_latency_us: f64,
    /// Total matches found while executing the sampled workload.
    pub matches_found: usize,
}

impl ExperimentResult {
    fn from_parts(
        partitioner: &str,
        ordering: &str,
        graph: &LabelledGraph,
        k: u32,
        partitioning: &Partitioning,
        partition_time_ms: f64,
        execution: &ExecutionMetrics,
    ) -> Self {
        let quality = evaluate(graph, partitioning);
        let seconds = (partition_time_ms / 1_000.0).max(1e-9);
        Self {
            partitioner: partitioner.to_owned(),
            ordering: ordering.to_owned(),
            graph_vertices: graph.vertex_count(),
            graph_edges: graph.edge_count(),
            k,
            cut_ratio: quality.cut_ratio,
            imbalance: quality.imbalance,
            communication_volume: quality.communication_volume,
            partition_time_ms,
            vertices_per_second: graph.vertex_count() as f64 / seconds,
            ipt_probability: execution.inter_partition_probability(),
            remote_per_query: execution.remote_traversals_per_query(),
            local_only_fraction: execution.local_only_fraction(),
            mean_latency_us: execution.mean_latency_us(),
            matches_found: execution.matches_found,
        }
    }
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: ExperimentConfig,
}

impl ExperimentRunner {
    /// Create a runner with the given shared parameters.
    pub fn new(config: ExperimentConfig) -> Self {
        Self { config }
    }

    /// The shared parameters.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Mine the workload summary the LOOM variants share.
    ///
    /// # Errors
    ///
    /// Propagates workload mining failures.
    pub fn mine_workload(&self, workload: &Workload) -> SimResult<Tpstry> {
        Ok(MotifMiner::default().mine(workload)?)
    }

    /// Build a LOOM configuration matching the experiment parameters.
    pub fn loom_config(&self, graph: &LabelledGraph) -> LoomConfig {
        LoomConfig::new(self.config.k, graph.vertex_count())
            .with_window_size(self.config.window_size)
            .with_motif_threshold(self.config.motif_threshold)
            .with_slack(self.config.slack)
    }

    /// Run a single partitioner over a pre-built stream and evaluate it.
    ///
    /// Builds a fresh workload registry first; when comparing several
    /// partitioners, prefer [`ExperimentRunner::run_many`] (or
    /// [`ExperimentRunner::run_one_with_registry`]) so the registry is built
    /// once and shared.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn run_one(
        &self,
        kind: PartitionerKind,
        graph: &LabelledGraph,
        stream: &GraphStream,
        ordering_name: &str,
        workload: &Workload,
        tpstry: &Tpstry,
    ) -> SimResult<ExperimentResult> {
        let registry = workload_registry(tpstry);
        self.run_one_with_registry(kind, graph, stream, ordering_name, workload, &registry)
    }

    /// Compile the workload's plans once against this graph's statistics —
    /// shared by every partitioner's execution run, so the planning cost is
    /// amortised from per-execution to per-workload.
    pub fn plan_cache(&self, graph: &LabelledGraph, workload: &Workload) -> Arc<PlanCache> {
        let stats = GraphStatistics::from_graph(graph);
        let planner = QueryPlanner::new(self.config.plan_strategy);
        Arc::new(PlanCache::compile(&planner, workload, &stats))
    }

    /// Like [`ExperimentRunner::run_one`], but with a pre-built registry so
    /// the timed partitioning region covers partitioning work only (registry
    /// construction clones the workload summary and stays outside the clock).
    /// Compiles a fresh plan cache; use
    /// [`ExperimentRunner::run_one_with_plans`] to share one across runs.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn run_one_with_registry(
        &self,
        kind: PartitionerKind,
        graph: &LabelledGraph,
        stream: &GraphStream,
        ordering_name: &str,
        workload: &Workload,
        registry: &PartitionerRegistry,
    ) -> SimResult<ExperimentResult> {
        let plans = self.plan_cache(graph, workload);
        self.run_one_with_plans(
            kind,
            graph,
            stream,
            ordering_name,
            workload,
            registry,
            &plans,
        )
    }

    /// Like [`ExperimentRunner::run_one_with_registry`], but executing the
    /// sampled workload through a pre-compiled shared plan cache.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    #[allow(clippy::too_many_arguments)]
    pub fn run_one_with_plans(
        &self,
        kind: PartitionerKind,
        graph: &LabelledGraph,
        stream: &GraphStream,
        ordering_name: &str,
        workload: &Workload,
        registry: &PartitionerRegistry,
        plans: &Arc<PlanCache>,
    ) -> SimResult<ExperimentResult> {
        let start = Instant::now();
        let partitioning = self.partition_with_registry(kind, graph, stream, registry)?;
        let partition_time_ms = start.elapsed().as_secs_f64() * 1_000.0;

        let store = PartitionedStore::new(graph.clone(), partitioning.clone());
        let executor = QueryExecutor::new(self.config.latency)
            .with_mode(self.config.query_mode)
            .with_plan_cache(Arc::clone(plans));
        let execution = executor.execute_workload(
            &store,
            workload,
            self.config.query_samples,
            self.config.seed,
        );
        Ok(ExperimentResult::from_parts(
            kind.name(),
            ordering_name,
            graph,
            self.config.k,
            &partitioning,
            partition_time_ms,
            &execution,
        ))
    }

    /// Run several partitioners (in parallel threads) over the same graph,
    /// ordering and workload.
    ///
    /// # Errors
    ///
    /// Returns the first partitioner failure encountered.
    pub fn run_many(
        &self,
        kinds: &[PartitionerKind],
        graph: &LabelledGraph,
        order: &StreamOrder,
        workload: &Workload,
    ) -> SimResult<Vec<ExperimentResult>> {
        let tpstry = self.mine_workload(workload)?;
        let registry = workload_registry(&tpstry);
        // One compiled plan per workload query, shared by every partitioner
        // run below — the compile-once contract.
        let plans = self.plan_cache(graph, workload);
        let stream = GraphStream::from_graph(graph, order);
        let ordering_name = order.name();

        let results: Mutex<Vec<(usize, SimResult<ExperimentResult>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (index, &kind) in kinds.iter().enumerate() {
                let results = &results;
                let stream = &stream;
                let registry = &registry;
                let plans = &plans;
                scope.spawn(move || {
                    let outcome = self.run_one_with_plans(
                        kind,
                        graph,
                        stream,
                        ordering_name,
                        workload,
                        registry,
                        plans,
                    );
                    results.lock().push((index, outcome));
                });
            }
        });

        let mut collected = results.into_inner();
        collected.sort_by_key(|(index, _)| *index);
        collected.into_iter().map(|(_, outcome)| outcome).collect()
    }

    /// The declarative spec for a streaming partitioner kind under this
    /// runner's shared parameters, or `None` for [`PartitionerKind::Offline`]
    /// (the offline multilevel partitioner consumes a whole graph, not a
    /// stream, and is therefore not spec-constructible).
    pub fn spec_for(
        &self,
        kind: PartitionerKind,
        graph: &LabelledGraph,
    ) -> Option<PartitionerSpec> {
        let n = graph.vertex_count();
        let k = self.config.k;
        Some(match kind {
            PartitionerKind::Hash => {
                let capacity =
                    ((n as f64 / f64::from(k.max(1)) * self.config.slack).ceil() as usize).max(1);
                PartitionerSpec::Hash(HashConfig::new(k, capacity))
            }
            PartitionerKind::Ldg => PartitionerSpec::Ldg(LdgConfig {
                k,
                expected_vertices: n,
                slack: self.config.slack,
            }),
            PartitionerKind::Fennel => PartitionerSpec::Fennel(FennelConfig {
                balance_cap: self.config.slack,
                ..FennelConfig::new(k, n, graph.edge_count())
            }),
            PartitionerKind::Loom => PartitionerSpec::Loom(self.loom_config(graph)),
            PartitionerKind::LoomNoMotifs => {
                PartitionerSpec::Loom(self.loom_config(graph).without_motif_clustering())
            }
            PartitionerKind::LoomNoCapacityPenalty => {
                PartitionerSpec::Loom(self.loom_config(graph).without_capacity_penalty())
            }
            PartitionerKind::LoomNoOverlapMerge => {
                PartitionerSpec::Loom(self.loom_config(graph).without_overlap_merging())
            }
            PartitionerKind::Offline => return None,
        })
    }

    /// Produce a partitioning of `graph` with the requested partitioner.
    ///
    /// Streaming partitioners are built from their declarative spec through
    /// the workload registry and driven as `Box<dyn Partitioner>` trait
    /// objects with batched ingestion; the offline multilevel reference keeps
    /// its direct whole-graph path. Builds a fresh registry per call; use
    /// [`ExperimentRunner::partition_with_registry`] to share one.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn partition_with(
        &self,
        kind: PartitionerKind,
        graph: &LabelledGraph,
        stream: &GraphStream,
        tpstry: &Tpstry,
    ) -> SimResult<Partitioning> {
        self.partition_with_registry(kind, graph, stream, &workload_registry(tpstry))
    }

    /// Like [`ExperimentRunner::partition_with`], but building the streaming
    /// partitioner from a pre-built registry.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn partition_with_registry(
        &self,
        kind: PartitionerKind,
        graph: &LabelledGraph,
        stream: &GraphStream,
        registry: &PartitionerRegistry,
    ) -> SimResult<Partitioning> {
        let Some(spec) = self.spec_for(kind, graph) else {
            let partitioner = MultilevelPartitioner::new(MultilevelConfig {
                k: self.config.k,
                slack: self.config.slack.max(1.05),
                ..MultilevelConfig::new(self.config.k)
            })?;
            return Ok(partitioner.partition(graph)?);
        };
        let mut partitioner = registry.build(&spec)?;
        Ok(partition_stream_batched(
            partitioner.as_mut(),
            stream,
            self.config.chunk_size,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::generators::{motif_planted_graph, MotifPlantConfig};
    use loom_graph::Label;
    use loom_motif::query::{PatternQuery, QueryId};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn abc_workload() -> Workload {
        let q1 = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let q2 = PatternQuery::path(QueryId::new(1), &[l(0), l(1)]).unwrap();
        Workload::new(vec![(q1, 3.0), (q2, 1.0)]).unwrap()
    }

    fn planted_graph(seed: u64) -> LabelledGraph {
        let motif = path_graph(3, &[l(0), l(1), l(2)]);
        motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: 300,
                background_edges: 600,
                instances_per_motif: 40,
                attachment_edges: 1,
                label_count: 4,
                seed,
            },
            &[motif],
        )
        .unwrap()
        .0
    }

    #[test]
    fn run_many_produces_one_row_per_partitioner() {
        let graph = planted_graph(1);
        let workload = abc_workload();
        let runner = ExperimentRunner::new(ExperimentConfig {
            query_samples: 30,
            window_size: 64,
            ..ExperimentConfig::new(4)
        });
        let kinds = PartitionerKind::standard_set();
        let results = runner
            .run_many(&kinds, &graph, &StreamOrder::Bfs, &workload)
            .unwrap();
        assert_eq!(results.len(), kinds.len());
        for (kind, result) in kinds.iter().zip(&results) {
            assert_eq!(result.partitioner, kind.name());
            assert_eq!(result.graph_vertices, graph.vertex_count());
            assert!(result.cut_ratio >= 0.0 && result.cut_ratio <= 1.0);
            assert!(result.imbalance >= 1.0);
            assert!(result.vertices_per_second > 0.0);
            assert!(result.ipt_probability >= 0.0 && result.ipt_probability <= 1.0);
        }
        // Hash should be the worst on inter-partition traversal probability.
        let hash = results.iter().find(|r| r.partitioner == "hash").unwrap();
        let loom = results.iter().find(|r| r.partitioner == "loom").unwrap();
        assert!(
            loom.ipt_probability <= hash.ipt_probability,
            "LOOM ({:.3}) should not exceed hash ({:.3}) on ipt probability",
            loom.ipt_probability,
            hash.ipt_probability
        );
    }

    #[test]
    fn loom_beats_ldg_on_workload_locality_for_motif_heavy_graphs() {
        let graph = planted_graph(9);
        let workload = abc_workload();
        let runner = ExperimentRunner::new(ExperimentConfig {
            query_samples: 60,
            window_size: 128,
            ..ExperimentConfig::new(8)
        });
        let results = runner
            .run_many(
                &[PartitionerKind::Ldg, PartitionerKind::Loom],
                &graph,
                &StreamOrder::Random { seed: 3 },
                &workload,
            )
            .unwrap();
        let ldg = &results[0];
        let loom = &results[1];
        assert!(
            loom.local_only_fraction >= ldg.local_only_fraction,
            "LOOM local-only fraction {:.3} should be at least LDG's {:.3}",
            loom.local_only_fraction,
            ldg.local_only_fraction
        );
    }

    #[test]
    fn ablation_set_runs() {
        let graph = planted_graph(4);
        let workload = abc_workload();
        let runner = ExperimentRunner::new(ExperimentConfig {
            query_samples: 20,
            window_size: 64,
            ..ExperimentConfig::new(4)
        });
        let results = runner
            .run_many(
                &PartitionerKind::ablation_set(),
                &graph,
                &StreamOrder::Bfs,
                &workload,
            )
            .unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().any(|r| r.partitioner == "loom-no-motifs"));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(PartitionerKind::Hash.name(), "hash");
        assert_eq!(PartitionerKind::LoomNoOverlapMerge.name(), "loom-no-merge");
        assert_eq!(PartitionerKind::standard_set().len(), 5);
    }

    #[test]
    fn sim_error_display() {
        let err: SimError = loom_partition::PartitionError::InvalidConfig("k = 0".into()).into();
        assert!(err.to_string().contains("partitioning failed"));
    }
}
