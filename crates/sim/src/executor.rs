//! Distributed query execution simulation.
//!
//! [`QueryExecutor`] answers pattern matching queries against a
//! [`PartitionedStore`] with the shared instrumented backtracking search in
//! [`crate::matcher`] (the same code path the concurrent `loom-serve` worker
//! shards execute): every expansion from a matched vertex to a candidate
//! neighbour either stays on the local partition or requires a hop to a
//! remote partition. The remote fraction is exactly the "probability of
//! inter-partition traversals" the paper optimises; a simple latency model
//! converts hop counts into an estimated query latency.

use crate::matcher::{self, ExecOptions};
use crate::plan::{PlanCache, PlanId, QueryPlan};
use crate::store::PartitionedStore;
use loom_motif::query::PatternQuery;
use loom_motif::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How query executions are seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueryMode {
    /// Enumerate every embedding in the whole graph (an analytical scan).
    /// Almost any partitioning incurs remote traversals in this mode; the
    /// informative metric is the inter-partition traversal *probability*.
    #[default]
    FullEnumeration,
    /// The online / transactional mode the paper targets: each execution is
    /// anchored at a bounded number of randomly chosen root vertices (as a
    /// graph database would do after an index lookup) and explores only
    /// around them. `local_only_fraction` is meaningful in this mode.
    Rooted {
        /// Number of root vertices sampled per execution.
        seed_count: usize,
    },
}

/// Latency cost model for traversals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Cost of a traversal that stays on the local partition, in microseconds.
    pub local_hop_us: f64,
    /// Cost of a traversal that crosses to another partition, in
    /// microseconds (network round-trip dominated).
    pub remote_hop_us: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            local_hop_us: 1.0,
            remote_hop_us: 300.0,
        }
    }
}

/// Aggregated execution metrics over one or more query executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Number of query executions aggregated.
    pub queries_executed: usize,
    /// Total embeddings (query answers) found.
    pub matches_found: usize,
    /// Total traversals performed by the search.
    pub total_traversals: usize,
    /// Traversals that crossed a partition boundary.
    pub remote_traversals: usize,
    /// Executions that completed without a single remote traversal.
    pub local_only_queries: usize,
    /// Estimated total latency under the latency model, in microseconds.
    pub estimated_latency_us: f64,
    /// Whether any aggregated execution stopped early — at its match limit,
    /// its traversal budget, a deadline or a cancellation — so the
    /// enumeration may be incomplete. Reports must never silently compare a
    /// limited run against a full one; this flag survives merging (a merge
    /// of limited and unlimited runs is limited).
    pub matches_limited: bool,
    /// Whether any aggregated execution was cut short by its wall-clock
    /// deadline (see [`crate::context::RequestContext`]). The metrics up to
    /// the cut are still reported — partial answers, honestly flagged.
    pub deadline_exceeded: bool,
    /// Whether any aggregated execution unwound because its
    /// [`crate::context::CancelToken`] fired mid-run.
    pub cancelled: bool,
    /// Provenance: the compiled plan every aggregated execution ran under,
    /// or `None` when executions under *different* plans were merged (so a
    /// blended row can never masquerade as a single plan's result).
    pub plan: Option<PlanId>,
}

impl ExecutionMetrics {
    /// The probability that a traversal crosses partitions
    /// (`remote / total`, 0.0 when no traversals happened).
    pub fn inter_partition_probability(&self) -> f64 {
        if self.total_traversals == 0 {
            0.0
        } else {
            self.remote_traversals as f64 / self.total_traversals as f64
        }
    }

    /// Mean remote traversals per query (0.0 when no queries ran).
    pub fn remote_traversals_per_query(&self) -> f64 {
        if self.queries_executed == 0 {
            0.0
        } else {
            self.remote_traversals as f64 / self.queries_executed as f64
        }
    }

    /// Fraction of executions answered entirely within single partitions.
    pub fn local_only_fraction(&self) -> f64 {
        if self.queries_executed == 0 {
            0.0
        } else {
            self.local_only_queries as f64 / self.queries_executed as f64
        }
    }

    /// Mean estimated latency per query, in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.queries_executed == 0 {
            0.0
        } else {
            self.estimated_latency_us / self.queries_executed as f64
        }
    }

    /// Merge another metrics block into this one.
    pub fn merge(&mut self, other: &ExecutionMetrics) {
        self.plan = if self.queries_executed == 0 {
            other.plan
        } else if other.queries_executed == 0 || self.plan == other.plan {
            self.plan
        } else {
            None
        };
        self.matches_limited |= other.matches_limited;
        self.deadline_exceeded |= other.deadline_exceeded;
        self.cancelled |= other.cancelled;
        self.queries_executed += other.queries_executed;
        self.matches_found += other.matches_found;
        self.total_traversals += other.total_traversals;
        self.remote_traversals += other.remote_traversals;
        self.local_only_queries += other.local_only_queries;
        self.estimated_latency_us += other.estimated_latency_us;
    }
}

/// The instrumented query executor.
#[derive(Debug, Clone)]
pub struct QueryExecutor {
    latency: LatencyModel,
    /// Cap on embeddings enumerated per execution; keeps dense pathological
    /// cases from dominating run time without changing the traversal ratio
    /// materially.
    max_matches_per_query: usize,
    /// How executions are seeded.
    mode: QueryMode,
    /// Compiled plans shared with the router and the serving workers. When
    /// absent, every execution compiles a legacy plan on the spot (the
    /// pre-redesign behaviour, bit-identical metrics).
    plans: Option<Arc<PlanCache>>,
}

impl Default for QueryExecutor {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            max_matches_per_query: 10_000,
            mode: QueryMode::FullEnumeration,
            plans: None,
        }
    }
}

impl QueryExecutor {
    /// Create an executor with a custom latency model.
    pub fn new(latency: LatencyModel) -> Self {
        Self {
            latency,
            ..Self::default()
        }
    }

    /// Builder-style cap on enumerated embeddings per execution.
    #[must_use]
    pub fn with_match_limit(mut self, limit: usize) -> Self {
        self.max_matches_per_query = limit.max(1);
        self
    }

    /// Builder-style execution mode (full enumeration or rooted).
    #[must_use]
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style plan cache: executions of workload queries reuse the
    /// compiled plans (shared with the router and serving workers) instead
    /// of re-deriving a matching order per call.
    #[must_use]
    pub fn with_plan_cache(mut self, plans: Arc<PlanCache>) -> Self {
        self.plans = Some(plans);
        self
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// The execution mode in use.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// The cap on embeddings enumerated per execution.
    pub fn match_limit(&self) -> usize {
        self.max_matches_per_query
    }

    /// The shared plan cache, if one is wired in.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }

    /// The compiled plan for a query: the cached instance when the cache
    /// holds a structurally matching one, otherwise a legacy plan compiled
    /// on the spot (see [`crate::plan::resolve_plan`]).
    pub(crate) fn plan_for(&self, query: &PatternQuery) -> Arc<QueryPlan> {
        crate::plan::resolve_plan(self.plans.as_ref(), query)
    }

    /// The execution options one seeded execution runs under.
    pub(crate) fn exec_options(&self, root_seed: u64) -> ExecOptions {
        ExecOptions {
            mode: self.mode,
            match_limit: self.max_matches_per_query,
            latency: self.latency,
            root_seed,
            ..ExecOptions::default()
        }
    }

    /// Execute a single query and return its metrics. In rooted mode the
    /// roots are drawn deterministically from `root_seed`.
    pub fn execute_seeded(
        &self,
        store: &PartitionedStore,
        query: &PatternQuery,
        root_seed: u64,
    ) -> ExecutionMetrics {
        if query.graph().is_empty() {
            return ExecutionMetrics {
                queries_executed: 1,
                local_only_queries: 1,
                ..ExecutionMetrics::default()
            };
        }
        let plan = self.plan_for(query);
        matcher::execute_plan(store, &plan, &self.exec_options(root_seed)).metrics
    }

    /// Execute a single query with the default root seed. In
    /// [`QueryMode::FullEnumeration`] (the default) the seed is irrelevant.
    pub fn execute(&self, store: &PartitionedStore, query: &PatternQuery) -> ExecutionMetrics {
        self.execute_seeded(store, query, 0)
    }

    /// Execute `samples` queries drawn from the workload according to its
    /// frequencies (deterministic for a given seed) and return the aggregate
    /// metrics. In rooted mode each sample is anchored at fresh random
    /// roots. Delegates to the unified engine path
    /// ([`crate::engine::run_sequential`]), so each distinct sampled query's
    /// plan is resolved once per call, not once per sample.
    pub fn execute_workload(
        &self,
        store: &PartitionedStore,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> ExecutionMetrics {
        let request = crate::engine::QueryRequest::workload(samples).with_seed(seed);
        crate::engine::run_sequential(self, store, workload, request).metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::{Label, LabelledGraph, VertexId};
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_partition::partition::{PartitionId, Partitioning};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    /// A store over the paper's Figure 1 graph with a given partition map
    /// from vertex id → partition index.
    fn fig1_store(assignment: &[(u64, u32)]) -> PartitionedStore {
        let g = paper_example_graph();
        let mut part = Partitioning::new(2, 8).unwrap();
        for &(v, p) in assignment {
            part.assign(VertexId::new(v), PartitionId::new(p)).unwrap();
        }
        PartitionedStore::new(g, part)
    }

    #[test]
    fn single_partition_execution_has_no_remote_traversals() {
        let store = fig1_store(&(1..=8).map(|v| (v, 0)).collect::<Vec<_>>());
        let workload = paper_example_workload();
        let executor = QueryExecutor::default();
        for (query, _) in workload.iter() {
            let metrics = executor.execute(&store, query);
            assert!(metrics.matches_found > 0, "query {} unmatched", query.id());
            assert_eq!(metrics.remote_traversals, 0);
            assert_eq!(metrics.local_only_queries, 1);
            assert_eq!(metrics.inter_partition_probability(), 0.0);
        }
    }

    #[test]
    fn split_motif_costs_remote_traversals() {
        // Split the q1 square {1, 2, 5, 6} across partitions.
        let assignment: Vec<(u64, u32)> = vec![
            (1, 0),
            (2, 1),
            (3, 0),
            (4, 0),
            (5, 1),
            (6, 0),
            (7, 1),
            (8, 1),
        ];
        let store = fig1_store(&assignment);
        let workload = paper_example_workload();
        let q1 = workload.query(QueryId::new(1)).unwrap();
        let executor = QueryExecutor::default();
        let metrics = executor.execute(&store, q1);
        assert!(metrics.matches_found > 0);
        assert!(metrics.remote_traversals > 0);
        assert!(metrics.inter_partition_probability() > 0.0);
        assert_eq!(metrics.local_only_queries, 0);
        assert!(metrics.estimated_latency_us > 0.0);
    }

    #[test]
    fn good_partitioning_beats_bad_partitioning_on_latency() {
        let aligned = fig1_store(&[
            (1, 0),
            (2, 0),
            (5, 0),
            (6, 0),
            (3, 1),
            (4, 1),
            (7, 1),
            (8, 1),
        ]);
        let scattered = fig1_store(&(1..=8).map(|v| (v, (v % 2) as u32)).collect::<Vec<_>>());
        let workload = paper_example_workload();
        let executor = QueryExecutor::default();
        let aligned_metrics = executor.execute_workload(&aligned, &workload, 60, 7);
        let scattered_metrics = executor.execute_workload(&scattered, &workload, 60, 7);
        assert!(
            aligned_metrics.inter_partition_probability()
                < scattered_metrics.inter_partition_probability()
        );
        assert!(aligned_metrics.mean_latency_us() < scattered_metrics.mean_latency_us());
    }

    #[test]
    fn workload_execution_is_deterministic_per_seed() {
        let store = fig1_store(&(1..=8).map(|v| (v, (v % 2) as u32)).collect::<Vec<_>>());
        let workload = paper_example_workload();
        let executor = QueryExecutor::default();
        let a = executor.execute_workload(&store, &workload, 40, 3);
        let b = executor.execute_workload(&store, &workload, 40, 3);
        assert_eq!(a, b);
        assert_eq!(a.queries_executed, 40);
    }

    #[test]
    fn match_limit_caps_enumeration() {
        // A graph with many a-b edges and a 2-vertex query explodes in
        // matches; the limit keeps it bounded.
        let mut g = LabelledGraph::new();
        let hub = g.add_vertex(l(0));
        for _ in 0..50 {
            let leaf = g.add_vertex(l(1));
            g.add_edge(hub, leaf).unwrap();
        }
        let mut part = Partitioning::new(1, 64).unwrap();
        for v in g.vertices_sorted() {
            part.assign(v, PartitionId::new(0)).unwrap();
        }
        let store = PartitionedStore::new(g, part);
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let metrics = QueryExecutor::default()
            .with_match_limit(5)
            .execute(&store, &query);
        assert_eq!(metrics.matches_found, 5);
    }

    #[test]
    fn rooted_mode_limits_seed_fanout_and_is_deterministic() {
        let store = fig1_store(&(1..=8).map(|v| (v, (v % 2) as u32)).collect::<Vec<_>>());
        let workload = paper_example_workload();
        let q2 = workload.query(QueryId::new(2)).unwrap();

        let full = QueryExecutor::default().execute(&store, q2);
        let rooted = QueryExecutor::default()
            .with_mode(QueryMode::Rooted { seed_count: 1 })
            .execute_seeded(&store, q2, 5);
        // A single-rooted execution explores no more than the full scan.
        assert!(rooted.total_traversals <= full.total_traversals);
        assert_eq!(QueryExecutor::default().mode(), QueryMode::FullEnumeration);
        // Deterministic per root seed, different seeds may pick other roots.
        let again = QueryExecutor::default()
            .with_mode(QueryMode::Rooted { seed_count: 1 })
            .execute_seeded(&store, q2, 5);
        assert_eq!(rooted, again);
    }

    #[test]
    fn rooted_workload_execution_can_stay_local_on_aligned_partitions() {
        // Partition aligned with the motifs: rooted executions anchored inside
        // one partition frequently finish without a remote hop, so the
        // local-only fraction is meaningfully non-zero (unlike a full scan).
        let aligned = fig1_store(&[
            (1, 0),
            (2, 0),
            (5, 0),
            (6, 0),
            (3, 1),
            (4, 1),
            (7, 1),
            (8, 1),
        ]);
        let workload = paper_example_workload();
        let rooted = QueryExecutor::default()
            .with_mode(QueryMode::Rooted { seed_count: 1 })
            .execute_workload(&aligned, &workload, 100, 3);
        let full = QueryExecutor::default().execute_workload(&aligned, &workload, 100, 3);
        assert!(rooted.local_only_fraction() >= full.local_only_fraction());
        assert!(rooted.local_only_fraction() > 0.0);
    }

    #[test]
    fn unmatched_query_reports_zero_matches() {
        let store = fig1_store(&(1..=8).map(|v| (v, 0)).collect::<Vec<_>>());
        // No vertex carries label 9.
        let query = PatternQuery::path(QueryId::new(9), &[l(9), l(0)]).unwrap();
        let metrics = QueryExecutor::default().execute(&store, &query);
        assert_eq!(metrics.matches_found, 0);
        assert_eq!(metrics.total_traversals, 0);
    }

    #[test]
    fn metrics_aggregation_helpers() {
        let mut a = ExecutionMetrics {
            queries_executed: 2,
            matches_found: 3,
            total_traversals: 10,
            remote_traversals: 5,
            local_only_queries: 1,
            estimated_latency_us: 100.0,
            ..ExecutionMetrics::default()
        };
        let b = ExecutionMetrics {
            queries_executed: 2,
            matches_found: 1,
            total_traversals: 10,
            remote_traversals: 0,
            local_only_queries: 2,
            estimated_latency_us: 20.0,
            ..ExecutionMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.queries_executed, 4);
        assert!((a.inter_partition_probability() - 0.25).abs() < 1e-12);
        assert!((a.remote_traversals_per_query() - 1.25).abs() < 1e-12);
        assert!((a.local_only_fraction() - 0.75).abs() < 1e-12);
        assert!((a.mean_latency_us() - 30.0).abs() < 1e-12);
        assert_eq!(
            ExecutionMetrics::default().inter_partition_probability(),
            0.0
        );
        assert_eq!(ExecutionMetrics::default().mean_latency_us(), 0.0);
    }

    #[test]
    fn merge_tracks_limit_flags_and_plan_provenance() {
        use crate::plan::PlanId;
        let run = |plan: Option<PlanId>, limited: bool| ExecutionMetrics {
            queries_executed: 1,
            plan,
            matches_limited: limited,
            ..ExecutionMetrics::default()
        };
        // An empty accumulator adopts the first run's provenance.
        let mut acc = ExecutionMetrics::default();
        acc.merge(&run(Some(PlanId(7)), false));
        assert_eq!(acc.plan, Some(PlanId(7)));
        assert!(!acc.matches_limited);
        // Same plan keeps the id; a limited run taints the aggregate.
        acc.merge(&run(Some(PlanId(7)), true));
        assert_eq!(acc.plan, Some(PlanId(7)));
        assert!(acc.matches_limited);
        // A different plan blanks the provenance — a blended row must not
        // claim a single plan identity.
        acc.merge(&run(Some(PlanId(8)), false));
        assert_eq!(acc.plan, None);
        // Merging in a zero-query block changes nothing.
        let before = acc;
        acc.merge(&ExecutionMetrics::default());
        assert_eq!(acc, before);
    }

    #[test]
    fn executing_a_path_query_on_a_path_graph_counts_traversals() {
        let g = path_graph(3, &[l(0), l(1), l(2)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 3).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        let store = PartitionedStore::new(g, part);
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let metrics = QueryExecutor::default().execute(&store, &query);
        assert_eq!(metrics.matches_found, 1);
        assert!(metrics.total_traversals >= 2);
        assert!(metrics.remote_traversals >= 1);
    }
}
