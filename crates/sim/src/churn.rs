//! Deletion churn: grow a motif-rich graph, then dissolve part of it.
//!
//! The insert-only scenarios ([`crate::growth`], [`crate::drift`]) never
//! exercise the destructive half of the mutation stream. This scenario does:
//! a background graph is planted with `abc` motif instances, streamed in as
//! a normal build phase, and then a **dissolve phase** tears a configured
//! fraction of the planted instances back down — edge removals first, then
//! vertex removals — while another slice of instances is *relabelled* off
//! the query alphabet (the instance survives physically but stops matching).
//!
//! The scenario is the test bed for the tombstone/compaction stack: matches
//! must drop by exactly the dissolved instances, serving must answer
//! correctly from tombstoned stores during the churn, and epoch compaction
//! must reclaim the space afterwards. The churn benchmark measures qps and
//! tail latency before, during and after the dissolve phase.

use crate::growth::apply_element;
use loom_graph::generators::motif_planted::{MotifPlantConfig, PlantedInstance};
use loom_graph::generators::motif_planted_graph;
use loom_graph::generators::regular::path_graph;
use loom_graph::ordering::StreamOrder;
use loom_graph::{GraphStream, Label, LabelledGraph, StreamElement};
use loom_motif::query::{PatternQuery, QueryId};
use loom_motif::workload::Workload;
use serde::{Deserialize, Serialize};

/// Parameters of the deletion-churn scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeletionChurnScenario {
    /// Background vertices around the planted motif instances.
    pub background_vertices: usize,
    /// Planted `abc` instances.
    pub instances: usize,
    /// Fraction of planted instances torn down in the dissolve phase.
    pub dissolve_fraction: f64,
    /// Fraction of planted instances whose head vertex is relabelled off the
    /// query alphabet instead of being removed.
    pub relabel_fraction: f64,
    /// RNG seed for the graph plant.
    pub seed: u64,
}

/// Label the relabel slice retires instance heads to: outside the `abc`
/// query alphabet, so a relabelled instance stops matching.
pub const RETIRED_LABEL: Label = Label::new(9);

impl DeletionChurnScenario {
    /// A scenario sized for CI smoke tests.
    pub fn small(seed: u64) -> Self {
        Self {
            background_vertices: 600,
            instances: 60,
            dissolve_fraction: 0.5,
            relabel_fraction: 0.1,
            seed,
        }
    }

    /// The planted `abc` motif.
    pub fn motif() -> LabelledGraph {
        path_graph(3, &[Label::new(0), Label::new(1), Label::new(2)])
    }

    /// The fixed single-query workload: the `abc` path.
    pub fn workload() -> Workload {
        Workload::uniform(vec![PatternQuery::path(
            QueryId::new(0),
            &[Label::new(0), Label::new(1), Label::new(2)],
        )
        .expect("valid abc query")])
        .expect("valid churn workload")
    }

    /// Generate the scenario: the fully grown graph, its build stream, the
    /// dissolve-phase mutation stream, and the graph state after the churn.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors for degenerate sizes.
    pub fn build(&self) -> loom_graph::error::Result<ChurnRun> {
        let (graph, instances) = motif_planted_graph(
            &MotifPlantConfig {
                background_vertices: self.background_vertices,
                background_edges: self.background_vertices * 5 / 2,
                instances_per_motif: self.instances,
                attachment_edges: 1,
                label_count: 10,
                seed: self.seed,
            },
            &[Self::motif()],
        )?;
        let build_stream = GraphStream::from_graph(&graph, &StreamOrder::Bfs);
        let (dissolve, dissolved_instances, relabelled_instances) =
            self.dissolve_elements(&instances);
        let mut final_graph = graph.clone();
        for element in &dissolve {
            apply_element(&mut final_graph, element);
        }
        Ok(ChurnRun {
            graph,
            build_stream,
            dissolve,
            final_graph,
            dissolved_instances,
            relabelled_instances,
        })
    }

    /// The dissolve-phase mutation stream: instance teardown is
    /// deterministic (first `dissolve_fraction` of the plant list, in plant
    /// order), each torn edge-first so the stream exercises both
    /// `RemoveEdge` and `RemoveVertex`; the next `relabel_fraction` of
    /// instances get their head relabelled to [`RETIRED_LABEL`].
    fn dissolve_elements(
        &self,
        instances: &[PlantedInstance],
    ) -> (Vec<StreamElement>, usize, usize) {
        let dissolve =
            ((instances.len() as f64) * self.dissolve_fraction.clamp(0.0, 1.0)).round() as usize;
        let relabel =
            ((instances.len() as f64) * self.relabel_fraction.clamp(0.0, 1.0)).round() as usize;
        let relabel = relabel.min(instances.len() - dissolve);
        let mut elements = Vec::new();
        for instance in instances.iter().take(dissolve) {
            if instance.vertices.len() >= 2 {
                elements.push(StreamElement::RemoveEdge {
                    source: instance.vertices[0],
                    target: instance.vertices[1],
                });
            }
            for &v in &instance.vertices {
                elements.push(StreamElement::RemoveVertex { id: v });
            }
        }
        for instance in instances.iter().skip(dissolve).take(relabel) {
            elements.push(StreamElement::Relabel {
                id: instance.vertices[0],
                label: RETIRED_LABEL,
            });
        }
        (elements, dissolve, relabel)
    }
}

impl Default for DeletionChurnScenario {
    fn default() -> Self {
        Self::small(42)
    }
}

/// One generated churn run: the grown graph and the two phase streams.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// The fully grown graph (end of the build phase, before any dissolve).
    pub graph: LabelledGraph,
    /// The build-phase stream (insert-only, BFS order).
    pub build_stream: GraphStream,
    /// The dissolve-phase mutation stream (removals and relabels only).
    pub dissolve: Vec<StreamElement>,
    /// The graph after the dissolve phase — the from-scratch reference any
    /// mutation-applying store must converge to.
    pub final_graph: LabelledGraph,
    /// Planted instances physically torn down by the dissolve stream.
    pub dissolved_instances: usize,
    /// Planted instances retired by relabelling their head.
    pub relabelled_instances: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{LatencyModel, QueryExecutor};
    use crate::store::PartitionedStore;
    use loom_partition::partition::Partitioning;

    fn count_matches(graph: &LabelledGraph, workload: &Workload) -> usize {
        let part = Partitioning::new(1, graph.vertex_count().max(1)).unwrap();
        let store = PartitionedStore::new(graph.clone(), part);
        let executor = QueryExecutor::new(LatencyModel::default());
        executor
            .execute_workload(&store, workload, 1, 0)
            .matches_found
    }

    #[test]
    fn dissolve_stream_tears_down_the_requested_fraction() {
        let scenario = DeletionChurnScenario {
            background_vertices: 120,
            instances: 10,
            dissolve_fraction: 0.5,
            relabel_fraction: 0.2,
            ..DeletionChurnScenario::small(3)
        };
        let run = scenario.build().unwrap();
        assert_eq!(run.dissolved_instances, 5);
        assert_eq!(run.relabelled_instances, 2);
        // Each dissolved abc instance removes its three vertices.
        assert_eq!(
            run.final_graph.vertex_count(),
            run.graph.vertex_count() - 3 * run.dissolved_instances
        );
        assert!(run.final_graph.edge_count() < run.graph.edge_count());
        // The dissolve stream is destructive only.
        assert!(run.dissolve.iter().all(|e| e.is_mutation()));
        assert!(!run.dissolve.is_empty());
    }

    #[test]
    fn dissolving_and_relabelling_instances_removes_their_matches() {
        let scenario = DeletionChurnScenario {
            background_vertices: 120,
            instances: 10,
            dissolve_fraction: 0.5,
            relabel_fraction: 0.2,
            ..DeletionChurnScenario::small(3)
        };
        let run = scenario.build().unwrap();
        let workload = DeletionChurnScenario::workload();
        let before = count_matches(&run.graph, &workload);
        let after = count_matches(&run.final_graph, &workload);
        // Every torn or retired instance takes at least one embedding with it.
        assert!(
            before >= after + run.dissolved_instances + run.relabelled_instances,
            "matches must drop with the dissolved instances: {before} -> {after}"
        );
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let scenario = DeletionChurnScenario::small(11);
        let a = scenario.build().unwrap();
        let b = scenario.build().unwrap();
        assert_eq!(a.dissolve, b.dissolve);
        assert_eq!(a.build_stream.elements(), b.build_stream.elements());
        assert_eq!(a.final_graph.vertex_count(), b.final_graph.vertex_count());
    }
}
