//! Compile-once query planning.
//!
//! The paper's premise is that the workload `Q` is known up front, so the
//! cost of deciding *how* to match each query — which label anchors the
//! search, in what order the pattern vertices bind — should be paid **once
//! per workload**, not once per execution. This module is that compilation
//! step:
//!
//! * [`GraphStatistics`] — the summary the planner costs candidates against:
//!   label cardinalities (the label index sizes) and the degree distribution
//!   from [`loom_graph::stats::degree_stats`];
//! * [`QueryPlanner`] — turns a [`PatternQuery`] into an immutable
//!   [`QueryPlan`]: it enumerates one connectivity-respecting vertex
//!   ordering per candidate root and keeps the cheapest under a selectivity
//!   cost model ([`PlanStrategy::CostRanked`]), or reproduces the historical
//!   single-heuristic ordering bit-for-bit ([`PlanStrategy::Legacy`]);
//! * [`QueryPlan`] — the compiled artefact: the matching order plus
//!   everything the matcher used to re-derive per execution (root label,
//!   per-position labels/degrees, binding edges), so executing a plan does
//!   **zero** ordering work;
//! * [`PlanCache`] — the per-workload table of compiled plans, keyed by
//!   [`QueryId`] and shared via `Arc` by the router, the sequential
//!   executor and every serving worker, with hit/miss counters that make
//!   the reuse observable.

use crate::matcher::matching_order;
use loom_graph::fxhash::FxHashMap;
use loom_graph::stats::{degree_stats, DegreeStats};
use loom_graph::{Label, LabelledGraph, VertexId};
use loom_motif::query::{PatternQuery, QueryId};
use loom_motif::workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Graph summary the planner costs candidate orderings against.
///
/// Built once per data graph (a single pass over vertices); every plan
/// compilation afterwards is pure arithmetic over these numbers.
#[derive(Debug, Clone)]
pub struct GraphStatistics {
    label_counts: FxHashMap<Label, usize>,
    vertex_count: usize,
    degree: DegreeStats,
}

impl GraphStatistics {
    /// Summarise a data graph: label histogram plus degree statistics.
    pub fn from_graph(graph: &LabelledGraph) -> Self {
        Self {
            label_counts: graph.label_histogram(),
            vertex_count: graph.vertex_count(),
            degree: degree_stats(graph),
        }
    }

    /// Number of vertices carrying `label` (the label-index cardinality).
    pub fn label_count(&self, label: Label) -> usize {
        self.label_counts.get(&label).copied().unwrap_or(0)
    }

    /// Fraction of vertices carrying `label` (0.0 for an empty graph).
    pub fn label_selectivity(&self, label: Label) -> f64 {
        if self.vertex_count == 0 {
            0.0
        } else {
            self.label_count(label) as f64 / self.vertex_count as f64
        }
    }

    /// Total vertices in the summarised graph.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Degree distribution of the summarised graph.
    pub fn degree(&self) -> &DegreeStats {
        &self.degree
    }
}

/// How the planner picks the matching order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlanStrategy {
    /// The historical single heuristic: greedy
    /// (connectivity, degree, lowest-id) order anchored at the
    /// highest-degree pattern vertex — bit-identical to the pre-planner
    /// execution path, which is what the parity suite pins.
    Legacy,
    /// Cost-ranked: one candidate ordering per possible root vertex, each
    /// priced against the [`GraphStatistics`] selectivity model; the legacy
    /// ordering is the incumbent and is only displaced by a strictly
    /// cheaper candidate, so uniform-statistics graphs plan identically to
    /// [`PlanStrategy::Legacy`].
    #[default]
    CostRanked,
}

/// Stable fingerprint of a compiled plan: query id + chosen order.
///
/// Carried by [`crate::executor::ExecutionMetrics`] as provenance, so a
/// metrics row can always be traced back to the exact plan that produced it
/// (and rows produced under different plans refuse to blend into a
/// single-plan identity when merged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct PlanId(pub u64);

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan-{:016x}", self.0)
    }
}

fn fingerprint(query: QueryId, order: &[VertexId], labels: &[Label]) -> PlanId {
    // FNV-1a over the query id, the order and its labels; stable across
    // processes. Labels are mixed in so two plans over identically-numbered
    // but differently-labelled patterns (an id collision resolved to a
    // legacy fallback) can never share a provenance id.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        hash ^= x;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    };
    mix(u64::from(query.raw()));
    for v in order {
        mix(v.raw());
    }
    for label in labels {
        mix(u64::from(label.raw()) + 1);
    }
    PlanId(hash)
}

/// Sentinel root label for plans over empty patterns: no vertex carries it,
/// so root resolution yields no candidates and an execution is a graceful
/// no-op (exactly the legacy empty-query behaviour).
const EMPTY_ROOT: Label = Label::new(u32::MAX);

/// An immutable compiled execution plan for one pattern query.
///
/// Everything the matcher previously derived per execution is materialised
/// here once: the vertex order, the root label the first binding anchors
/// on, and for every later position the pattern label, pattern degree and
/// *binding edges* (the earlier positions it must connect to, in the
/// pattern's stable adjacency order — the first one is the expansion
/// anchor). Executing a plan therefore performs no ordering work at all.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    query: QueryId,
    id: PlanId,
    order: Vec<VertexId>,
    root_label: Label,
    labels: Vec<Label>,
    degrees: Vec<usize>,
    binding_edges: Vec<Vec<usize>>,
    pattern_edges: usize,
    est_cost: f64,
    strategy: PlanStrategy,
}

impl QueryPlan {
    fn from_order(
        query: &PatternQuery,
        order: Vec<VertexId>,
        est_cost: f64,
        strategy: PlanStrategy,
    ) -> Self {
        let pattern = query.graph();
        let position_of: FxHashMap<VertexId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let labels: Vec<Label> = order
            .iter()
            .map(|&v| pattern.label(v).expect("pattern vertices are labelled"))
            .collect();
        let degrees: Vec<usize> = order.iter().map(|&v| pattern.degree(v)).collect();
        // Binding edges preserve the pattern's adjacency iteration order so
        // the anchor choice — and therefore every traversal metric — is
        // identical to deriving the matched neighbours during the search.
        let binding_edges: Vec<Vec<usize>> = order
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                pattern
                    .neighbors(v)
                    .iter()
                    .filter_map(|n| position_of.get(n).copied())
                    .filter(|&j| j < i)
                    .collect()
            })
            .collect();
        Self {
            query: query.id(),
            id: fingerprint(query.id(), &order, &labels),
            root_label: labels.first().copied().unwrap_or(EMPTY_ROOT),
            order,
            labels,
            degrees,
            binding_edges,
            pattern_edges: query.edge_count(),
            est_cost,
            strategy,
        }
    }

    /// Compile the historical ordering without graph statistics — the
    /// fallback every entry point uses when no [`PlanCache`] is wired in.
    /// Bit-identical execution to the pre-planner path; `est_cost` is NaN
    /// (not estimated).
    pub fn legacy(query: &PatternQuery) -> Self {
        let order = matching_order(query.graph());
        Self::from_order(query, order, f64::NAN, PlanStrategy::Legacy)
    }

    /// The query this plan compiles.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// The plan's stable fingerprint.
    pub fn id(&self) -> PlanId {
        self.id
    }

    /// The matching order over pattern vertices.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// The label the search roots on (label of `order[0]`).
    pub fn root_label(&self) -> Label {
        self.root_label
    }

    /// Number of pattern vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan binds no vertices (never true for a plan compiled
    /// from a validated [`PatternQuery`]).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Pattern label at an order position.
    pub fn label_at(&self, position: usize) -> Label {
        self.labels[position]
    }

    /// Pattern degree at an order position.
    pub fn degree_at(&self, position: usize) -> usize {
        self.degrees[position]
    }

    /// Earlier order positions the vertex at `position` must connect to, in
    /// the pattern's stable adjacency order (the first is the anchor).
    pub fn bindings(&self, position: usize) -> &[usize] {
        &self.binding_edges[position]
    }

    /// Whether this plan structurally fits `query`: same id, vertex count,
    /// edge count and label multiset. A cheap guard against executing a
    /// cached plan for a *different* pattern that happens to reuse a query
    /// id (a foreign workload with colliding ids) — engines fall back to a
    /// legacy plan when it fails. Runs once per distinct query per run, not
    /// per execution.
    pub fn matches_query(&self, query: &PatternQuery) -> bool {
        if self.query != query.id()
            || self.order.len() != query.vertex_count()
            || self.pattern_edges != query.edge_count()
        {
            return false;
        }
        let mut plan_labels = self.labels.clone();
        plan_labels.sort_unstable();
        plan_labels == query.label_sequence()
    }

    /// The planner's cost estimate for this order (NaN when compiled
    /// without statistics via [`QueryPlan::legacy`]).
    pub fn est_cost(&self) -> f64 {
        self.est_cost
    }

    /// The strategy that produced this plan.
    pub fn strategy(&self) -> PlanStrategy {
        self.strategy
    }
}

/// The query planner: compiles [`PatternQuery`]s into [`QueryPlan`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryPlanner {
    strategy: PlanStrategy,
}

/// Greedy connectivity order seeded at `start`: after the seed, repeatedly
/// take the unplaced vertex maximising (edges into the placed set, degree,
/// lowest id). [`matching_order`] is exactly this rule seeded at the
/// highest-degree vertex — it delegates here, so the selection logic the
/// legacy-parity guarantee depends on lives in one place.
pub(crate) fn greedy_order_from(pattern: &LabelledGraph, start: VertexId) -> Vec<VertexId> {
    let vertices = pattern.vertices_sorted();
    let mut order = Vec::with_capacity(vertices.len());
    let mut placed: loom_graph::fxhash::FxHashSet<VertexId> =
        loom_graph::fxhash::FxHashSet::default();
    order.push(start);
    placed.insert(start);
    while order.len() < vertices.len() {
        let next = vertices
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .max_by_key(|&v| {
                let connectivity = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|n| placed.contains(n))
                    .count();
                (connectivity, pattern.degree(v), std::cmp::Reverse(v.raw()))
            })
            .expect("unplaced vertex exists");
        order.push(next);
        placed.insert(next);
    }
    order
}

impl QueryPlanner {
    /// A planner using the given strategy.
    pub fn new(strategy: PlanStrategy) -> Self {
        Self { strategy }
    }

    /// The planner's strategy.
    pub fn strategy(&self) -> PlanStrategy {
        self.strategy
    }

    /// Estimated enumeration cost of matching `order` against a graph with
    /// the given statistics.
    ///
    /// A selectivity model in the FDB/worst-case-ordering tradition: the
    /// root contributes its label-index cardinality; every later position
    /// charges one adjacency scan per surviving partial match (`frontier ×
    /// mean degree` — exactly the traversals the executor meters) and then
    /// shrinks the frontier by the position's label selectivity and by an
    /// edge-probability factor per extra binding edge.
    pub fn estimate_cost(
        &self,
        pattern: &LabelledGraph,
        order: &[VertexId],
        stats: &GraphStatistics,
    ) -> f64 {
        if order.is_empty() {
            return 0.0;
        }
        let n = stats.vertex_count().max(1) as f64;
        let mean_degree = stats.degree().mean;
        let edge_probability = (mean_degree / n).min(1.0);
        let position_of: FxHashMap<VertexId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let label = |v: VertexId| pattern.label(v).expect("pattern vertices are labelled");

        let mut frontier = stats.label_count(label(order[0])) as f64;
        let mut cost = frontier;
        for (i, &v) in order.iter().enumerate().skip(1) {
            let bindings = pattern
                .neighbors(v)
                .iter()
                .filter(|n| position_of.get(n).copied().unwrap_or(usize::MAX) < i)
                .count();
            if bindings == 0 {
                // Disconnected component: costless re-seed from the label
                // index, like the matcher does.
                let reseed = stats.label_count(label(v)) as f64;
                cost += frontier * reseed;
                frontier *= reseed;
                continue;
            }
            // One adjacency scan per partial match — the metered traversals.
            cost += frontier * mean_degree;
            let mut expand = mean_degree * stats.label_selectivity(label(v));
            for _ in 1..bindings {
                expand *= edge_probability;
            }
            frontier *= expand;
        }
        cost
    }

    /// Compile one query against the graph statistics.
    ///
    /// Under [`PlanStrategy::Legacy`] the order is exactly
    /// [`matching_order`]'s (but its cost is still estimated, so legacy
    /// plans are comparable). Under [`PlanStrategy::CostRanked`] every
    /// pattern vertex is tried as the root; the legacy order is the
    /// incumbent and a candidate replaces it only when strictly cheaper, so
    /// the choice is deterministic and never worse than the legacy
    /// heuristic under the model.
    pub fn plan(&self, query: &PatternQuery, stats: &GraphStatistics) -> QueryPlan {
        let pattern = query.graph();
        if pattern.is_empty() {
            // A validated PatternQuery is never empty, but deserialized or
            // hand-built ones may be: plan them as graceful no-ops.
            return QueryPlan::from_order(query, Vec::new(), 0.0, self.strategy);
        }
        let legacy_order = matching_order(pattern);
        let legacy_cost = self.estimate_cost(pattern, &legacy_order, stats);
        if self.strategy == PlanStrategy::Legacy {
            return QueryPlan::from_order(query, legacy_order, legacy_cost, PlanStrategy::Legacy);
        }
        let legacy_root = legacy_order[0];
        let mut best_order = legacy_order;
        let mut best_cost = legacy_cost;
        for root in pattern.vertices_sorted() {
            if root == legacy_root {
                continue;
            }
            let candidate = greedy_order_from(pattern, root);
            let cost = self.estimate_cost(pattern, &candidate, stats);
            // Strict improvement only: ties keep the legacy incumbent.
            if cost < best_cost * (1.0 - 1e-9) {
                best_order = candidate;
                best_cost = cost;
            }
        }
        QueryPlan::from_order(query, best_order, best_cost, PlanStrategy::CostRanked)
    }
}

/// The per-workload table of compiled plans, shared via `Arc` by every
/// layer that executes or routes queries.
///
/// Exactly one [`QueryPlan`] is compiled per [`QueryId`]
/// ([`PlanCache::compile`] runs once, when the workload and graph meet);
/// [`PlanCache::get`] hands out `Arc` clones of that single instance and
/// counts hits and misses so the compile-once contract is observable in
/// tests and benches.
pub struct PlanCache {
    strategy: PlanStrategy,
    plans: FxHashMap<QueryId, Arc<QueryPlan>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("strategy", &self.strategy)
            .field("plans", &self.plans.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl PlanCache {
    /// Compile every workload query once against the graph statistics.
    pub fn compile(planner: &QueryPlanner, workload: &Workload, stats: &GraphStatistics) -> Self {
        let plans = workload
            .queries()
            .iter()
            .map(|q| (q.id(), Arc::new(planner.plan(q, stats))))
            .collect();
        Self {
            strategy: planner.strategy(),
            plans,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The compiled plan for a query, counting a hit (or a miss for a query
    /// id the workload never contained).
    pub fn get(&self, query: QueryId) -> Option<Arc<QueryPlan>> {
        match self.plans.get(&query) {
            Some(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The strategy the cache was compiled with.
    pub fn strategy(&self) -> PlanStrategy {
        self.strategy
    }

    /// Number of compiled plans (one per workload query).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Lookups that found a compiled plan.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups for query ids the cache never compiled.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Iterate over the compiled plans in no particular order.
    pub fn plans(&self) -> impl Iterator<Item = &Arc<QueryPlan>> + '_ {
        self.plans.values()
    }
}

/// The plan an engine executes `query` under: the cached instance when the
/// cache holds a structurally matching one ([`QueryPlan::matches_query`]),
/// otherwise a legacy plan compiled on the spot. The shared resolution
/// every engine (sequential, sharded, adaptive) performs once per distinct
/// query per run.
pub fn resolve_plan(cache: Option<&Arc<PlanCache>>, query: &PatternQuery) -> Arc<QueryPlan> {
    cache
        .and_then(|c| c.get(query.id()))
        .filter(|plan| plan.matches_query(query))
        .unwrap_or_else(|| Arc::new(QueryPlan::legacy(query)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::{path_graph, star_graph};
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    #[test]
    fn legacy_plan_reproduces_matching_order() {
        let workload = paper_example_workload();
        for (query, _) in workload.iter() {
            let plan = QueryPlan::legacy(query);
            assert_eq!(plan.order(), matching_order(query.graph()).as_slice());
            assert_eq!(plan.query(), query.id());
            assert_eq!(
                plan.root_label(),
                query.graph().label(plan.order()[0]).unwrap()
            );
            assert!(plan.est_cost().is_nan());
            // Every non-root position binds to at least one earlier one
            // (patterns are connected) and the anchor is the first binding.
            for i in 1..plan.len() {
                assert!(!plan.bindings(i).is_empty());
                assert!(plan.bindings(i).iter().all(|&j| j < i));
            }
        }
    }

    #[test]
    fn planner_legacy_strategy_orders_match_but_costs_are_estimated() {
        let graph = paper_example_graph();
        let stats = GraphStatistics::from_graph(&graph);
        let planner = QueryPlanner::new(PlanStrategy::Legacy);
        for (query, _) in paper_example_workload().iter() {
            let plan = planner.plan(query, &stats);
            assert_eq!(plan.order(), matching_order(query.graph()).as_slice());
            assert!(plan.est_cost().is_finite());
            assert_eq!(plan.strategy(), PlanStrategy::Legacy);
        }
    }

    #[test]
    fn cost_ranked_never_exceeds_legacy_cost() {
        let graph = paper_example_graph();
        let stats = GraphStatistics::from_graph(&graph);
        let ranked = QueryPlanner::new(PlanStrategy::CostRanked);
        let legacy = QueryPlanner::new(PlanStrategy::Legacy);
        for (query, _) in paper_example_workload().iter() {
            let a = ranked.plan(query, &stats);
            let b = legacy.plan(query, &stats);
            assert!(
                a.est_cost() <= b.est_cost() + 1e-9,
                "{}: ranked {} > legacy {}",
                query.id(),
                a.est_cost(),
                b.est_cost()
            );
        }
    }

    #[test]
    fn cost_ranked_roots_on_the_rarest_label() {
        // A graph with one scarce hub label and a sea of leaf labels: the
        // branch query should root on the scarce label even though the
        // legacy heuristic would as well (hub has max degree) — so build
        // the opposite: a *path* query whose low-degree endpoint is scarce.
        let mut graph = star_graph(40, &[l(0)]);
        // Attach a single l(2) vertex to one leaf: l(2) is the rarest label.
        let leaf = graph.vertices_sorted()[1];
        let rare = graph.add_vertex(l(2));
        graph.add_edge(leaf, rare).unwrap();
        // Relabel the hub's leaves to l(1).
        for v in graph.vertices_sorted() {
            if graph.degree(v) <= 2
                && graph.label(v) == Some(l(0))
                && v != graph.vertices_sorted()[0]
            {
                graph.set_label(v, l(1)).unwrap();
            }
        }
        let stats = GraphStatistics::from_graph(&graph);
        let query = PatternQuery::path(QueryId::new(7), &[l(1), l(2)]).unwrap();
        let plan = QueryPlanner::default().plan(&query, &stats);
        // 1 vertex carries l(2) vs ~39 carrying l(1): root on l(2).
        assert_eq!(plan.root_label(), l(2));
        assert!(stats.label_count(l(2)) < stats.label_count(l(1)));
    }

    #[test]
    fn plan_ids_fingerprint_query_and_order() {
        let q1 = PatternQuery::path(QueryId::new(1), &[l(0), l(1), l(2)]).unwrap();
        let q2 = PatternQuery::path(QueryId::new(2), &[l(0), l(1), l(2)]).unwrap();
        let a = QueryPlan::legacy(&q1);
        let b = QueryPlan::legacy(&q1);
        let c = QueryPlan::legacy(&q2);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id(), "query id feeds the fingerprint");
        assert!(a.id().to_string().starts_with("plan-"));
    }

    #[test]
    fn plan_cache_compiles_once_and_counts_hits() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let stats = GraphStatistics::from_graph(&graph);
        let cache = PlanCache::compile(&QueryPlanner::default(), &workload, &stats);
        assert_eq!(cache.len(), workload.len());
        assert!(!cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));

        let first = workload.queries()[0].id();
        let a = cache.get(first).expect("compiled");
        let b = cache.get(first).expect("compiled");
        // The same single instance is handed out, not a recompilation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 2);
        assert!(cache.get(QueryId::new(999)).is_none());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.plans().count(), workload.len());
    }

    #[test]
    fn resolve_plan_rejects_structurally_foreign_queries() {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let stats = GraphStatistics::from_graph(&graph);
        let cache = Arc::new(PlanCache::compile(
            &QueryPlanner::default(),
            &workload,
            &stats,
        ));
        // The genuine query gets the cached instance.
        let own = &workload.queries()[0];
        let cached = resolve_plan(Some(&cache), own);
        assert!(cached.matches_query(own));
        assert!(Arc::ptr_eq(&cached, &cache.get(own.id()).unwrap()));
        // A *different* pattern reusing the same id must not execute the
        // cached plan — it falls back to its own legacy plan.
        let foreign = PatternQuery::path(own.id(), &[l(0), l(1), l(2), l(3), l(0), l(1)]).unwrap();
        assert!(!cached.matches_query(&foreign));
        let fallback = resolve_plan(Some(&cache), &foreign);
        assert_eq!(fallback.len(), foreign.vertex_count());
        assert_eq!(fallback.order(), matching_order(foreign.graph()).as_slice());
        // Same id and same shape but different labels is still foreign.
        let relabelled = PatternQuery::new(own.id(), {
            let mut g = own.graph().clone();
            for v in g.vertices_sorted() {
                g.set_label(v, l(7)).unwrap();
            }
            g
        })
        .unwrap();
        assert!(!cached.matches_query(&relabelled));
        // No cache at all: always a legacy plan.
        let bare = resolve_plan(None, own);
        assert_eq!(bare.order(), matching_order(own.graph()).as_slice());
    }

    #[test]
    fn statistics_summarise_labels_and_degrees() {
        let graph = path_graph(4, &[l(0), l(1)]);
        let stats = GraphStatistics::from_graph(&graph);
        assert_eq!(stats.vertex_count(), 4);
        assert_eq!(stats.label_count(l(0)), 2);
        assert_eq!(stats.label_count(l(9)), 0);
        assert!((stats.label_selectivity(l(1)) - 0.5).abs() < 1e-12);
        assert_eq!(stats.degree().max, 2);
        let empty = GraphStatistics::from_graph(&LabelledGraph::new());
        assert_eq!(empty.label_selectivity(l(0)), 0.0);
    }
}
