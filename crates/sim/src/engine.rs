//! The unified query-engine API: one request/response contract for every
//! execution layer.
//!
//! A [`QueryRequest`] names what to run (one workload query or the sampled
//! workload mix) and carries the per-request options — execution mode,
//! match limit, traversal budget, whether to materialise embeddings. A
//! [`QueryResponse`] returns the instrumented [`ExecutionMetrics`] (with
//! plan provenance and the limited flag) plus a [`MatchCursor`]: a
//! pull-based iterator over the concrete match embeddings, populated when
//! the request asked for them.
//!
//! [`QueryEngine`] is the trait tying the layers together; the sequential
//! [`SequentialEngine`] here, the sharded `loom-serve` engine and adaptive
//! `loom-adapt` serving all implement it over the *same* compiled
//! [`PlanCache`], which is what makes their answers
//! comparable.

use crate::context::RequestContext;
use crate::executor::{ExecutionMetrics, QueryExecutor, QueryMode};
use crate::matcher::{execute_plan_ctx, Embedding, ExecOptions};
use crate::plan::{resolve_plan, PlanCache, QueryPlan};
use crate::store::PartitionedStore;
use loom_motif::query::QueryId;
use loom_motif::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a [`QueryRequest`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryTarget {
    /// Sample queries from the engine's workload according to its
    /// frequencies (the default).
    #[default]
    Workload,
    /// Execute one specific workload query on every sample.
    Query(QueryId),
}

/// One request against a [`QueryEngine`]: the target plus per-request
/// options. Options left `None` fall back to the engine's configuration, so
/// `QueryRequest::workload(n)` alone reproduces the legacy entry points
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// What to execute.
    pub target: QueryTarget,
    /// Number of query executions.
    pub samples: usize,
    /// Deterministic seed: workload sampling and per-execution root seeds
    /// (`seed + i + 1`, the scheme every engine shares) derive from it.
    pub seed: u64,
    /// Override of the engine's execution mode.
    pub mode: Option<QueryMode>,
    /// Override of the engine's per-execution match limit.
    pub match_limit: Option<usize>,
    /// Per-execution traversal budget; the search stops expanding once it
    /// is reached and the metrics are flagged as limited.
    pub traversal_budget: Option<usize>,
    /// Materialise concrete embeddings for the response's [`MatchCursor`]
    /// (bounded per execution by the match limit). Off by default: metrics
    /// are collected either way.
    pub collect_matches: bool,
    /// Wall-clock deadline for the whole request. Executions past it unwind
    /// cooperatively and the response metrics are flagged
    /// `deadline_exceeded`; `None` (the default) is unbounded. Engines
    /// combine this with any [`RequestContext`] deadline by taking the
    /// earlier of the two.
    pub deadline: Option<Instant>,
}

impl Default for QueryRequest {
    fn default() -> Self {
        Self {
            target: QueryTarget::Workload,
            samples: 1,
            seed: 0,
            mode: None,
            match_limit: None,
            traversal_budget: None,
            collect_matches: false,
            deadline: None,
        }
    }
}

impl QueryRequest {
    /// A request sampling `samples` executions from the engine's workload.
    pub fn workload(samples: usize) -> Self {
        Self {
            samples,
            ..Self::default()
        }
    }

    /// A request executing one specific workload query once.
    pub fn query(id: QueryId) -> Self {
        Self {
            target: QueryTarget::Query(id),
            ..Self::default()
        }
    }

    /// Builder-style sample count.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Builder-style deterministic seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style execution-mode override.
    #[must_use]
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Builder-style match-limit override (minimum 1).
    #[must_use]
    pub fn with_match_limit(mut self, limit: usize) -> Self {
        self.match_limit = Some(limit.max(1));
        self
    }

    /// Builder-style traversal budget.
    #[must_use]
    pub fn with_traversal_budget(mut self, budget: usize) -> Self {
        self.traversal_budget = Some(budget);
        self
    }

    /// Builder-style embedding collection toggle.
    #[must_use]
    pub fn collect_matches(mut self, collect: bool) -> Self {
        self.collect_matches = collect;
        self
    }

    /// Builder-style absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style relative deadline (`now + timeout`).
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }
}

/// A pull-based cursor over the concrete match embeddings one request
/// produced, in deterministic enumeration order (task order, then the
/// search's discovery order — identical across engines and worker counts).
///
/// The cursor is a plain [`Iterator`]; the *early termination* happens in
/// the search itself: a match limit or traversal budget stops enumeration
/// the moment it is hit, so a limited run's cursor is cheap to produce, not
/// merely cheap to consume.
#[derive(Debug)]
pub struct MatchCursor {
    inner: std::vec::IntoIter<Embedding>,
    collected: bool,
}

impl MatchCursor {
    pub(crate) fn new(embeddings: Vec<Embedding>, collected: bool) -> Self {
        Self {
            inner: embeddings.into_iter(),
            collected,
        }
    }

    /// Whether the request asked for embeddings at all. An empty cursor
    /// from a non-collecting request means "not materialised", not "no
    /// matches" — check the metrics' match count for that.
    pub fn is_collected(&self) -> bool {
        self.collected
    }

    /// Embeddings remaining in the cursor.
    pub fn remaining(&self) -> usize {
        self.inner.len()
    }
}

impl Iterator for MatchCursor {
    type Item = Embedding;

    fn next(&mut self) -> Option<Embedding> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for MatchCursor {}

/// What one request produced: the aggregate metrics plus the match cursor.
#[derive(Debug)]
pub struct QueryResponse {
    /// Aggregate execution metrics over the request's samples, with plan
    /// provenance and the matches-limited flag.
    pub metrics: ExecutionMetrics,
    cursor: MatchCursor,
}

impl QueryResponse {
    pub(crate) fn new(
        metrics: ExecutionMetrics,
        embeddings: Vec<Embedding>,
        collected: bool,
    ) -> Self {
        Self {
            metrics,
            cursor: MatchCursor::new(embeddings, collected),
        }
    }

    /// Assemble a response from an engine implementation's raw parts — for
    /// [`QueryEngine`] implementations outside this crate (the sharded and
    /// adaptive engines). `collected` states whether the request asked for
    /// embeddings; `embeddings` must be in deterministic enumeration order.
    pub fn from_engine(
        metrics: ExecutionMetrics,
        embeddings: Vec<Embedding>,
        collected: bool,
    ) -> Self {
        Self::new(metrics, embeddings, collected)
    }

    /// Whether any execution stopped early at a limit or budget.
    pub fn matches_limited(&self) -> bool {
        self.metrics.matches_limited
    }

    /// Consume the response into its match cursor.
    pub fn into_cursor(self) -> MatchCursor {
        self.cursor
    }

    /// Split the response into metrics and cursor.
    pub fn into_parts(self) -> (ExecutionMetrics, MatchCursor) {
        (self.metrics, self.cursor)
    }
}

/// A query execution engine bound to a graph, a partitioning and a
/// workload.
///
/// # Parity guarantee
///
/// Every implementation executes requests through the same compiled
/// [`QueryPlan`]s and the same instrumented matcher
/// ([`crate::matcher::execute_plan`]). Two engines presenting the same
/// graph, the same partition assignment and the same plan cache therefore
/// return **identical** [`ExecutionMetrics`] — and identical cursor
/// contents in identical order — for the same [`QueryRequest`], regardless
/// of how the engine parallelises the work (sequential loop, sharded
/// worker pool, or epoch-pinned adaptive serving). The cross-engine parity
/// suite in `tests/query_plan.rs` pins this contract.
pub trait QueryEngine {
    /// Execute one request under an explicit [`RequestContext`]: the
    /// context's deadline is tightened by the request's own (the earlier of
    /// the two wins) and its cancellation token can unwind every execution
    /// of the request mid-run. An unbounded context reproduces [`Self::run`]
    /// exactly.
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse;

    /// Execute one request and return its metrics and match cursor. The
    /// request's own deadline (if any) still applies; cancellation requires
    /// [`Self::run_ctx`].
    fn run(&self, request: QueryRequest) -> QueryResponse {
        self.run_ctx(request, &RequestContext::unbounded())
    }

    /// The compiled plan cache the engine executes from, when it has one.
    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        None
    }
}

/// Run a request through the sequential executor — the shared
/// Expand a request into its execution schedule: one `(workload query
/// index, root seed)` per sample, in admission order.
///
/// Every engine shares this single expansion — workload targets consume the
/// rng exactly as `QueryExecutor::execute_workload` (one draw per sample,
/// root seed `seed + i + 1`), single-query targets repeat that query with
/// the same seed scheme, and an unknown query id expands to nothing — so
/// cross-engine parity can never drift on sampling.
pub fn request_schedule(workload: &Workload, request: &QueryRequest) -> Vec<(usize, u64)> {
    match request.target {
        QueryTarget::Workload => {
            let mut rng = StdRng::seed_from_u64(request.seed);
            (0..request.samples)
                .map(|i| {
                    (
                        workload.sample_index(&mut rng),
                        request.seed.wrapping_add(i as u64 + 1),
                    )
                })
                .collect()
        }
        QueryTarget::Query(id) => workload
            .queries()
            .iter()
            .position(|q| q.id() == id)
            .map(|index| {
                (0..request.samples)
                    .map(|i| (index, request.seed.wrapping_add(i as u64 + 1)))
                    .collect()
            })
            // An unknown query id executes nothing: zero metrics, empty
            // cursor — mirrored by every engine.
            .unwrap_or_default(),
    }
}

/// Resolve each scheduled query's plan exactly once: the one-resolution-
/// per-distinct-query contract every engine shares (so cache hit counters
/// behave identically whichever engine runs a request). Unscheduled
/// workload slots stay `None`.
pub fn resolve_schedule_plans(
    cache: Option<&Arc<PlanCache>>,
    workload: &Workload,
    schedule: &[(usize, u64)],
) -> Vec<Option<Arc<QueryPlan>>> {
    let mut plans: Vec<Option<Arc<QueryPlan>>> = vec![None; workload.len()];
    for &(index, _) in schedule {
        if plans[index].is_none() {
            plans[index] = Some(resolve_plan(cache, &workload.queries()[index]));
        }
    }
    plans
}

/// Run a request through the sequential executor — the shared
/// implementation behind [`SequentialEngine`], the `loom` façade's
/// sequential serving handle and `QueryExecutor::execute_workload`.
pub fn run_sequential(
    executor: &QueryExecutor,
    store: &PartitionedStore,
    workload: &Workload,
    request: QueryRequest,
) -> QueryResponse {
    run_sequential_ctx(
        executor,
        store,
        workload,
        request,
        &RequestContext::unbounded(),
    )
}

/// [`run_sequential`] under an explicit [`RequestContext`]: every scheduled
/// execution observes the context's deadline (tightened by the request's
/// own) and cancellation token; executions scheduled after the cut are
/// pre-flighted away at zero traversal cost, so they still count in
/// `queries_executed` but do no work.
pub fn run_sequential_ctx(
    executor: &QueryExecutor,
    store: &PartitionedStore,
    workload: &Workload,
    request: QueryRequest,
    ctx: &RequestContext,
) -> QueryResponse {
    // Per-request overrides are applied raw (no clamping), so the
    // sequential and sharded engines resolve the same request to the same
    // effective options — the parity guarantee depends on it.
    let mode = request.mode.unwrap_or(executor.mode());
    let match_limit = request.match_limit.unwrap_or(executor.match_limit());
    let ctx = ctx.tightened_by(request.deadline);
    let schedule = request_schedule(workload, &request);
    let plans = resolve_schedule_plans(executor.plan_cache(), workload, &schedule);
    let mut metrics = ExecutionMetrics::default();
    let mut embeddings = Vec::new();
    for (index, root_seed) in schedule {
        let plan = plans[index].as_ref().expect("scheduled plan resolved");
        let opts = ExecOptions {
            mode,
            match_limit,
            traversal_budget: request.traversal_budget,
            latency: executor.latency_model(),
            root_seed,
            collect: request.collect_matches,
        };
        let run = execute_plan_ctx(store, plan, &opts, &ctx);
        metrics.merge(&run.metrics);
        embeddings.extend(run.embeddings);
    }
    QueryResponse::new(metrics, embeddings, request.collect_matches)
}

/// The sequential [`QueryEngine`]: a [`QueryExecutor`] bound to its store
/// and workload, executing requests one after another on the calling
/// thread. The reference implementation the concurrent engines are
/// parity-tested against.
#[derive(Debug, Clone)]
pub struct SequentialEngine {
    store: PartitionedStore,
    workload: Workload,
    executor: QueryExecutor,
}

impl SequentialEngine {
    /// Bind an executor to a store and workload.
    pub fn new(store: PartitionedStore, workload: Workload, executor: QueryExecutor) -> Self {
        Self {
            store,
            workload,
            executor,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &PartitionedStore {
        &self.store
    }

    /// The workload requests sample from.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The configured executor.
    pub fn executor(&self) -> &QueryExecutor {
        &self.executor
    }
}

impl QueryEngine for SequentialEngine {
    fn run_ctx(&self, request: QueryRequest, ctx: &RequestContext) -> QueryResponse {
        run_sequential_ctx(&self.executor, &self.store, &self.workload, request, ctx)
    }

    fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.executor.plan_cache()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{GraphStatistics, QueryPlanner};
    use loom_graph::VertexId;
    use loom_motif::fixtures::{paper_example_graph, paper_example_workload};
    use loom_partition::partition::{PartitionId, Partitioning};

    fn engine(cache: bool) -> SequentialEngine {
        let graph = paper_example_graph();
        let workload = paper_example_workload();
        let mut part = Partitioning::new(2, 8).unwrap();
        for v in 1..=8u64 {
            part.assign(VertexId::new(v), PartitionId::new((v % 2) as u32))
                .unwrap();
        }
        let mut executor = QueryExecutor::default();
        if cache {
            let stats = GraphStatistics::from_graph(&graph);
            executor = executor.with_plan_cache(Arc::new(PlanCache::compile(
                &QueryPlanner::default(),
                &workload,
                &stats,
            )));
        }
        SequentialEngine::new(PartitionedStore::new(graph, part), workload, executor)
    }

    #[test]
    fn workload_requests_match_the_legacy_executor_exactly() {
        let engine = engine(false);
        let response = engine.run(QueryRequest::workload(40).with_seed(3));
        let legacy = engine
            .executor()
            .execute_workload(engine.store(), engine.workload(), 40, 3);
        assert_eq!(response.metrics, legacy);
        assert!(!response.into_cursor().is_collected());
    }

    #[test]
    fn single_query_requests_collect_embeddings() {
        let engine = engine(true);
        let id = engine.workload().queries()[0].id();
        let response = engine.run(QueryRequest::query(id).collect_matches(true));
        assert_eq!(response.metrics.queries_executed, 1);
        let found = response.metrics.matches_found;
        assert!(found > 0);
        let cursor = response.into_cursor();
        assert!(cursor.is_collected());
        assert_eq!(cursor.remaining(), found);
        assert_eq!(cursor.len(), found);
        assert_eq!(cursor.count(), found);
    }

    #[test]
    fn unknown_query_ids_execute_nothing() {
        let engine = engine(true);
        let response = engine.run(QueryRequest::query(QueryId::new(404)).collect_matches(true));
        assert_eq!(response.metrics, ExecutionMetrics::default());
        let cursor = response.into_cursor();
        assert!(cursor.is_collected());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn request_overrides_mode_and_limit() {
        let engine = engine(true);
        let id = engine.workload().queries()[0].id();
        let full = engine.run(QueryRequest::query(id));
        let limited = engine.run(QueryRequest::query(id).with_match_limit(1));
        assert_eq!(limited.metrics.matches_found, 1);
        assert!(limited.matches_limited());
        assert!(limited.metrics.total_traversals < full.metrics.total_traversals);
        let rooted = engine.run(
            QueryRequest::query(id)
                .with_mode(QueryMode::Rooted { seed_count: 1 })
                .with_seed(5),
        );
        assert!(rooted.metrics.total_traversals <= full.metrics.total_traversals);
        // Budgets flag the run.
        let budgeted = engine.run(QueryRequest::query(id).with_traversal_budget(1));
        assert!(budgeted.matches_limited());
    }

    #[test]
    fn plan_cache_is_exposed_and_reused() {
        let engine = engine(true);
        let cache = engine.plan_cache().expect("cache wired in").clone();
        let hits_before = cache.hits();
        engine.run(QueryRequest::workload(10).with_seed(1));
        // One resolution per *distinct* sampled query per run, not per
        // sample — the amortized contract every engine shares.
        let first_run = cache.hits() - hits_before;
        assert!(first_run >= 1 && first_run <= engine.workload().len());
        engine.run(QueryRequest::workload(10).with_seed(1));
        assert_eq!(cache.hits(), hits_before + 2 * first_run, "deterministic");
        assert!(engine.executor().plan_cache().is_some());
    }
}
