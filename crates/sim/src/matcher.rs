//! The reusable, instrumented backtracking pattern matcher.
//!
//! Both the sequential [`crate::executor::QueryExecutor`] and the concurrent
//! `loom-serve` worker shards execute rooted pattern queries with exactly the
//! same search; this module is that search, extracted behind the
//! [`PatternStore`] abstraction so each engine can plug in its own storage
//! (hash-map adjacency for the simulator, partition-major CSR slices for the
//! serving engine) without copy-pasting the matching logic.
//!
//! The search is a VF2-style backtracking enumeration (the same semantics as
//! `loom_motif::isomorphism`) instrumented to record every *traversal* it
//! performs: each expansion from a matched vertex to a candidate neighbour
//! either stays on the local partition or hops to a remote one. The remote
//! fraction is exactly the "probability of inter-partition traversals" the
//! paper optimises; the [`LatencyModel`] converts hop counts into an
//! estimated query latency.

use crate::executor::{ExecutionMetrics, LatencyModel, QueryMode};
use loom_graph::fxhash::{FxHashMap, FxHashSet};
use loom_graph::{Label, VertexId};
use loom_motif::query::PatternQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Storage abstraction the matcher runs against.
///
/// Implementations must agree on semantics: `neighbors` returns the adjacency
/// list in a stable order, `vertices_with_label` returns the label index
/// sorted by vertex id, and `is_remote_traversal` treats vertices without a
/// partition assignment as remote to everyone. Two stores presenting the same
/// graph and partitioning produce **identical** [`ExecutionMetrics`] for the
/// same `(query, mode, seed)` — the property the serving-engine parity tests
/// assert.
pub trait PatternStore {
    /// The label of a vertex, if present.
    fn label(&self, v: VertexId) -> Option<Label>;

    /// Adjacency list of a vertex (empty if absent), in the store's stable
    /// iteration order.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Whether the undirected edge `a – b` exists.
    fn contains_edge(&self, a: VertexId, b: VertexId) -> bool;

    /// Whether following `from → to` crosses a partition boundary.
    fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool;

    /// All vertices carrying `label`, sorted by id.
    fn vertices_with_label(&self, label: Label) -> &[VertexId];
}

/// Order pattern vertices so each one (after the first) touches an earlier
/// one — identical to the ordering used by `loom_motif::isomorphism`. The
/// first entry determines the root label a rooted query is anchored on, which
/// is why the serving-engine router calls this too.
pub fn matching_order(pattern: &loom_graph::LabelledGraph) -> Vec<VertexId> {
    let mut order = Vec::with_capacity(pattern.vertex_count());
    let mut placed: FxHashSet<VertexId> = FxHashSet::default();
    let vertices = pattern.vertices_sorted();
    while placed.len() < pattern.vertex_count() {
        let next = vertices
            .iter()
            .copied()
            .filter(|v| !placed.contains(v))
            .max_by_key(|&v| {
                let connectivity = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|n| placed.contains(n))
                    .count();
                (connectivity, pattern.degree(v), std::cmp::Reverse(v.raw()))
            })
            .expect("unplaced vertex exists");
        placed.insert(next);
        order.push(next);
    }
    order
}

/// The root vertices one query execution is anchored on, in execution order.
///
/// In [`QueryMode::FullEnumeration`] this is every vertex carrying the root
/// label; in [`QueryMode::Rooted`] it is `seed_count` vertices drawn
/// deterministically from `root_seed` (sorted, de-duplicated) — the seeds an
/// index lookup would hand a graph database. The serving-engine router uses
/// the same function to decide a query's home shard.
pub fn root_candidates<S: PatternStore + ?Sized>(
    store: &S,
    query: &PatternQuery,
    mode: QueryMode,
    root_seed: u64,
) -> Vec<VertexId> {
    let pattern = query.graph();
    if pattern.is_empty() {
        return Vec::new();
    }
    let order = matching_order(pattern);
    roots_for_order(store, pattern, &order, mode, root_seed)
}

/// [`root_candidates`] with the matching order already computed — the path
/// [`execute_query`] takes so the order is derived once per execution, not
/// twice.
fn roots_for_order<S: PatternStore + ?Sized>(
    store: &S,
    pattern: &loom_graph::LabelledGraph,
    order: &[VertexId],
    mode: QueryMode,
    root_seed: u64,
) -> Vec<VertexId> {
    let root_label = pattern
        .label(order[0])
        .expect("pattern vertices are labelled");
    let candidates = store.vertices_with_label(root_label);
    match mode {
        QueryMode::FullEnumeration => candidates.to_vec(),
        QueryMode::Rooted { seed_count } => {
            if candidates.is_empty() {
                return Vec::new();
            }
            let mut rng = StdRng::seed_from_u64(root_seed);
            let mut chosen = Vec::with_capacity(seed_count.max(1));
            for _ in 0..seed_count.max(1) {
                chosen.push(candidates[rng.random_range(0..candidates.len())]);
            }
            chosen.sort_unstable();
            chosen.dedup();
            chosen
        }
    }
}

/// Execute one pattern query against a store and return its metrics.
///
/// This is the single code path behind both the sequential executor and the
/// concurrent serving engine: root selection per [`root_candidates`], then an
/// instrumented backtracking search from each root, with `match_limit`
/// capping the total embeddings enumerated across roots.
pub fn execute_query<S: PatternStore + ?Sized>(
    store: &S,
    query: &PatternQuery,
    mode: QueryMode,
    match_limit: usize,
    latency: LatencyModel,
    root_seed: u64,
) -> ExecutionMetrics {
    let pattern = query.graph();
    let mut metrics = ExecutionMetrics {
        queries_executed: 1,
        ..ExecutionMetrics::default()
    };
    if pattern.is_empty() {
        metrics.local_only_queries = 1;
        return metrics;
    }
    let order = matching_order(pattern);
    let candidates = roots_for_order(store, pattern, &order, mode, root_seed);

    let mut search = Search {
        store,
        pattern,
        order: &order,
        mapping: FxHashMap::default(),
        used: FxHashSet::default(),
        metrics: &mut metrics,
        match_limit,
    };
    for root in candidates {
        // Routing the query to the partition hosting the seed vertex is
        // free; expansion from there is what costs traversals.
        search.mapping.insert(order[0], root);
        search.used.insert(root);
        search.extend(1);
        search.mapping.remove(&order[0]);
        search.used.remove(&root);
        if search.metrics.matches_found >= search.match_limit {
            break;
        }
    }

    if metrics.remote_traversals == 0 {
        metrics.local_only_queries = 1;
    }
    metrics.estimated_latency_us = metrics.remote_traversals as f64 * latency.remote_hop_us
        + (metrics.total_traversals - metrics.remote_traversals) as f64 * latency.local_hop_us;
    metrics
}

struct Search<'a, S: PatternStore + ?Sized> {
    store: &'a S,
    pattern: &'a loom_graph::LabelledGraph,
    order: &'a [VertexId],
    mapping: FxHashMap<VertexId, VertexId>,
    used: FxHashSet<VertexId>,
    metrics: &'a mut ExecutionMetrics,
    match_limit: usize,
}

impl<S: PatternStore + ?Sized> Search<'_, S> {
    fn extend(&mut self, depth: usize) {
        if self.metrics.matches_found >= self.match_limit {
            return;
        }
        if depth == self.order.len() {
            self.metrics.matches_found += 1;
            return;
        }
        let pv = self.order[depth];
        let p_label = self.pattern.label(pv).expect("pattern vertex labelled");
        let p_degree = self.pattern.degree(pv);
        let matched_neighbours: Vec<VertexId> = self
            .pattern
            .neighbors(pv)
            .iter()
            .copied()
            .filter(|n| self.mapping.contains_key(n))
            .collect();
        // Expansion anchor: the first already-matched pattern neighbour. The
        // distributed engine fetches the anchor's adjacency list and follows
        // each candidate edge — that is the traversal we meter.
        let store = self.store;
        let Some(&anchor) = matched_neighbours.first() else {
            // Disconnected pattern component: re-seed from the label index
            // (costless routing, like the root seed).
            let candidates = store.vertices_with_label(p_label);
            for &tv in candidates {
                self.try_candidate(pv, tv, p_label, p_degree, &matched_neighbours, None, depth);
                if self.metrics.matches_found >= self.match_limit {
                    return;
                }
            }
            return;
        };
        let anchor_image = self.mapping[&anchor];
        let candidates = store.neighbors(anchor_image);
        for &tv in candidates {
            self.try_candidate(
                pv,
                tv,
                p_label,
                p_degree,
                &matched_neighbours,
                Some(anchor_image),
                depth,
            );
            if self.metrics.matches_found >= self.match_limit {
                return;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_candidate(
        &mut self,
        pv: VertexId,
        tv: VertexId,
        p_label: Label,
        p_degree: usize,
        matched_neighbours: &[VertexId],
        anchor_image: Option<VertexId>,
        depth: usize,
    ) {
        // Following the edge anchor → candidate is one traversal, local or
        // remote depending on where the two vertices live.
        if let Some(anchor) = anchor_image {
            self.metrics.total_traversals += 1;
            if self.store.is_remote_traversal(anchor, tv) {
                self.metrics.remote_traversals += 1;
            }
        }
        if self.used.contains(&tv) {
            return;
        }
        if self.store.label(tv) != Some(p_label) {
            return;
        }
        if self.store.neighbors(tv).len() < p_degree {
            return;
        }
        let consistent = matched_neighbours.iter().all(|n| {
            let image = self.mapping[n];
            self.store.contains_edge(tv, image)
        });
        if !consistent {
            return;
        }
        self.mapping.insert(pv, tv);
        self.used.insert(tv);
        self.extend(depth + 1);
        self.mapping.remove(&pv);
        self.used.remove(&tv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PartitionedStore;
    use loom_graph::generators::regular::path_graph;
    use loom_motif::query::QueryId;
    use loom_partition::partition::{PartitionId, Partitioning};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn path_store() -> PartitionedStore {
        let g = path_graph(3, &[l(0), l(1), l(2)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 3).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        PartitionedStore::new(g, part)
    }

    #[test]
    fn execute_query_counts_matches_and_traversals() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let metrics = execute_query(
            &store,
            &query,
            QueryMode::FullEnumeration,
            10_000,
            LatencyModel::default(),
            0,
        );
        assert_eq!(metrics.matches_found, 1);
        assert!(metrics.total_traversals >= 2);
        assert!(metrics.remote_traversals >= 1);
    }

    #[test]
    fn root_candidates_full_mode_covers_the_label_index() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(1), l(2)]).unwrap();
        let roots = root_candidates(&store, &query, QueryMode::FullEnumeration, 0);
        // The matching order anchors on the higher-degree l(1) vertex.
        assert_eq!(roots.len(), 1);
        assert_eq!(store.label(roots[0]), Some(l(1)));
    }

    #[test]
    fn root_candidates_rooted_mode_is_deterministic_per_seed() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let mode = QueryMode::Rooted { seed_count: 2 };
        let a = root_candidates(&store, &query, mode, 9);
        let b = root_candidates(&store, &query, mode, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn missing_root_label_yields_no_candidates() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(9), l(1)]).unwrap();
        assert!(root_candidates(&store, &query, QueryMode::FullEnumeration, 0).is_empty());
        assert!(root_candidates(&store, &query, QueryMode::Rooted { seed_count: 3 }, 0).is_empty());
    }
}
