//! The reusable, instrumented backtracking pattern matcher.
//!
//! Both the sequential [`crate::executor::QueryExecutor`] and the concurrent
//! `loom-serve` worker shards execute rooted pattern queries with exactly the
//! same search; this module is that search, extracted behind the
//! [`PatternStore`] abstraction so each engine can plug in its own storage
//! (hash-map adjacency for the simulator, partition-major CSR slices for the
//! serving engine) without copy-pasting the matching logic.
//!
//! Since the query-plan redesign the search is **plan-driven**:
//! [`execute_plan`] consumes a pre-compiled
//! [`QueryPlan`] — matching order, root label,
//! per-position labels/degrees and binding edges all materialised at
//! compile time — so an execution performs zero ordering work. The legacy
//! [`execute_query`] entry point survives as a thin wrapper that compiles a
//! [`QueryPlan::legacy`] on the spot and produces bit-identical metrics to
//! the pre-plan code path.
//!
//! The search itself is a VF2-style backtracking enumeration (the same
//! semantics as `loom_motif::isomorphism`) instrumented to record every
//! *traversal* it performs: each expansion from a matched vertex to a
//! candidate neighbour either stays on the local partition or hops to a
//! remote one. The remote fraction is exactly the "probability of
//! inter-partition traversals" the paper optimises; the [`LatencyModel`]
//! converts hop counts into an estimated query latency.

use crate::context::{CancelToken, RequestContext};
use crate::executor::{ExecutionMetrics, LatencyModel, QueryMode};
use crate::plan::QueryPlan;
use loom_graph::fxhash::FxHashSet;
use loom_graph::{Label, VertexId};
use loom_motif::query::PatternQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How many traversals the search performs between wall-clock deadline
/// checks. `Instant::now()` is far cheaper than a remote hop but not free;
/// polling every traversal would tax the no-deadline hot path for nothing,
/// while a stride of 64 bounds the overshoot past a deadline to a few
/// microseconds of extra expansion.
const DEADLINE_CHECK_STRIDE: u32 = 64;

/// Storage abstraction the matcher runs against.
///
/// Implementations must agree on semantics: `neighbors` returns the adjacency
/// list in a stable order, `vertices_with_label` returns the label index
/// sorted by vertex id, and `is_remote_traversal` treats vertices without a
/// partition assignment as remote to everyone. Two stores presenting the same
/// graph and partitioning produce **identical** [`ExecutionMetrics`] for the
/// same `(plan, mode, seed)` — the property the serving-engine parity tests
/// assert.
pub trait PatternStore {
    /// The label of a vertex, if present.
    fn label(&self, v: VertexId) -> Option<Label>;

    /// Adjacency list of a vertex (empty if absent), in the store's stable
    /// iteration order.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Whether the undirected edge `a – b` exists.
    fn contains_edge(&self, a: VertexId, b: VertexId) -> bool;

    /// Whether following `from → to` crosses a partition boundary.
    fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool;

    /// All vertices carrying `label`, sorted by id.
    fn vertices_with_label(&self, label: Label) -> &[VertexId];
}

/// Order pattern vertices so each one (after the first) touches an earlier
/// one — identical to the ordering used by `loom_motif::isomorphism`. This is
/// the *legacy* single-heuristic ordering; the
/// [`QueryPlanner`](crate::plan::QueryPlanner) cost-ranks one such ordering
/// per candidate root and compiles the winner into a reusable plan.
pub fn matching_order(pattern: &loom_graph::LabelledGraph) -> Vec<VertexId> {
    // Seed at the (degree, lowest-id)-maximal vertex — with nothing placed
    // yet, that is exactly what the greedy rule picks first — then let the
    // shared greedy selection in `plan` finish the order.
    let Some(start) = pattern
        .vertices_sorted()
        .into_iter()
        .max_by_key(|&v| (pattern.degree(v), std::cmp::Reverse(v.raw())))
    else {
        return Vec::new();
    };
    crate::plan::greedy_order_from(pattern, start)
}

/// The root vertices one query execution is anchored on, in execution order
/// — the legacy entry point, deriving the matching order on the spot. The
/// router and engines now resolve roots from a compiled plan via
/// [`plan_roots`]; this remains for callers without one.
pub fn root_candidates<S: PatternStore + ?Sized>(
    store: &S,
    query: &PatternQuery,
    mode: QueryMode,
    root_seed: u64,
) -> Vec<VertexId> {
    if query.graph().is_empty() {
        return Vec::new();
    }
    plan_roots(store, &QueryPlan::legacy(query), mode, root_seed)
}

/// The root vertices an execution of `plan` is anchored on, resolved from
/// the plan's pre-compiled root label — no ordering derivation.
///
/// In [`QueryMode::FullEnumeration`] this is every vertex carrying the root
/// label; in [`QueryMode::Rooted`] it is `seed_count` vertices drawn
/// deterministically from `root_seed` (sorted, de-duplicated) — the seeds an
/// index lookup would hand a graph database. The serving-engine router uses
/// the same function to decide a query's home shard.
pub fn plan_roots<S: PatternStore + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    mode: QueryMode,
    root_seed: u64,
) -> Vec<VertexId> {
    let candidates = store.vertices_with_label(plan.root_label());
    match mode {
        QueryMode::FullEnumeration => candidates.to_vec(),
        QueryMode::Rooted { seed_count } => {
            if candidates.is_empty() {
                return Vec::new();
            }
            let mut rng = StdRng::seed_from_u64(root_seed);
            let mut chosen = Vec::with_capacity(seed_count.max(1));
            for _ in 0..seed_count.max(1) {
                chosen.push(candidates[rng.random_range(0..candidates.len())]);
            }
            chosen.sort_unstable();
            chosen.dedup();
            chosen
        }
    }
}

/// One concrete match: the assignment of pattern vertices to data vertices,
/// sorted by pattern vertex id. Serde-serializable so a match can cross a
/// shard-transport boundary inside a result message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Embedding {
    pairs: Vec<(VertexId, VertexId)>,
}

impl Embedding {
    fn new(mut pairs: Vec<(VertexId, VertexId)>) -> Self {
        pairs.sort_unstable_by_key(|&(pattern, _)| pattern);
        Self { pairs }
    }

    /// The data vertex a pattern vertex maps to.
    pub fn image_of(&self, pattern_vertex: VertexId) -> Option<VertexId> {
        self.pairs
            .binary_search_by_key(&pattern_vertex, |&(p, _)| p)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Iterate over `(pattern vertex, data vertex)` pairs, sorted by
    /// pattern vertex id.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Number of bound pattern vertices.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the embedding binds no vertices.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Per-execution options for [`execute_plan`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Root selection mode.
    pub mode: QueryMode,
    /// Cap on embeddings enumerated (the search stops early at the cap).
    pub match_limit: usize,
    /// Optional cap on total traversals; the search stops expanding once it
    /// is reached (and the metrics flag the run as limited).
    pub traversal_budget: Option<usize>,
    /// Latency cost model charged per traversal.
    pub latency: LatencyModel,
    /// Deterministic seed for rooted-mode root selection.
    pub root_seed: u64,
    /// Whether to materialise the concrete embeddings (bounded by
    /// `match_limit`) for a `MatchCursor`; metrics are collected either way.
    pub collect: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            mode: QueryMode::FullEnumeration,
            match_limit: 10_000,
            traversal_budget: None,
            latency: LatencyModel::default(),
            root_seed: 0,
            collect: false,
        }
    }
}

/// What one plan execution produced: the instrumented metrics plus the
/// collected embeddings (empty unless [`ExecOptions::collect`] was set).
#[derive(Debug, Clone)]
pub struct PlanExecution {
    /// Instrumented execution metrics, with plan provenance attached.
    pub metrics: ExecutionMetrics,
    /// Concrete match embeddings, in enumeration order.
    pub embeddings: Vec<Embedding>,
}

/// Execute one pattern query against a store and return its metrics — the
/// legacy entry point, compiling a [`QueryPlan::legacy`] on the spot.
/// Bit-identical metrics to the pre-plan code path; engines that hold a
/// [`PlanCache`](crate::plan::PlanCache) call [`execute_plan`] directly and
/// skip the per-call compilation.
pub fn execute_query<S: PatternStore + ?Sized>(
    store: &S,
    query: &PatternQuery,
    mode: QueryMode,
    match_limit: usize,
    latency: LatencyModel,
    root_seed: u64,
) -> ExecutionMetrics {
    if query.graph().is_empty() {
        return ExecutionMetrics {
            queries_executed: 1,
            local_only_queries: 1,
            ..ExecutionMetrics::default()
        };
    }
    let plan = QueryPlan::legacy(query);
    let opts = ExecOptions {
        mode,
        match_limit,
        latency,
        root_seed,
        ..ExecOptions::default()
    };
    execute_plan(store, &plan, &opts).metrics
}

/// Execute a pre-compiled plan against a store.
///
/// This is the single code path behind the sequential executor, the
/// concurrent serving engine and adaptive serving: root selection per
/// [`plan_roots`], then an instrumented backtracking search from each root
/// driven entirely by the plan's pre-compiled binding edges, with
/// `match_limit` (and the optional traversal budget) stopping the search
/// early. Identical `(store, plan, options)` always produce identical
/// results, whichever engine executes them.
pub fn execute_plan<S: PatternStore + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    opts: &ExecOptions,
) -> PlanExecution {
    run_plan(store, plan, opts, None, None)
}

/// Execute a pre-compiled plan under a [`RequestContext`]: identical to
/// [`execute_plan`] for an unbounded context, but an expired deadline or a
/// fired cancellation token cooperatively unwinds the backtracking search at
/// its next traversal check and flags the partial metrics
/// (`deadline_exceeded` / `cancelled`). A context that is already expired or
/// cancelled on entry performs **zero** traversals.
pub fn execute_plan_ctx<S: PatternStore + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    opts: &ExecOptions,
    ctx: &RequestContext,
) -> PlanExecution {
    run_plan(store, plan, opts, Some(ctx), None)
}

/// Execute a pre-compiled plan anchored at an explicit root set instead of
/// resolving [`plan_roots`] — the building block for halo-crossing sub-query
/// handoff, where a home shard executes only the roots it owns and ships the
/// rest to their owning shards. Roots are executed in slice order; callers
/// wanting parity with [`execute_plan_ctx`] pass a sorted, de-duplicated
/// subset of that execution's root candidates.
pub fn execute_plan_with_roots<S: PatternStore + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    opts: &ExecOptions,
    ctx: &RequestContext,
    roots: &[VertexId],
) -> PlanExecution {
    run_plan(store, plan, opts, Some(ctx), Some(roots))
}

fn run_plan<S: PatternStore + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    opts: &ExecOptions,
    ctx: Option<&RequestContext>,
    roots: Option<&[VertexId]>,
) -> PlanExecution {
    let mut metrics = ExecutionMetrics {
        queries_executed: 1,
        plan: Some(plan.id()),
        ..ExecutionMetrics::default()
    };
    let mut embeddings = Vec::new();
    if plan.is_empty() {
        metrics.local_only_queries = 1;
        return PlanExecution {
            metrics,
            embeddings,
        };
    }
    // No clamping: a zero limit is a no-op probe, exactly as the pre-plan
    // search behaved (engine builders clamp their own defaults to >= 1).
    let match_limit = opts.match_limit;
    let traversal_budget = opts.traversal_budget.unwrap_or(usize::MAX);

    // Pre-flight: a context that is already cancelled or past its deadline
    // does no work at all — zero traversals, honestly flagged.
    if let Some(ctx) = ctx {
        if ctx.is_cancelled() {
            metrics.cancelled = true;
        } else if ctx.is_expired() {
            metrics.deadline_exceeded = true;
        }
    }

    if !(metrics.cancelled || metrics.deadline_exceeded) {
        let resolved;
        let candidates: &[VertexId] = match roots {
            Some(explicit) => explicit,
            None => {
                resolved = plan_roots(store, plan, opts.mode, opts.root_seed);
                &resolved
            }
        };
        let mut search = PlanSearch {
            store,
            plan,
            mapping: vec![VertexId::new(u64::MAX); plan.len()],
            used: FxHashSet::default(),
            metrics: &mut metrics,
            match_limit,
            traversal_budget,
            deadline: ctx.and_then(|c| c.deadline),
            cancel: ctx.map(|c| &c.cancel),
            deadline_ticks: 0,
            out: if opts.collect {
                Some(&mut embeddings)
            } else {
                None
            },
        };
        for &root in candidates {
            // Routing the query to the partition hosting the seed vertex is
            // free; expansion from there is what costs traversals.
            search.mapping[0] = root;
            search.used.insert(root);
            search.extend(1);
            search.used.remove(&root);
            if search.exhausted() {
                break;
            }
        }
    }

    if metrics.remote_traversals == 0 {
        metrics.local_only_queries = 1;
    }
    metrics.matches_limited = metrics.matches_found >= match_limit
        || metrics.total_traversals >= traversal_budget
        || metrics.deadline_exceeded
        || metrics.cancelled;
    metrics.estimated_latency_us = metrics.remote_traversals as f64 * opts.latency.remote_hop_us
        + (metrics.total_traversals - metrics.remote_traversals) as f64 * opts.latency.local_hop_us;
    PlanExecution {
        metrics,
        embeddings,
    }
}

struct PlanSearch<'a, S: PatternStore + ?Sized> {
    store: &'a S,
    plan: &'a QueryPlan,
    /// Data vertex bound at each order position; positions `< depth` valid.
    mapping: Vec<VertexId>,
    used: FxHashSet<VertexId>,
    metrics: &'a mut ExecutionMetrics,
    match_limit: usize,
    traversal_budget: usize,
    /// Wall-clock cut-off, polled every [`DEADLINE_CHECK_STRIDE`] traversals.
    deadline: Option<Instant>,
    /// Cooperative cancellation token, polled on every traversal (one
    /// relaxed atomic load). `None` when executing without a context.
    cancel: Option<&'a CancelToken>,
    deadline_ticks: u32,
    out: Option<&'a mut Vec<Embedding>>,
}

impl<S: PatternStore + ?Sized> PlanSearch<'_, S> {
    fn exhausted(&self) -> bool {
        self.metrics.matches_found >= self.match_limit
            || self.metrics.total_traversals >= self.traversal_budget
            || self.metrics.deadline_exceeded
            || self.metrics.cancelled
    }

    /// Poll the request context. Rides the same early-exit machinery as the
    /// traversal budget: setting a flag makes [`Self::exhausted`] true and
    /// the search unwinds at the next expansion, keeping whatever partial
    /// metrics it accumulated so far.
    #[inline]
    fn observe_context(&mut self) {
        if let Some(cancel) = self.cancel {
            if cancel.is_cancelled() {
                self.metrics.cancelled = true;
                return;
            }
        }
        if let Some(deadline) = self.deadline {
            self.deadline_ticks += 1;
            if self.deadline_ticks >= DEADLINE_CHECK_STRIDE {
                self.deadline_ticks = 0;
                if Instant::now() >= deadline {
                    self.metrics.deadline_exceeded = true;
                }
            }
        }
    }

    fn extend(&mut self, depth: usize) {
        if self.exhausted() {
            return;
        }
        if depth == self.plan.len() {
            self.metrics.matches_found += 1;
            if let Some(out) = self.out.as_deref_mut() {
                out.push(Embedding::new(
                    self.plan
                        .order()
                        .iter()
                        .copied()
                        .zip(self.mapping.iter().copied())
                        .collect(),
                ));
            }
            return;
        }
        let bindings = self.plan.bindings(depth);
        // Expansion anchor: the first already-matched pattern neighbour. The
        // distributed engine fetches the anchor's adjacency list and follows
        // each candidate edge — that is the traversal we meter.
        let Some(&anchor_position) = bindings.first() else {
            // Disconnected pattern component: re-seed from the label index
            // (costless routing, like the root seed).
            let candidates = self.store.vertices_with_label(self.plan.label_at(depth));
            for &tv in candidates {
                self.try_candidate(depth, tv, None);
                if self.exhausted() {
                    return;
                }
            }
            return;
        };
        let anchor_image = self.mapping[anchor_position];
        let candidates = self.store.neighbors(anchor_image);
        for &tv in candidates {
            self.try_candidate(depth, tv, Some(anchor_image));
            if self.exhausted() {
                return;
            }
        }
    }

    fn try_candidate(&mut self, depth: usize, tv: VertexId, anchor_image: Option<VertexId>) {
        // Following the edge anchor → candidate is one traversal, local or
        // remote depending on where the two vertices live.
        if let Some(anchor) = anchor_image {
            self.metrics.total_traversals += 1;
            if self.store.is_remote_traversal(anchor, tv) {
                self.metrics.remote_traversals += 1;
            }
            self.observe_context();
            if self.metrics.cancelled || self.metrics.deadline_exceeded {
                return;
            }
        }
        if self.used.contains(&tv) {
            return;
        }
        if self.store.label(tv) != Some(self.plan.label_at(depth)) {
            return;
        }
        if self.store.neighbors(tv).len() < self.plan.degree_at(depth) {
            return;
        }
        let consistent = self.plan.bindings(depth).iter().all(|&position| {
            let image = self.mapping[position];
            self.store.contains_edge(tv, image)
        });
        if !consistent {
            return;
        }
        self.mapping[depth] = tv;
        self.used.insert(tv);
        self.extend(depth + 1);
        self.used.remove(&tv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PartitionedStore;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::LabelledGraph;
    use loom_motif::query::QueryId;
    use loom_partition::partition::{PartitionId, Partitioning};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn path_store() -> PartitionedStore {
        let g = path_graph(3, &[l(0), l(1), l(2)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 3).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        PartitionedStore::new(g, part)
    }

    #[test]
    fn execute_query_counts_matches_and_traversals() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let metrics = execute_query(
            &store,
            &query,
            QueryMode::FullEnumeration,
            10_000,
            LatencyModel::default(),
            0,
        );
        assert_eq!(metrics.matches_found, 1);
        assert!(metrics.total_traversals >= 2);
        assert!(metrics.remote_traversals >= 1);
        assert!(!metrics.matches_limited);
        assert_eq!(metrics.plan, Some(QueryPlan::legacy(&query).id()));
    }

    #[test]
    fn execute_plan_matches_the_legacy_wrapper_exactly() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let plan = QueryPlan::legacy(&query);
        for mode in [
            QueryMode::FullEnumeration,
            QueryMode::Rooted { seed_count: 2 },
        ] {
            for seed in 0..5u64 {
                let wrapped =
                    execute_query(&store, &query, mode, 10_000, LatencyModel::default(), seed);
                let planned = execute_plan(
                    &store,
                    &plan,
                    &ExecOptions {
                        mode,
                        root_seed: seed,
                        ..ExecOptions::default()
                    },
                );
                assert_eq!(wrapped, planned.metrics, "mode {mode:?} seed {seed}");
                assert!(planned.embeddings.is_empty(), "collect defaults off");
            }
        }
    }

    #[test]
    fn collected_embeddings_are_real_matches() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let plan = QueryPlan::legacy(&query);
        let run = execute_plan(
            &store,
            &plan,
            &ExecOptions {
                collect: true,
                ..ExecOptions::default()
            },
        );
        assert_eq!(run.embeddings.len(), run.metrics.matches_found);
        for embedding in &run.embeddings {
            assert_eq!(embedding.len(), query.vertex_count());
            for (pattern_v, data_v) in embedding.iter() {
                assert_eq!(
                    store.label(data_v),
                    query.graph().label(pattern_v),
                    "labels must line up"
                );
                assert_eq!(embedding.image_of(pattern_v), Some(data_v));
            }
            assert!(!embedding.is_empty());
            assert_eq!(embedding.image_of(VertexId::new(9_999)), None);
        }
    }

    #[test]
    fn traversal_budget_stops_the_search_and_flags_the_run() {
        // A hub with many leaves explodes in traversals; a budget of 3 cuts
        // the scan short and the metrics say so.
        let mut g = LabelledGraph::new();
        let hub = g.add_vertex(l(0));
        for _ in 0..50 {
            let leaf = g.add_vertex(l(1));
            g.add_edge(hub, leaf).unwrap();
        }
        let mut part = Partitioning::new(1, 64).unwrap();
        for v in g.vertices_sorted() {
            part.assign(v, PartitionId::new(0)).unwrap();
        }
        let store = PartitionedStore::new(g, part);
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let plan = QueryPlan::legacy(&query);
        let unlimited = execute_plan(&store, &plan, &ExecOptions::default());
        let budgeted = execute_plan(
            &store,
            &plan,
            &ExecOptions {
                traversal_budget: Some(3),
                ..ExecOptions::default()
            },
        );
        assert_eq!(budgeted.metrics.total_traversals, 3);
        assert!(budgeted.metrics.matches_limited);
        assert!(budgeted.metrics.total_traversals < unlimited.metrics.total_traversals);
        assert!(!unlimited.metrics.matches_limited);
    }

    #[test]
    fn zero_match_limit_is_a_no_op_probe() {
        // Legacy parity: a zero limit never expanded anything — no matches,
        // no traversals — and the plan path preserves that exactly.
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap();
        let metrics = execute_query(
            &store,
            &query,
            QueryMode::FullEnumeration,
            0,
            LatencyModel::default(),
            0,
        );
        assert_eq!(metrics.matches_found, 0);
        assert_eq!(metrics.total_traversals, 0);
        assert!(metrics.matches_limited, "a zero-limit run is limited");
    }

    #[test]
    fn root_candidates_full_mode_covers_the_label_index() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(1), l(2)]).unwrap();
        let roots = root_candidates(&store, &query, QueryMode::FullEnumeration, 0);
        // The matching order anchors on the higher-degree l(1) vertex.
        assert_eq!(roots.len(), 1);
        assert_eq!(store.label(roots[0]), Some(l(1)));
        // The plan-driven resolution agrees.
        let plan = QueryPlan::legacy(&query);
        assert_eq!(
            plan_roots(&store, &plan, QueryMode::FullEnumeration, 0),
            roots
        );
    }

    #[test]
    fn root_candidates_rooted_mode_is_deterministic_per_seed() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let mode = QueryMode::Rooted { seed_count: 2 };
        let a = root_candidates(&store, &query, mode, 9);
        let b = root_candidates(&store, &query, mode, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn missing_root_label_yields_no_candidates() {
        let store = path_store();
        let query = PatternQuery::path(QueryId::new(0), &[l(9), l(1)]).unwrap();
        assert!(root_candidates(&store, &query, QueryMode::FullEnumeration, 0).is_empty());
        assert!(root_candidates(&store, &query, QueryMode::Rooted { seed_count: 3 }, 0).is_empty());
    }
}
