//! The sharded store: per-partition CSR slices with a boundary halo.
//!
//! [`ShardedStore`] freezes a partitioned graph into the layout a concurrent
//! serving engine wants: vertices are laid out **partition-major** in one CSR
//! arena, so each partition's home vertices form a contiguous slice (its
//! [`Shard`]), and every shard additionally carries a per-label home-vertex
//! index (the router's shard-local label index), its *boundary* (home
//! vertices with at least one remote neighbour) and its *halo* (the remote
//! vertices adjacent to the shard — the replicas a physical deployment would
//! ship to the shard so one-hop expansions resolve locally; here they feed
//! the replication and locality accounting).
//!
//! The store implements [`PatternStore`], presenting exactly the same graph,
//! label index and remoteness semantics as the sequential
//! [`loom_sim::store::PartitionedStore`] — the serving engine's parity tests
//! rely on the two producing identical metrics for identical queries.

use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, LabelledGraph, VertexId};
use loom_partition::partition::{PartitionId, Partitioning};
use loom_sim::matcher::PatternStore;
use loom_sim::store::PartitionedStore;
use std::ops::Range;

/// Sentinel partition index for vertices without an assignment (they count as
/// remote to everyone, mirroring `PartitionedStore`).
const UNASSIGNED: u32 = u32::MAX;

/// Build one shard's label index, boundary and halo by scanning its slice of
/// the partition-major arena. Shared by the full build
/// ([`ShardedStore::from_parts`]) and the incremental migration rebuild
/// ([`ShardedStore::apply_migration`]), which invokes it only for shards a
/// move actually touched.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    p: u32,
    range: Range<usize>,
    order: &[VertexId],
    labels: &[Label],
    partition: &[u32],
    offsets: &[usize],
    targets: &[VertexId],
    position_of: &FxHashMap<VertexId, u32>,
) -> Shard {
    let mut label_index: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
    let mut boundary = Vec::new();
    let mut halo = Vec::new();
    for pos in range.clone() {
        let v = order[pos];
        label_index.entry(labels[pos]).or_default().push(v);
        let mut is_boundary = false;
        for &u in &targets[offsets[pos]..offsets[pos + 1]] {
            let u_part = position_of
                .get(&u)
                .map(|&q| partition[q as usize])
                .unwrap_or(UNASSIGNED);
            if u_part != p {
                is_boundary = true;
                halo.push(u);
            }
        }
        if is_boundary {
            boundary.push(v);
        }
    }
    halo.sort_unstable();
    halo.dedup();
    // Home vertices are visited in (partition, id) order, so the per-label
    // lists and the boundary are already sorted by id.
    Shard {
        id: PartitionId::new(p),
        range,
        label_index,
        boundary,
        halo,
    }
}

/// One partition's view of the sharded store.
#[derive(Debug, Clone)]
pub struct Shard {
    id: PartitionId,
    /// Position range of the shard's home vertices in the partition-major
    /// arena — the shard's CSR slice.
    range: Range<usize>,
    /// Label → home vertices carrying it, sorted by id. The router's
    /// per-shard label index.
    label_index: FxHashMap<Label, Vec<VertexId>>,
    /// Home vertices with at least one remote neighbour, sorted by id.
    boundary: Vec<VertexId>,
    /// Remote vertices adjacent to this shard (the replicated halo), sorted
    /// by id.
    halo: Vec<VertexId>,
}

impl Shard {
    /// The partition this shard hosts.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Number of home vertices.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the shard hosts no vertices.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Home vertices carrying `label`, sorted by id.
    pub fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.label_index
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate over the shard's label index: `(label, home vertices sorted
    /// by id)` in arbitrary label order. Checkpoint encoders sort by label
    /// for a deterministic blob; query paths use
    /// [`Shard::vertices_with_label`] instead.
    pub fn label_index(&self) -> impl Iterator<Item = (Label, &[VertexId])> {
        self.label_index.iter().map(|(&l, vs)| (l, vs.as_slice()))
    }

    /// Home vertices with at least one remote neighbour, sorted by id.
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Remote vertices adjacent to the shard (the replicated halo), sorted by
    /// id.
    pub fn halo(&self) -> &[VertexId] {
        &self.halo
    }
}

/// An immutable partition-major CSR snapshot of a partitioned graph, sliced
/// into per-partition [`Shard`]s.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    /// Position → original vertex id, partition-major (shard 0's home
    /// vertices first, then shard 1's, …, unassigned vertices last).
    order: Vec<VertexId>,
    /// Original id → position.
    position_of: FxHashMap<VertexId, u32>,
    /// CSR offsets over positions.
    offsets: Vec<usize>,
    /// Adjacency in the data graph's stable iteration order (keeps traversal
    /// order — and therefore match-limited metrics — identical to the
    /// sequential store).
    targets: Vec<VertexId>,
    /// Adjacency sorted per vertex, for O(log d) edge-membership checks.
    targets_sorted: Vec<VertexId>,
    /// Partition index per position (`UNASSIGNED` for unplaced vertices).
    partition: Vec<u32>,
    /// Label per position.
    labels: Vec<Label>,
    /// Global label index: label → vertices, sorted by id.
    by_label: FxHashMap<Label, Vec<VertexId>>,
    shards: Vec<Shard>,
    edge_count: usize,
    epoch: u64,
}

impl ShardedStore {
    /// Build a sharded store from a graph and a partitioning. Unassigned
    /// vertices are tolerated: they live outside every shard and count as
    /// remote to everyone.
    pub fn from_parts(graph: &LabelledGraph, partitioning: &Partitioning) -> Self {
        let k = partitioning.k();
        // Partition-major vertex order: (partition, id) ascending, with
        // unassigned vertices (sentinel) last.
        let mut order = graph.vertices_sorted();
        let part_key = |v: &VertexId| {
            partitioning
                .partition_of(*v)
                .map(|p| p.0)
                .unwrap_or(UNASSIGNED)
        };
        order.sort_by_key(|v| (part_key(v), *v));
        let position_of: FxHashMap<VertexId, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();

        let n = order.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut partition = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        offsets.push(0);
        for &v in &order {
            targets.extend_from_slice(graph.neighbors(v));
            offsets.push(targets.len());
            partition.push(part_key(&v));
            labels.push(graph.label(v).expect("vertex present in snapshot"));
        }
        let mut targets_sorted = targets.clone();
        for i in 0..n {
            targets_sorted[offsets[i]..offsets[i + 1]].sort_unstable();
        }

        let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
        for (v, l) in graph.labelled_vertices() {
            by_label.entry(l).or_default().push(v);
        }
        for members in by_label.values_mut() {
            members.sort_unstable();
        }

        // Per-shard slices, label indexes, boundaries and halos.
        let mut shards = Vec::with_capacity(k as usize);
        let mut cursor = 0usize;
        for p in 0..k {
            let start = cursor;
            while cursor < n && partition[cursor] == p {
                cursor += 1;
            }
            shards.push(build_shard(
                p,
                start..cursor,
                &order,
                &labels,
                &partition,
                &offsets,
                &targets,
                &position_of,
            ));
        }

        Self {
            order,
            position_of,
            offsets,
            targets,
            targets_sorted,
            partition,
            labels,
            by_label,
            shards,
            edge_count: graph.edge_count(),
            epoch: 0,
        }
    }

    /// Build a sharded store from a sequential [`PartitionedStore`].
    pub fn from_store(store: &PartitionedStore) -> Self {
        Self::from_parts(store.graph(), store.partitioning())
    }

    /// Apply a bounded batch of vertex moves *incrementally*: the adjacency
    /// arena is copied slice-by-slice in the new partition-major order (no
    /// graph lookups, no re-sorting), and only the shards a move actually
    /// touched — the sources and targets — get their label index, boundary
    /// and halo rebuilt. Every other shard's indexes are reused verbatim:
    /// a vertex moving between partitions `a` and `b` cannot change the
    /// boundary or halo membership of any third shard (it was remote to it
    /// before and remains remote after).
    ///
    /// Moves referencing unknown or unassigned vertices, out-of-range
    /// partitions, or a vertex's current partition are ignored; when several
    /// moves name the same vertex the last one wins. The resulting snapshot
    /// is semantically identical to `ShardedStore::from_parts` at the moved
    /// placement (the parity the adaptation tests assert) and carries epoch
    /// 0 — publish it through an [`crate::epoch::EpochStore`] to stamp it.
    pub fn apply_migration(&self, moves: &[(VertexId, PartitionId)]) -> MigratedStore {
        let k = self.shards.len();
        let n = self.order.len();
        // Final destination per vertex; only real changes survive.
        let mut dest: FxHashMap<VertexId, u32> = FxHashMap::default();
        for &(v, to) in moves {
            if to.index() >= k {
                continue;
            }
            let Some(&pos) = self.position_of.get(&v) else {
                continue;
            };
            if self.partition[pos as usize] == UNASSIGNED {
                continue;
            }
            dest.insert(v, to.0);
        }
        dest.retain(|v, to| self.partition[self.position_of[v] as usize] != *to);
        if dest.is_empty() {
            return MigratedStore {
                store: self.clone(),
                affected_shards: Vec::new(),
                moved: 0,
            };
        }

        let mut affected = vec![false; k];
        let mut incoming: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for (&v, &to) in &dest {
            affected[self.partition[self.position_of[&v] as usize] as usize] = true;
            affected[to as usize] = true;
            incoming[to as usize].push(v);
        }

        // New partition-major order: unaffected shards keep their slices
        // verbatim; affected shards drop movers-out, merge movers-in and
        // re-sort by id. The unassigned tail is untouched.
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(k);
        for p in 0..k {
            let start = order.len();
            let old = &self.order[self.shards[p].range.clone()];
            if affected[p] {
                let mut members: Vec<VertexId> = old
                    .iter()
                    .copied()
                    .filter(|v| !dest.contains_key(v))
                    .collect();
                members.extend_from_slice(&incoming[p]);
                members.sort_unstable();
                order.extend_from_slice(&members);
            } else {
                order.extend_from_slice(old);
            }
            ranges.push(start..order.len());
        }
        let assigned_end = self.shards.last().map(|s| s.range.end).unwrap_or(0);
        order.extend_from_slice(&self.order[assigned_end..]);

        // Copy the positional arrays in the new order straight from the old
        // slices — migration changes placement tags, never adjacency.
        let mut position_of: FxHashMap<VertexId, u32> = FxHashMap::default();
        position_of.reserve(n);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        let mut targets_sorted = Vec::with_capacity(self.targets_sorted.len());
        let mut labels = Vec::with_capacity(n);
        offsets.push(0);
        for (i, &v) in order.iter().enumerate() {
            let old_pos = self.position_of[&v] as usize;
            position_of.insert(v, i as u32);
            let slice = self.offsets[old_pos]..self.offsets[old_pos + 1];
            targets.extend_from_slice(&self.targets[slice.clone()]);
            targets_sorted.extend_from_slice(&self.targets_sorted[slice]);
            offsets.push(targets.len());
            labels.push(self.labels[old_pos]);
        }
        let mut partition = vec![UNASSIGNED; n];
        for (p, range) in ranges.iter().enumerate() {
            partition[range.clone()].fill(p as u32);
        }

        // Shards: rebuild the touched ones, rebase the rest onto their
        // (possibly shifted) new ranges with their indexes reused.
        let mut shards = Vec::with_capacity(k);
        for p in 0..k {
            let range = ranges[p].clone();
            if affected[p] {
                shards.push(build_shard(
                    p as u32,
                    range,
                    &order,
                    &labels,
                    &partition,
                    &offsets,
                    &targets,
                    &position_of,
                ));
            } else {
                let old = &self.shards[p];
                debug_assert_eq!(range.len(), old.range.len());
                shards.push(Shard {
                    id: old.id,
                    range,
                    label_index: old.label_index.clone(),
                    boundary: old.boundary.clone(),
                    halo: old.halo.clone(),
                });
            }
        }

        let affected_shards: Vec<PartitionId> = affected
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(p, _)| PartitionId::new(p as u32))
            .collect();
        MigratedStore {
            moved: dest.len(),
            affected_shards,
            store: Self {
                order,
                position_of,
                offsets,
                targets,
                targets_sorted,
                partition,
                labels,
                by_label: self.by_label.clone(),
                shards,
                edge_count: self.edge_count,
                epoch: 0,
            },
        }
    }

    /// Tag the snapshot with an epoch number (used by the ingest-while-serve
    /// epoch store).
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The epoch this snapshot was published under (0 for ad-hoc builds).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards (partitions).
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shards, indexed by partition id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by partition id.
    pub fn shard(&self, p: PartitionId) -> Option<&Shard> {
        self.shards.get(p.index())
    }

    /// Number of vertices in the snapshot.
    pub fn vertex_count(&self) -> usize {
        self.order.len()
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The vertex ids hosted by a shard, in id order (the shard's CSR slice).
    pub fn home_vertices(&self, p: PartitionId) -> &[VertexId] {
        self.shards
            .get(p.index())
            .map(|s| &self.order[s.range.clone()])
            .unwrap_or(&[])
    }

    /// The shard hosting a vertex, if the vertex is assigned.
    pub fn home_shard(&self, v: VertexId) -> Option<PartitionId> {
        let pos = *self.position_of.get(&v)?;
        match self.partition[pos as usize] {
            UNASSIGNED => None,
            p => Some(PartitionId::new(p)),
        }
    }

    /// Mean copies of each vertex across shards (home + halo replicas); 1.0
    /// means no replication at all.
    pub fn replication_factor(&self) -> f64 {
        if self.order.is_empty() {
            return 1.0;
        }
        let stored: usize = self.shards.iter().map(|s| s.len() + s.halo.len()).sum();
        // Unassigned vertices are stored nowhere; count them once so the
        // factor stays an "average copies per vertex" over all vertices.
        let unassigned = self.partition.iter().filter(|&&p| p == UNASSIGNED).count();
        (stored + unassigned) as f64 / self.order.len() as f64
    }

    /// Borrowed view of shard `p`'s contiguous slice of the CSR arena
    /// (home vertices, labels and adjacency in arena order), for checkpoint
    /// blob extraction. `None` for an out-of-range partition.
    pub fn shard_slice(&self, p: PartitionId) -> Option<ArenaSlice<'_>> {
        self.shards.get(p.index()).map(|s| ArenaSlice {
            store: self,
            range: s.range.clone(),
        })
    }

    /// Borrowed view of the unassigned tail of the arena: vertices the
    /// partitioner had not placed when the snapshot was frozen (e.g. still
    /// buffered in a streaming window). Empty when everything is assigned.
    pub fn unassigned_slice(&self) -> ArenaSlice<'_> {
        let start = self.shards.last().map(|s| s.range.end).unwrap_or(0);
        ArenaSlice {
            store: self,
            range: start..self.order.len(),
        }
    }

    fn position(&self, v: VertexId) -> Option<usize> {
        self.position_of.get(&v).map(|&p| p as usize)
    }
}

/// A borrowed, contiguous slice of a [`ShardedStore`]'s partition-major CSR
/// arena: either one shard's home vertices ([`ShardedStore::shard_slice`])
/// or the unassigned tail ([`ShardedStore::unassigned_slice`]). The
/// durability layer serializes exactly these views into checkpoint blobs.
#[derive(Debug, Clone)]
pub struct ArenaSlice<'a> {
    store: &'a ShardedStore,
    range: Range<usize>,
}

impl<'a> ArenaSlice<'a> {
    /// Number of vertices in the slice.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the slice holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The slice's vertex ids, in arena order (ascending id within a shard).
    pub fn vertices(&self) -> &'a [VertexId] {
        &self.store.order[self.range.clone()]
    }

    /// The slice's vertex labels, parallel to [`ArenaSlice::vertices`].
    pub fn labels(&self) -> &'a [Label] {
        &self.store.labels[self.range.clone()]
    }

    /// Adjacency of the `i`-th vertex of the slice, in the data graph's
    /// stable iteration order (the order the arena stores and traversals
    /// follow).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn neighbors(&self, i: usize) -> &'a [VertexId] {
        assert!(i < self.range.len(), "slice index out of range");
        let pos = self.range.start + i;
        &self.store.targets[self.store.offsets[pos]..self.store.offsets[pos + 1]]
    }
}

/// The result of an incremental migration rebuild
/// ([`ShardedStore::apply_migration`]).
#[derive(Debug, Clone)]
pub struct MigratedStore {
    /// The rebuilt snapshot (epoch 0 — stamped on publication).
    pub store: ShardedStore,
    /// Shards whose indexes had to be rebuilt: the sources and targets of
    /// the applied moves, in id order. Every other shard was reused.
    pub affected_shards: Vec<PartitionId>,
    /// Vertices whose home shard actually changed.
    pub moved: usize,
}

impl PatternStore for ShardedStore {
    fn label(&self, v: VertexId) -> Option<Label> {
        self.position(v).map(|p| self.labels[p])
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self.position(v) {
            Some(p) => &self.targets[self.offsets[p]..self.offsets[p + 1]],
            None => &[],
        }
    }

    fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        let Some(p) = self.position(a) else {
            return false;
        };
        self.targets_sorted[self.offsets[p]..self.offsets[p + 1]]
            .binary_search(&b)
            .is_ok()
    }

    fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool {
        match (self.position(from), self.position(to)) {
            (Some(a), Some(b)) => {
                let (pa, pb) = (self.partition[a], self.partition[b]);
                pa == UNASSIGNED || pb == UNASSIGNED || pa != pb
            }
            _ => true,
        }
    }

    fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.by_label.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn fixture() -> (LabelledGraph, Partitioning) {
        // 0 - 1 - 2 - 3 with partitions {0,1} {2}; 3 unassigned.
        let g = path_graph(4, &[Label::new(0), Label::new(1)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        (g, part)
    }

    #[test]
    fn partition_major_layout_and_slices() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.vertex_count(), 4);
        assert_eq!(store.edge_count(), 3);
        assert_eq!(store.home_vertices(PartitionId::new(0)), &[vs[0], vs[1]]);
        assert_eq!(store.home_vertices(PartitionId::new(1)), &[vs[2]]);
        assert_eq!(store.home_shard(vs[1]), Some(PartitionId::new(0)));
        assert_eq!(store.home_shard(vs[3]), None);
    }

    #[test]
    fn boundary_and_halo_indexes() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let s0 = store.shard(PartitionId::new(0)).unwrap();
        // Vertex 1 borders partition 1's vertex 2.
        assert_eq!(s0.boundary(), &[vs[1]]);
        assert_eq!(s0.halo(), &[vs[2]]);
        let s1 = store.shard(PartitionId::new(1)).unwrap();
        // Vertex 2 borders both vertex 1 (shard 0) and unassigned vertex 3.
        assert_eq!(s1.boundary(), &[vs[2]]);
        assert_eq!(s1.halo(), &[vs[1], vs[3]]);
        assert!(store.replication_factor() > 1.0);
    }

    #[test]
    fn pattern_store_semantics_match_the_sequential_store() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let sharded = ShardedStore::from_parts(&g, &part);
        let sequential = PartitionedStore::new(g.clone(), part.clone());
        for &v in &vs {
            assert_eq!(
                PatternStore::label(&sharded, v),
                PatternStore::label(&sequential, v)
            );
            assert_eq!(
                PatternStore::neighbors(&sharded, v),
                PatternStore::neighbors(&sequential, v)
            );
            for &u in &vs {
                assert_eq!(
                    PatternStore::contains_edge(&sharded, v, u),
                    PatternStore::contains_edge(&sequential, v, u)
                );
                assert_eq!(
                    PatternStore::is_remote_traversal(&sharded, v, u),
                    PatternStore::is_remote_traversal(&sequential, v, u)
                );
            }
        }
        for l in [Label::new(0), Label::new(1), Label::new(9)] {
            assert_eq!(
                PatternStore::vertices_with_label(&sharded, l),
                PatternStore::vertices_with_label(&sequential, l)
            );
        }
    }

    #[test]
    fn per_shard_label_index_covers_home_vertices_only() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let s0 = store.shard(PartitionId::new(0)).unwrap();
        assert_eq!(s0.vertices_with_label(Label::new(0)), &[vs[0]]);
        assert_eq!(s0.vertices_with_label(Label::new(1)), &[vs[1]]);
        assert!(s0.vertices_with_label(Label::new(9)).is_empty());
        assert_eq!(s0.len(), 2);
        assert!(!s0.is_empty());
        assert_eq!(s0.id(), PartitionId::new(0));
    }

    #[test]
    fn epoch_tagging() {
        let (g, part) = fixture();
        let store = ShardedStore::from_parts(&g, &part).with_epoch(7);
        assert_eq!(store.epoch(), 7);
    }

    /// A 9-vertex path over 3 partitions of 3 vertices each.
    fn migration_fixture() -> (LabelledGraph, Partitioning) {
        let g = path_graph(9, &[Label::new(0), Label::new(1), Label::new(2)]);
        let mut part = Partitioning::new(3, 9).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 3) as u32)).unwrap();
        }
        (g, part)
    }

    /// Assert two stores are semantically identical: same layout, same
    /// shard indexes, same `PatternStore` answers.
    fn assert_stores_equal(a: &ShardedStore, b: &ShardedStore, vs: &[VertexId]) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.shard_count(), b.shard_count());
        for p in 0..a.shard_count() {
            let p = PartitionId::new(p);
            assert_eq!(a.home_vertices(p), b.home_vertices(p), "{p} homes");
            let (sa, sb) = (a.shard(p).unwrap(), b.shard(p).unwrap());
            assert_eq!(sa.boundary(), sb.boundary(), "{p} boundary");
            assert_eq!(sa.halo(), sb.halo(), "{p} halo");
            for l in [Label::new(0), Label::new(1), Label::new(2)] {
                assert_eq!(
                    sa.vertices_with_label(l),
                    sb.vertices_with_label(l),
                    "{p} label index"
                );
            }
        }
        for &v in vs {
            assert_eq!(PatternStore::label(a, v), PatternStore::label(b, v));
            assert_eq!(PatternStore::neighbors(a, v), PatternStore::neighbors(b, v));
            assert_eq!(a.home_shard(v), b.home_shard(v));
            for &u in vs {
                assert_eq!(
                    PatternStore::contains_edge(a, v, u),
                    PatternStore::contains_edge(b, v, u)
                );
                assert_eq!(
                    PatternStore::is_remote_traversal(a, v, u),
                    PatternStore::is_remote_traversal(b, v, u)
                );
            }
        }
    }

    #[test]
    fn migration_matches_a_from_scratch_rebuild() {
        let (g, mut part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        // Move vertex 3 (shard 1) home to shard 0 and vertex 5 to shard 2.
        let moves = vec![(vs[3], PartitionId::new(0)), (vs[5], PartitionId::new(2))];
        let migrated = store.apply_migration(&moves);
        assert_eq!(migrated.moved, 2);
        assert_eq!(
            migrated.affected_shards,
            vec![
                PartitionId::new(0),
                PartitionId::new(1),
                PartitionId::new(2)
            ]
        );
        for (v, to) in moves {
            part.move_vertex(v, to).unwrap();
        }
        let rebuilt = ShardedStore::from_parts(&g, &part);
        assert_stores_equal(&migrated.store, &rebuilt, &vs);
    }

    #[test]
    fn untouched_shards_are_reused_not_rebuilt() {
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        // One move between shards 0 and 1: shard 2 must not be affected.
        let migrated = store.apply_migration(&[(vs[3], PartitionId::new(0))]);
        assert_eq!(
            migrated.affected_shards,
            vec![PartitionId::new(0), PartitionId::new(1)]
        );
        let (old, new) = (
            store.shard(PartitionId::new(2)).unwrap(),
            migrated.store.shard(PartitionId::new(2)).unwrap(),
        );
        assert_eq!(old.boundary(), new.boundary());
        assert_eq!(old.halo(), new.halo());
        // And the reused shard is still *correct* against a full rebuild.
        let mut moved = part.clone();
        moved.move_vertex(vs[3], PartitionId::new(0)).unwrap();
        assert_stores_equal(&migrated.store, &ShardedStore::from_parts(&g, &moved), &vs);
    }

    #[test]
    fn degenerate_moves_are_ignored() {
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let migrated = store.apply_migration(&[
            (vs[0], PartitionId::new(0)),                 // already there
            (vs[1], PartitionId::new(9)),                 // unknown partition
            (VertexId::new(10_000), PartitionId::new(1)), // unknown vertex
        ]);
        assert_eq!(migrated.moved, 0);
        assert!(migrated.affected_shards.is_empty());
        assert_stores_equal(&migrated.store, &store, &vs);
    }

    #[test]
    fn last_move_wins_for_a_repeated_vertex() {
        let (g, mut part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let migrated =
            store.apply_migration(&[(vs[4], PartitionId::new(0)), (vs[4], PartitionId::new(2))]);
        assert_eq!(migrated.moved, 1);
        part.move_vertex(vs[4], PartitionId::new(2)).unwrap();
        assert_stores_equal(&migrated.store, &ShardedStore::from_parts(&g, &part), &vs);
    }

    #[test]
    fn migration_tolerates_unassigned_vertices() {
        // Reuse the 4-vertex fixture where vertex 3 is unassigned: it cannot
        // be moved, and it survives the rebuild in the unassigned tail.
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let migrated = store.apply_migration(&[
            (vs[3], PartitionId::new(0)), // unassigned: ignored
            (vs[2], PartitionId::new(0)), // real move
        ]);
        assert_eq!(migrated.moved, 1);
        let mut moved = part.clone();
        moved.move_vertex(vs[2], PartitionId::new(0)).unwrap();
        let rebuilt = ShardedStore::from_parts(&g, &moved);
        assert_eq!(migrated.store.home_shard(vs[3]), None);
        assert_eq!(
            migrated.store.replication_factor(),
            rebuilt.replication_factor()
        );
    }
}
