//! The sharded store: per-partition CSR slices with a boundary halo.
//!
//! [`ShardedStore`] freezes a partitioned graph into the layout a concurrent
//! serving engine wants: vertices are laid out **partition-major** in one CSR
//! arena, so each partition's home vertices form a contiguous slice (its
//! [`Shard`]), and every shard additionally carries a per-label home-vertex
//! index (the router's shard-local label index), its *boundary* (home
//! vertices with at least one remote neighbour) and its *halo* (the remote
//! vertices adjacent to the shard — the replicas a physical deployment would
//! ship to the shard so one-hop expansions resolve locally; here they feed
//! the replication and locality accounting).
//!
//! The store implements [`PatternStore`], presenting exactly the same graph,
//! label index and remoteness semantics as the sequential
//! [`loom_sim::store::PartitionedStore`] — the serving engine's parity tests
//! rely on the two producing identical metrics for identical queries.

use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, LabelledGraph, VertexId};
use loom_partition::partition::{PartitionId, Partitioning};
use loom_sim::matcher::PatternStore;
use loom_sim::store::PartitionedStore;
use std::ops::Range;

/// Sentinel partition index for vertices without an assignment (they count as
/// remote to everyone, mirroring `PartitionedStore`).
const UNASSIGNED: u32 = u32::MAX;

/// One partition's view of the sharded store.
#[derive(Debug, Clone)]
pub struct Shard {
    id: PartitionId,
    /// Position range of the shard's home vertices in the partition-major
    /// arena — the shard's CSR slice.
    range: Range<usize>,
    /// Label → home vertices carrying it, sorted by id. The router's
    /// per-shard label index.
    label_index: FxHashMap<Label, Vec<VertexId>>,
    /// Home vertices with at least one remote neighbour, sorted by id.
    boundary: Vec<VertexId>,
    /// Remote vertices adjacent to this shard (the replicated halo), sorted
    /// by id.
    halo: Vec<VertexId>,
}

impl Shard {
    /// The partition this shard hosts.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Number of home vertices.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the shard hosts no vertices.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Home vertices carrying `label`, sorted by id.
    pub fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.label_index
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Home vertices with at least one remote neighbour, sorted by id.
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Remote vertices adjacent to the shard (the replicated halo), sorted by
    /// id.
    pub fn halo(&self) -> &[VertexId] {
        &self.halo
    }
}

/// An immutable partition-major CSR snapshot of a partitioned graph, sliced
/// into per-partition [`Shard`]s.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    /// Position → original vertex id, partition-major (shard 0's home
    /// vertices first, then shard 1's, …, unassigned vertices last).
    order: Vec<VertexId>,
    /// Original id → position.
    position_of: FxHashMap<VertexId, u32>,
    /// CSR offsets over positions.
    offsets: Vec<usize>,
    /// Adjacency in the data graph's stable iteration order (keeps traversal
    /// order — and therefore match-limited metrics — identical to the
    /// sequential store).
    targets: Vec<VertexId>,
    /// Adjacency sorted per vertex, for O(log d) edge-membership checks.
    targets_sorted: Vec<VertexId>,
    /// Partition index per position (`UNASSIGNED` for unplaced vertices).
    partition: Vec<u32>,
    /// Label per position.
    labels: Vec<Label>,
    /// Global label index: label → vertices, sorted by id.
    by_label: FxHashMap<Label, Vec<VertexId>>,
    shards: Vec<Shard>,
    edge_count: usize,
    epoch: u64,
}

impl ShardedStore {
    /// Build a sharded store from a graph and a partitioning. Unassigned
    /// vertices are tolerated: they live outside every shard and count as
    /// remote to everyone.
    pub fn from_parts(graph: &LabelledGraph, partitioning: &Partitioning) -> Self {
        let k = partitioning.k();
        // Partition-major vertex order: (partition, id) ascending, with
        // unassigned vertices (sentinel) last.
        let mut order = graph.vertices_sorted();
        let part_key = |v: &VertexId| {
            partitioning
                .partition_of(*v)
                .map(|p| p.0)
                .unwrap_or(UNASSIGNED)
        };
        order.sort_by_key(|v| (part_key(v), *v));
        let position_of: FxHashMap<VertexId, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();

        let n = order.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut partition = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        offsets.push(0);
        for &v in &order {
            targets.extend_from_slice(graph.neighbors(v));
            offsets.push(targets.len());
            partition.push(part_key(&v));
            labels.push(graph.label(v).expect("vertex present in snapshot"));
        }
        let mut targets_sorted = targets.clone();
        for i in 0..n {
            targets_sorted[offsets[i]..offsets[i + 1]].sort_unstable();
        }

        let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
        for (v, l) in graph.labelled_vertices() {
            by_label.entry(l).or_default().push(v);
        }
        for members in by_label.values_mut() {
            members.sort_unstable();
        }

        // Per-shard slices, label indexes, boundaries and halos.
        let mut shards = Vec::with_capacity(k as usize);
        let mut cursor = 0usize;
        for p in 0..k {
            let start = cursor;
            while cursor < n && partition[cursor] == p {
                cursor += 1;
            }
            let range = start..cursor;
            let mut label_index: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
            let mut boundary = Vec::new();
            let mut halo = Vec::new();
            for pos in range.clone() {
                let v = order[pos];
                label_index.entry(labels[pos]).or_default().push(v);
                let mut is_boundary = false;
                for &u in &targets[offsets[pos]..offsets[pos + 1]] {
                    let u_part = position_of
                        .get(&u)
                        .map(|&q| partition[q as usize])
                        .unwrap_or(UNASSIGNED);
                    if u_part != p {
                        is_boundary = true;
                        halo.push(u);
                    }
                }
                if is_boundary {
                    boundary.push(v);
                }
            }
            halo.sort_unstable();
            halo.dedup();
            // Home vertices were visited in (partition, id) order, so the
            // per-label lists and the boundary are already sorted by id.
            shards.push(Shard {
                id: PartitionId::new(p),
                range,
                label_index,
                boundary,
                halo,
            });
        }

        Self {
            order,
            position_of,
            offsets,
            targets,
            targets_sorted,
            partition,
            labels,
            by_label,
            shards,
            edge_count: graph.edge_count(),
            epoch: 0,
        }
    }

    /// Build a sharded store from a sequential [`PartitionedStore`].
    pub fn from_store(store: &PartitionedStore) -> Self {
        Self::from_parts(store.graph(), store.partitioning())
    }

    /// Tag the snapshot with an epoch number (used by the ingest-while-serve
    /// epoch store).
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The epoch this snapshot was published under (0 for ad-hoc builds).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards (partitions).
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shards, indexed by partition id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by partition id.
    pub fn shard(&self, p: PartitionId) -> Option<&Shard> {
        self.shards.get(p.index())
    }

    /// Number of vertices in the snapshot.
    pub fn vertex_count(&self) -> usize {
        self.order.len()
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The vertex ids hosted by a shard, in id order (the shard's CSR slice).
    pub fn home_vertices(&self, p: PartitionId) -> &[VertexId] {
        self.shards
            .get(p.index())
            .map(|s| &self.order[s.range.clone()])
            .unwrap_or(&[])
    }

    /// The shard hosting a vertex, if the vertex is assigned.
    pub fn home_shard(&self, v: VertexId) -> Option<PartitionId> {
        let pos = *self.position_of.get(&v)?;
        match self.partition[pos as usize] {
            UNASSIGNED => None,
            p => Some(PartitionId::new(p)),
        }
    }

    /// Mean copies of each vertex across shards (home + halo replicas); 1.0
    /// means no replication at all.
    pub fn replication_factor(&self) -> f64 {
        if self.order.is_empty() {
            return 1.0;
        }
        let stored: usize = self.shards.iter().map(|s| s.len() + s.halo.len()).sum();
        // Unassigned vertices are stored nowhere; count them once so the
        // factor stays an "average copies per vertex" over all vertices.
        let unassigned = self.partition.iter().filter(|&&p| p == UNASSIGNED).count();
        (stored + unassigned) as f64 / self.order.len() as f64
    }

    fn position(&self, v: VertexId) -> Option<usize> {
        self.position_of.get(&v).map(|&p| p as usize)
    }
}

impl PatternStore for ShardedStore {
    fn label(&self, v: VertexId) -> Option<Label> {
        self.position(v).map(|p| self.labels[p])
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self.position(v) {
            Some(p) => &self.targets[self.offsets[p]..self.offsets[p + 1]],
            None => &[],
        }
    }

    fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        let Some(p) = self.position(a) else {
            return false;
        };
        self.targets_sorted[self.offsets[p]..self.offsets[p + 1]]
            .binary_search(&b)
            .is_ok()
    }

    fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool {
        match (self.position(from), self.position(to)) {
            (Some(a), Some(b)) => {
                let (pa, pb) = (self.partition[a], self.partition[b]);
                pa == UNASSIGNED || pb == UNASSIGNED || pa != pb
            }
            _ => true,
        }
    }

    fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.by_label.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn fixture() -> (LabelledGraph, Partitioning) {
        // 0 - 1 - 2 - 3 with partitions {0,1} {2}; 3 unassigned.
        let g = path_graph(4, &[Label::new(0), Label::new(1)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        (g, part)
    }

    #[test]
    fn partition_major_layout_and_slices() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.vertex_count(), 4);
        assert_eq!(store.edge_count(), 3);
        assert_eq!(store.home_vertices(PartitionId::new(0)), &[vs[0], vs[1]]);
        assert_eq!(store.home_vertices(PartitionId::new(1)), &[vs[2]]);
        assert_eq!(store.home_shard(vs[1]), Some(PartitionId::new(0)));
        assert_eq!(store.home_shard(vs[3]), None);
    }

    #[test]
    fn boundary_and_halo_indexes() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let s0 = store.shard(PartitionId::new(0)).unwrap();
        // Vertex 1 borders partition 1's vertex 2.
        assert_eq!(s0.boundary(), &[vs[1]]);
        assert_eq!(s0.halo(), &[vs[2]]);
        let s1 = store.shard(PartitionId::new(1)).unwrap();
        // Vertex 2 borders both vertex 1 (shard 0) and unassigned vertex 3.
        assert_eq!(s1.boundary(), &[vs[2]]);
        assert_eq!(s1.halo(), &[vs[1], vs[3]]);
        assert!(store.replication_factor() > 1.0);
    }

    #[test]
    fn pattern_store_semantics_match_the_sequential_store() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let sharded = ShardedStore::from_parts(&g, &part);
        let sequential = PartitionedStore::new(g.clone(), part.clone());
        for &v in &vs {
            assert_eq!(
                PatternStore::label(&sharded, v),
                PatternStore::label(&sequential, v)
            );
            assert_eq!(
                PatternStore::neighbors(&sharded, v),
                PatternStore::neighbors(&sequential, v)
            );
            for &u in &vs {
                assert_eq!(
                    PatternStore::contains_edge(&sharded, v, u),
                    PatternStore::contains_edge(&sequential, v, u)
                );
                assert_eq!(
                    PatternStore::is_remote_traversal(&sharded, v, u),
                    PatternStore::is_remote_traversal(&sequential, v, u)
                );
            }
        }
        for l in [Label::new(0), Label::new(1), Label::new(9)] {
            assert_eq!(
                PatternStore::vertices_with_label(&sharded, l),
                PatternStore::vertices_with_label(&sequential, l)
            );
        }
    }

    #[test]
    fn per_shard_label_index_covers_home_vertices_only() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let s0 = store.shard(PartitionId::new(0)).unwrap();
        assert_eq!(s0.vertices_with_label(Label::new(0)), &[vs[0]]);
        assert_eq!(s0.vertices_with_label(Label::new(1)), &[vs[1]]);
        assert!(s0.vertices_with_label(Label::new(9)).is_empty());
        assert_eq!(s0.len(), 2);
        assert!(!s0.is_empty());
        assert_eq!(s0.id(), PartitionId::new(0));
    }

    #[test]
    fn epoch_tagging() {
        let (g, part) = fixture();
        let store = ShardedStore::from_parts(&g, &part).with_epoch(7);
        assert_eq!(store.epoch(), 7);
    }
}
