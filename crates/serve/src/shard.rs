//! The sharded store: per-partition CSR slices with a boundary halo.
//!
//! [`ShardedStore`] freezes a partitioned graph into the layout a concurrent
//! serving engine wants: vertices are laid out **partition-major** in one CSR
//! arena, so each partition's home vertices form a contiguous slice (its
//! [`Shard`]), and every shard additionally carries a per-label home-vertex
//! index (the router's shard-local label index), its *boundary* (home
//! vertices with at least one remote neighbour) and its *halo* (the remote
//! vertices adjacent to the shard — the replicas a physical deployment would
//! ship to the shard so one-hop expansions resolve locally; here they feed
//! the replication and locality accounting).
//!
//! The store implements [`PatternStore`], presenting exactly the same graph,
//! label index and remoteness semantics as the sequential
//! [`loom_sim::store::PartitionedStore`] — the serving engine's parity tests
//! rely on the two producing identical metrics for identical queries.

use loom_graph::fxhash::FxHashMap;
use loom_graph::{Label, LabelledGraph, VertexId};
use loom_partition::partition::{PartitionId, Partitioning};
use loom_sim::matcher::PatternStore;
use loom_sim::store::PartitionedStore;
use std::ops::Range;

/// Sentinel partition index for vertices without an assignment (they count as
/// remote to everyone, mirroring `PartitionedStore`).
const UNASSIGNED: u32 = u32::MAX;

/// Build one shard's label index, boundary and halo by scanning its slice of
/// the partition-major arena. Shared by the full build
/// ([`ShardedStore::from_parts`]), the incremental migration rebuild
/// ([`ShardedStore::apply_migration`]) and the epoch-compaction rebuild
/// ([`ShardedStore::compact`]), which invoke it only for shards actually
/// touched. Tombstoned vertices are skipped entirely and only the live
/// prefix of each adjacency slice is scanned.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    p: u32,
    range: Range<usize>,
    order: &[VertexId],
    labels: &[Label],
    partition: &[u32],
    offsets: &[usize],
    targets: &[VertexId],
    live_degree: &[u32],
    dead: &[bool],
    position_of: &FxHashMap<VertexId, u32>,
) -> Shard {
    let mut label_index: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
    let mut boundary = Vec::new();
    let mut halo = Vec::new();
    for pos in range.clone() {
        if dead[pos] {
            continue;
        }
        let v = order[pos];
        label_index.entry(labels[pos]).or_default().push(v);
        let mut is_boundary = false;
        for &u in &targets[offsets[pos]..offsets[pos] + live_degree[pos] as usize] {
            let u_part = position_of
                .get(&u)
                .map(|&q| partition[q as usize])
                .unwrap_or(UNASSIGNED);
            if u_part != p {
                is_boundary = true;
                halo.push(u);
            }
        }
        if is_boundary {
            boundary.push(v);
        }
    }
    halo.sort_unstable();
    halo.dedup();
    // Home vertices are visited in (partition, id) order, so the per-label
    // lists and the boundary are already sorted by id.
    Shard {
        id: PartitionId::new(p),
        range,
        label_index,
        boundary,
        halo,
    }
}

/// One partition's view of the sharded store.
#[derive(Debug, Clone)]
pub struct Shard {
    id: PartitionId,
    /// Position range of the shard's home vertices in the partition-major
    /// arena — the shard's CSR slice.
    range: Range<usize>,
    /// Label → home vertices carrying it, sorted by id. The router's
    /// per-shard label index.
    label_index: FxHashMap<Label, Vec<VertexId>>,
    /// Home vertices with at least one remote neighbour, sorted by id.
    boundary: Vec<VertexId>,
    /// Remote vertices adjacent to this shard (the replicated halo), sorted
    /// by id.
    halo: Vec<VertexId>,
}

impl Shard {
    /// The partition this shard hosts.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Number of home vertices.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the shard hosts no vertices.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Home vertices carrying `label`, sorted by id.
    pub fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.label_index
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate over the shard's label index: `(label, home vertices sorted
    /// by id)` in arbitrary label order. Checkpoint encoders sort by label
    /// for a deterministic blob; query paths use
    /// [`Shard::vertices_with_label`] instead.
    pub fn label_index(&self) -> impl Iterator<Item = (Label, &[VertexId])> {
        self.label_index.iter().map(|(&l, vs)| (l, vs.as_slice()))
    }

    /// Home vertices with at least one remote neighbour, sorted by id.
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// Remote vertices adjacent to the shard (the replicated halo), sorted by
    /// id.
    pub fn halo(&self) -> &[VertexId] {
        &self.halo
    }
}

/// An immutable partition-major CSR snapshot of a partitioned graph, sliced
/// into per-partition [`Shard`]s.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    /// Position → original vertex id, partition-major (shard 0's home
    /// vertices first, then shard 1's, …, unassigned vertices last).
    order: Vec<VertexId>,
    /// Original id → position.
    position_of: FxHashMap<VertexId, u32>,
    /// CSR offsets over positions.
    offsets: Vec<usize>,
    /// Adjacency in the data graph's stable iteration order (keeps traversal
    /// order — and therefore match-limited metrics — identical to the
    /// sequential store).
    targets: Vec<VertexId>,
    /// Adjacency sorted per vertex, for O(log d) edge-membership checks.
    targets_sorted: Vec<VertexId>,
    /// Partition index per position (`UNASSIGNED` for unplaced vertices).
    partition: Vec<u32>,
    /// Label per position.
    labels: Vec<Label>,
    /// Global label index: label → *live* vertices, sorted by id.
    by_label: FxHashMap<Label, Vec<VertexId>>,
    /// Live adjacency length per position:
    /// `targets[offsets[pos]..offsets[pos] + live_degree[pos]]` is the live
    /// neighbourhood; the rest of the slice up to `offsets[pos + 1]` holds
    /// slots vacated by removals — tombstoned slots every query skips.
    live_degree: Vec<u32>,
    /// Vertex tombstone flag per position: marked dead by
    /// [`ShardedStore::apply_mutations`], physically removed by
    /// [`ShardedStore::compact`].
    dead: Vec<bool>,
    /// Tombstoned home vertices per shard.
    dead_vertices: Vec<usize>,
    /// Tombstoned adjacency slots per shard.
    dead_slots: Vec<usize>,
    shards: Vec<Shard>,
    edge_count: usize,
    epoch: u64,
}

/// Per-shard tombstone counters recomputed after a structural rebuild
/// (migration or compaction reshuffles which positions belong to which
/// shard, so the incremental counters must be re-derived).
fn dead_counters(
    k: usize,
    partition: &[u32],
    dead: &[bool],
    offsets: &[usize],
    live_degree: &[u32],
) -> (Vec<usize>, Vec<usize>) {
    let mut dead_vertices = vec![0usize; k];
    let mut dead_slots = vec![0usize; k];
    for pos in 0..partition.len() {
        let p = partition[pos];
        if p == UNASSIGNED {
            continue;
        }
        if dead[pos] {
            dead_vertices[p as usize] += 1;
        }
        dead_slots[p as usize] += (offsets[pos + 1] - offsets[pos]) - live_degree[pos] as usize;
    }
    (dead_vertices, dead_slots)
}

impl ShardedStore {
    /// Build a sharded store from a graph and a partitioning. Unassigned
    /// vertices are tolerated: they live outside every shard and count as
    /// remote to everyone.
    pub fn from_parts(graph: &LabelledGraph, partitioning: &Partitioning) -> Self {
        let k = partitioning.k();
        // Partition-major vertex order: (partition, id) ascending, with
        // unassigned vertices (sentinel) last.
        let mut order = graph.vertices_sorted();
        let part_key = |v: &VertexId| {
            partitioning
                .partition_of(*v)
                .map(|p| p.0)
                .unwrap_or(UNASSIGNED)
        };
        order.sort_by_key(|v| (part_key(v), *v));
        let position_of: FxHashMap<VertexId, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();

        let n = order.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut partition = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut live_degree = Vec::with_capacity(n);
        offsets.push(0);
        for &v in &order {
            let neighbors = graph.neighbors(v);
            targets.extend_from_slice(neighbors);
            offsets.push(targets.len());
            partition.push(part_key(&v));
            labels.push(graph.label(v).expect("vertex present in snapshot"));
            live_degree.push(neighbors.len() as u32);
        }
        let mut targets_sorted = targets.clone();
        for i in 0..n {
            targets_sorted[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        let dead = vec![false; n];

        let mut by_label: FxHashMap<Label, Vec<VertexId>> = FxHashMap::default();
        for (v, l) in graph.labelled_vertices() {
            by_label.entry(l).or_default().push(v);
        }
        for members in by_label.values_mut() {
            members.sort_unstable();
        }

        // Per-shard slices, label indexes, boundaries and halos.
        let mut shards = Vec::with_capacity(k as usize);
        let mut cursor = 0usize;
        for p in 0..k {
            let start = cursor;
            while cursor < n && partition[cursor] == p {
                cursor += 1;
            }
            shards.push(build_shard(
                p,
                start..cursor,
                &order,
                &labels,
                &partition,
                &offsets,
                &targets,
                &live_degree,
                &dead,
                &position_of,
            ));
        }

        Self {
            order,
            position_of,
            offsets,
            targets,
            targets_sorted,
            partition,
            labels,
            by_label,
            live_degree,
            dead,
            dead_vertices: vec![0; k as usize],
            dead_slots: vec![0; k as usize],
            shards,
            edge_count: graph.edge_count(),
            epoch: 0,
        }
    }

    /// Build a sharded store from a sequential [`PartitionedStore`].
    pub fn from_store(store: &PartitionedStore) -> Self {
        Self::from_parts(store.graph(), store.partitioning())
    }

    /// Apply a bounded batch of vertex moves *incrementally*: the adjacency
    /// arena is copied slice-by-slice in the new partition-major order (no
    /// graph lookups, no re-sorting), and only the shards a move actually
    /// touched — the sources and targets — get their label index, boundary
    /// and halo rebuilt. Every other shard's indexes are reused verbatim:
    /// a vertex moving between partitions `a` and `b` cannot change the
    /// boundary or halo membership of any third shard (it was remote to it
    /// before and remains remote after).
    ///
    /// Moves referencing unknown or unassigned vertices, out-of-range
    /// partitions, or a vertex's current partition are ignored; when several
    /// moves name the same vertex the last one wins. The resulting snapshot
    /// is semantically identical to `ShardedStore::from_parts` at the moved
    /// placement (the parity the adaptation tests assert) and carries epoch
    /// 0 — publish it through an [`crate::epoch::EpochStore`] to stamp it.
    pub fn apply_migration(&self, moves: &[(VertexId, PartitionId)]) -> MigratedStore {
        let k = self.shards.len();
        let n = self.order.len();
        // Final destination per vertex; only real changes survive.
        let mut dest: FxHashMap<VertexId, u32> = FxHashMap::default();
        for &(v, to) in moves {
            if to.index() >= k {
                continue;
            }
            let Some(&pos) = self.position_of.get(&v) else {
                continue;
            };
            // Tombstoned vertices cannot be moved: the planner must not plan
            // moves for dead vertices, and ignoring them here keeps a stale
            // plan harmless.
            if self.partition[pos as usize] == UNASSIGNED || self.dead[pos as usize] {
                continue;
            }
            dest.insert(v, to.0);
        }
        dest.retain(|v, to| self.partition[self.position_of[v] as usize] != *to);
        if dest.is_empty() {
            return MigratedStore {
                store: self.clone(),
                affected_shards: Vec::new(),
                moved: 0,
            };
        }

        let mut affected = vec![false; k];
        let mut incoming: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        for (&v, &to) in &dest {
            affected[self.partition[self.position_of[&v] as usize] as usize] = true;
            affected[to as usize] = true;
            incoming[to as usize].push(v);
        }

        // New partition-major order: unaffected shards keep their slices
        // verbatim; affected shards drop movers-out, merge movers-in and
        // re-sort by id. The unassigned tail is untouched.
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(k);
        for p in 0..k {
            let start = order.len();
            let old = &self.order[self.shards[p].range.clone()];
            if affected[p] {
                let mut members: Vec<VertexId> = old
                    .iter()
                    .copied()
                    .filter(|v| !dest.contains_key(v))
                    .collect();
                members.extend_from_slice(&incoming[p]);
                members.sort_unstable();
                order.extend_from_slice(&members);
            } else {
                order.extend_from_slice(old);
            }
            ranges.push(start..order.len());
        }
        let assigned_end = self.shards.last().map(|s| s.range.end).unwrap_or(0);
        order.extend_from_slice(&self.order[assigned_end..]);

        // Copy the positional arrays in the new order straight from the old
        // slices — migration changes placement tags, never adjacency.
        let mut position_of: FxHashMap<VertexId, u32> = FxHashMap::default();
        position_of.reserve(n);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        let mut targets_sorted = Vec::with_capacity(self.targets_sorted.len());
        let mut labels = Vec::with_capacity(n);
        let mut live_degree = Vec::with_capacity(n);
        let mut dead = Vec::with_capacity(n);
        offsets.push(0);
        for (i, &v) in order.iter().enumerate() {
            let old_pos = self.position_of[&v] as usize;
            position_of.insert(v, i as u32);
            let slice = self.offsets[old_pos]..self.offsets[old_pos + 1];
            targets.extend_from_slice(&self.targets[slice.clone()]);
            targets_sorted.extend_from_slice(&self.targets_sorted[slice]);
            offsets.push(targets.len());
            labels.push(self.labels[old_pos]);
            live_degree.push(self.live_degree[old_pos]);
            dead.push(self.dead[old_pos]);
        }
        let mut partition = vec![UNASSIGNED; n];
        for (p, range) in ranges.iter().enumerate() {
            partition[range.clone()].fill(p as u32);
        }
        let (dead_vertices, dead_slots) =
            dead_counters(k, &partition, &dead, &offsets, &live_degree);

        // Shards: rebuild the touched ones, rebase the rest onto their
        // (possibly shifted) new ranges with their indexes reused.
        let mut shards = Vec::with_capacity(k);
        for p in 0..k {
            let range = ranges[p].clone();
            if affected[p] {
                shards.push(build_shard(
                    p as u32,
                    range,
                    &order,
                    &labels,
                    &partition,
                    &offsets,
                    &targets,
                    &live_degree,
                    &dead,
                    &position_of,
                ));
            } else {
                let old = &self.shards[p];
                debug_assert_eq!(range.len(), old.range.len());
                shards.push(Shard {
                    id: old.id,
                    range,
                    label_index: old.label_index.clone(),
                    boundary: old.boundary.clone(),
                    halo: old.halo.clone(),
                });
            }
        }

        let affected_shards: Vec<PartitionId> = affected
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(p, _)| PartitionId::new(p as u32))
            .collect();
        MigratedStore {
            moved: dest.len(),
            affected_shards,
            store: Self {
                order,
                position_of,
                offsets,
                targets,
                targets_sorted,
                partition,
                labels,
                by_label: self.by_label.clone(),
                live_degree,
                dead,
                dead_vertices,
                dead_slots,
                shards,
                edge_count: self.edge_count,
                epoch: 0,
            },
        }
    }

    /// The live adjacency range of a position (the physical slice minus its
    /// tombstoned tail).
    fn live_range(&self, pos: usize) -> Range<usize> {
        let start = self.offsets[pos];
        start..start + self.live_degree[pos] as usize
    }

    /// Tombstone the directed occurrence of `to` in `from_pos`'s adjacency:
    /// shift it out of the live prefix of both the traversal-ordered and the
    /// sorted arena (preserving the relative order of the survivors, which is
    /// what keeps match-limited metrics identical to a from-scratch build of
    /// the mutated graph) and grow the owning shard's dead-slot count.
    fn tombstone_arc(&mut self, from_pos: usize, to: VertexId) -> bool {
        let live = self.live_range(from_pos);
        let Some(occ) = self.targets[live.clone()].iter().position(|&u| u == to) else {
            return false;
        };
        self.targets[live.start + occ..live.end].rotate_left(1);
        if let Ok(sorted_occ) = self.targets_sorted[live.clone()].binary_search(&to) {
            self.targets_sorted[live.start + sorted_occ..live.end].rotate_left(1);
        }
        self.live_degree[from_pos] -= 1;
        let p = self.partition[from_pos];
        if p != UNASSIGNED {
            self.dead_slots[p as usize] += 1;
        }
        true
    }

    /// Remove `v` from a sorted id list, if present.
    fn remove_sorted(list: &mut Vec<VertexId>, v: VertexId) {
        if let Ok(pos) = list.binary_search(&v) {
            list.remove(pos);
        }
    }

    /// Drop `v` from the global and home-shard label indexes under `label`.
    fn unindex_label(&mut self, v: VertexId, label: Label, shard: u32) {
        if let Some(members) = self.by_label.get_mut(&label) {
            Self::remove_sorted(members, v);
            if members.is_empty() {
                self.by_label.remove(&label);
            }
        }
        if shard != UNASSIGNED {
            if let Some(members) = self.shards[shard as usize].label_index.get_mut(&label) {
                Self::remove_sorted(members, v);
                if members.is_empty() {
                    self.shards[shard as usize].label_index.remove(&label);
                }
            }
        }
    }

    /// Tombstone a vertex: drop all incident live edges, mark the vertex
    /// dead and remove it from every label index. Queries skip it without a
    /// rebuild; [`ShardedStore::compact`] removes it physically.
    fn tombstone_vertex(&mut self, v: VertexId) -> bool {
        let Some(&pos) = self.position_of.get(&v) else {
            return false;
        };
        let pos = pos as usize;
        if self.dead[pos] {
            return false;
        }
        let neighbours: Vec<VertexId> = self.targets[self.live_range(pos)].to_vec();
        for &u in &neighbours {
            let u_pos = self.position_of[&u] as usize;
            self.tombstone_arc(u_pos, v);
        }
        self.edge_count -= neighbours.len();
        let p = self.partition[pos];
        if p != UNASSIGNED {
            self.dead_slots[p as usize] += self.live_degree[pos] as usize;
            self.dead_vertices[p as usize] += 1;
        }
        self.live_degree[pos] = 0;
        self.dead[pos] = true;
        self.unindex_label(v, self.labels[pos], p);
        true
    }

    /// Tombstone one undirected edge in both adjacency directions.
    fn tombstone_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        let (Some(&pa), Some(&pb)) = (self.position_of.get(&a), self.position_of.get(&b)) else {
            return false;
        };
        let (pa, pb) = (pa as usize, pb as usize);
        if self.dead[pa] || self.dead[pb] {
            return false;
        }
        if !self.tombstone_arc(pa, b) {
            return false;
        }
        self.tombstone_arc(pb, a);
        self.edge_count -= 1;
        true
    }

    /// Re-label a live vertex in place, keeping both label indexes sorted.
    fn relabel_in_place(&mut self, v: VertexId, label: Label) -> bool {
        let Some(&pos) = self.position_of.get(&v) else {
            return false;
        };
        let pos = pos as usize;
        if self.dead[pos] {
            return false;
        }
        let old = self.labels[pos];
        if old == label {
            return true;
        }
        let p = self.partition[pos];
        self.unindex_label(v, old, p);
        self.labels[pos] = label;
        let members = self.by_label.entry(label).or_default();
        if let Err(at) = members.binary_search(&v) {
            members.insert(at, v);
        }
        if p != UNASSIGNED {
            let members = self.shards[p as usize]
                .label_index
                .entry(label)
                .or_default();
            if let Err(at) = members.binary_search(&v) {
                members.insert(at, v);
            }
        }
        true
    }

    /// Apply the delete/relabel slice of a mutation batch to a *clone* of
    /// this snapshot, marking tombstones queries skip without any rebuild.
    ///
    /// Additions are ignored: growing the arena needs a rebuild, so callers
    /// republish additions from the authoritative graph and use this fast
    /// path for the destructive elements only. Mutations naming unknown or
    /// already-dead vertices are ignored (deletes are idempotent). The
    /// result carries epoch 0 — publish it through an
    /// [`crate::epoch::EpochStore`] to stamp it, exactly like a migration.
    pub fn apply_mutations(&self, mutations: &[loom_graph::StreamElement]) -> MutatedStore {
        let mut store = self.clone();
        store.epoch = 0;
        let (mut removed_vertices, mut removed_edges, mut relabelled) = (0usize, 0usize, 0usize);
        for element in mutations {
            match *element {
                loom_graph::StreamElement::RemoveVertex { id } => {
                    if store.tombstone_vertex(id) {
                        removed_vertices += 1;
                    }
                }
                loom_graph::StreamElement::RemoveEdge { source, target } => {
                    if store.tombstone_edge(source, target) {
                        removed_edges += 1;
                    }
                }
                loom_graph::StreamElement::Relabel { id, label } => {
                    if store.relabel_in_place(id, label) {
                        relabelled += 1;
                    }
                }
                loom_graph::StreamElement::AddVertex { .. }
                | loom_graph::StreamElement::AddEdge { .. } => {}
            }
        }
        MutatedStore {
            store,
            removed_vertices,
            removed_edges,
            relabelled,
        }
    }

    /// The fraction of a shard's physical slots (home vertices + adjacency
    /// entries) occupied by tombstones. 0.0 for unknown or empty shards.
    pub fn tombstone_fraction(&self, p: PartitionId) -> f64 {
        let Some(shard) = self.shards.get(p.index()) else {
            return 0.0;
        };
        let slots = self.offsets[shard.range.end] - self.offsets[shard.range.start];
        let total = shard.range.len() + slots;
        if total == 0 {
            return 0.0;
        }
        (self.dead_vertices[p.index()] + self.dead_slots[p.index()]) as f64 / total as f64
    }

    /// Total tombstoned vertices across the snapshot.
    pub fn tombstoned_vertices(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    /// Epoch compaction: physically rewrite every shard whose
    /// [`ShardedStore::tombstone_fraction`] reaches `threshold` (and holds at
    /// least one tombstone), dropping dead vertices and reclaiming dead
    /// adjacency slots. Shards below the threshold keep their slices —
    /// including their tombstones — verbatim and only get rebased onto
    /// shifted ranges; dead vertices in the unassigned tail are always
    /// purged. `compact(0.0)` therefore rewrites exactly the shards with any
    /// tombstone at all.
    ///
    /// The result is semantically identical to a from-scratch build of the
    /// mutated graph for the rewritten shards and carries epoch 0 — publish
    /// it through an [`crate::epoch::EpochStore`] exactly like a migration.
    pub fn compact(&self, threshold: f64) -> CompactedStore {
        let k = self.shards.len();
        let crossing: Vec<bool> = (0..k)
            .map(|p| {
                (self.dead_vertices[p] + self.dead_slots[p]) > 0
                    && self.tombstone_fraction(PartitionId::new(p as u32)) >= threshold
            })
            .collect();
        let assigned_end = self.shards.last().map(|s| s.range.end).unwrap_or(0);
        let tail_dead = self.dead[assigned_end..].iter().any(|&d| d);
        if !tail_dead && crossing.iter().all(|&c| !c) {
            return CompactedStore {
                store: self.clone(),
                compacted_shards: Vec::new(),
                purged_vertices: 0,
                purged_slots: 0,
            };
        }

        // New partition-major order: crossing shards and the unassigned tail
        // drop their dead vertices; everything else keeps its slice verbatim.
        let n = self.order.len();
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(k);
        for (p, &cross) in crossing.iter().enumerate() {
            let start = order.len();
            let old = self.shards[p].range.clone();
            if cross {
                order.extend(
                    old.filter(|&pos| !self.dead[pos])
                        .map(|pos| self.order[pos]),
                );
            } else {
                order.extend_from_slice(&self.order[old]);
            }
            ranges.push(start..order.len());
        }
        order.extend(
            (assigned_end..n)
                .filter(|&pos| !self.dead[pos])
                .map(|pos| self.order[pos]),
        );

        // Rebuild the positional arrays: vertices of rewritten shards (and
        // the tail) keep only their live adjacency prefix; vertices of
        // rebased shards keep their physical slice, tombstoned tail included.
        let mut position_of: FxHashMap<VertexId, u32> = FxHashMap::default();
        position_of.reserve(order.len());
        let mut offsets = Vec::with_capacity(order.len() + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        let mut targets_sorted = Vec::with_capacity(self.targets_sorted.len());
        let mut labels = Vec::with_capacity(order.len());
        let mut live_degree = Vec::with_capacity(order.len());
        let mut dead = Vec::with_capacity(order.len());
        offsets.push(0);
        for (i, &v) in order.iter().enumerate() {
            let old_pos = self.position_of[&v] as usize;
            position_of.insert(v, i as u32);
            let p = self.partition[old_pos];
            let rewritten = p == UNASSIGNED || crossing[p as usize];
            let slice = if rewritten {
                self.live_range(old_pos)
            } else {
                self.offsets[old_pos]..self.offsets[old_pos + 1]
            };
            targets.extend_from_slice(&self.targets[slice.clone()]);
            targets_sorted.extend_from_slice(&self.targets_sorted[slice]);
            offsets.push(targets.len());
            labels.push(self.labels[old_pos]);
            live_degree.push(self.live_degree[old_pos]);
            dead.push(self.dead[old_pos] && !rewritten);
        }
        let mut partition = vec![UNASSIGNED; order.len()];
        for (p, range) in ranges.iter().enumerate() {
            partition[range.clone()].fill(p as u32);
        }
        let (dead_vertices, dead_slots) =
            dead_counters(k, &partition, &dead, &offsets, &live_degree);

        let mut shards = Vec::with_capacity(k);
        for (p, &cross) in crossing.iter().enumerate() {
            let range = ranges[p].clone();
            if cross {
                shards.push(build_shard(
                    p as u32,
                    range,
                    &order,
                    &labels,
                    &partition,
                    &offsets,
                    &targets,
                    &live_degree,
                    &dead,
                    &position_of,
                ));
            } else {
                let old = &self.shards[p];
                debug_assert_eq!(range.len(), old.range.len());
                shards.push(Shard {
                    id: old.id,
                    range,
                    label_index: old.label_index.clone(),
                    boundary: old.boundary.clone(),
                    halo: old.halo.clone(),
                });
            }
        }

        let compacted_shards: Vec<PartitionId> = crossing
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(p, _)| PartitionId::new(p as u32))
            .collect();
        let purged_vertices = n - order.len();
        let purged_slots = self.targets.len() - targets.len();
        CompactedStore {
            compacted_shards,
            purged_vertices,
            purged_slots,
            store: Self {
                order,
                position_of,
                offsets,
                targets,
                targets_sorted,
                partition,
                labels,
                by_label: self.by_label.clone(),
                live_degree,
                dead,
                dead_vertices,
                dead_slots,
                shards,
                edge_count: self.edge_count,
                epoch: 0,
            },
        }
    }

    /// Tag the snapshot with an epoch number (used by the ingest-while-serve
    /// epoch store).
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The epoch this snapshot was published under (0 for ad-hoc builds).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards (partitions).
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shards, indexed by partition id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by partition id.
    pub fn shard(&self, p: PartitionId) -> Option<&Shard> {
        self.shards.get(p.index())
    }

    /// Number of vertices in the snapshot.
    pub fn vertex_count(&self) -> usize {
        self.order.len()
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The vertex ids hosted by a shard, in id order (the shard's CSR slice).
    pub fn home_vertices(&self, p: PartitionId) -> &[VertexId] {
        self.shards
            .get(p.index())
            .map(|s| &self.order[s.range.clone()])
            .unwrap_or(&[])
    }

    /// The shard hosting a vertex, if the vertex is assigned and live.
    pub fn home_shard(&self, v: VertexId) -> Option<PartitionId> {
        let pos = *self.position_of.get(&v)?;
        if self.dead[pos as usize] {
            return None;
        }
        match self.partition[pos as usize] {
            UNASSIGNED => None,
            p => Some(PartitionId::new(p)),
        }
    }

    /// Mean copies of each vertex across shards (home + halo replicas); 1.0
    /// means no replication at all.
    pub fn replication_factor(&self) -> f64 {
        if self.order.is_empty() {
            return 1.0;
        }
        let stored: usize = self.shards.iter().map(|s| s.len() + s.halo.len()).sum();
        // Unassigned vertices are stored nowhere; count them once so the
        // factor stays an "average copies per vertex" over all vertices.
        let unassigned = self.partition.iter().filter(|&&p| p == UNASSIGNED).count();
        (stored + unassigned) as f64 / self.order.len() as f64
    }

    /// Borrowed view of shard `p`'s contiguous slice of the CSR arena
    /// (home vertices, labels and adjacency in arena order), for checkpoint
    /// blob extraction. `None` for an out-of-range partition.
    pub fn shard_slice(&self, p: PartitionId) -> Option<ArenaSlice<'_>> {
        self.shards.get(p.index()).map(|s| ArenaSlice {
            store: self,
            range: s.range.clone(),
        })
    }

    /// Borrowed view of the unassigned tail of the arena: vertices the
    /// partitioner had not placed when the snapshot was frozen (e.g. still
    /// buffered in a streaming window). Empty when everything is assigned.
    pub fn unassigned_slice(&self) -> ArenaSlice<'_> {
        let start = self.shards.last().map(|s| s.range.end).unwrap_or(0);
        ArenaSlice {
            store: self,
            range: start..self.order.len(),
        }
    }

    fn position(&self, v: VertexId) -> Option<usize> {
        self.position_of.get(&v).map(|&p| p as usize)
    }
}

/// A borrowed, contiguous slice of a [`ShardedStore`]'s partition-major CSR
/// arena: either one shard's home vertices ([`ShardedStore::shard_slice`])
/// or the unassigned tail ([`ShardedStore::unassigned_slice`]). The
/// durability layer serializes exactly these views into checkpoint blobs.
#[derive(Debug, Clone)]
pub struct ArenaSlice<'a> {
    store: &'a ShardedStore,
    range: Range<usize>,
}

impl<'a> ArenaSlice<'a> {
    /// Number of vertices in the slice.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the slice holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The slice's vertex ids, in arena order (ascending id within a shard).
    pub fn vertices(&self) -> &'a [VertexId] {
        &self.store.order[self.range.clone()]
    }

    /// The slice's vertex labels, parallel to [`ArenaSlice::vertices`].
    pub fn labels(&self) -> &'a [Label] {
        &self.store.labels[self.range.clone()]
    }

    /// Live adjacency of the `i`-th vertex of the slice, in the data graph's
    /// stable iteration order (the order the arena stores and traversals
    /// follow). Tombstoned slots are excluded, so checkpoint blobs never
    /// carry dead edges.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn neighbors(&self, i: usize) -> &'a [VertexId] {
        assert!(i < self.range.len(), "slice index out of range");
        &self.store.targets[self.store.live_range(self.range.start + i)]
    }
}

/// The result of an incremental migration rebuild
/// ([`ShardedStore::apply_migration`]).
#[derive(Debug, Clone)]
pub struct MigratedStore {
    /// The rebuilt snapshot (epoch 0 — stamped on publication).
    pub store: ShardedStore,
    /// Shards whose indexes had to be rebuilt: the sources and targets of
    /// the applied moves, in id order. Every other shard was reused.
    pub affected_shards: Vec<PartitionId>,
    /// Vertices whose home shard actually changed.
    pub moved: usize,
}

/// The result of a tombstoning pass ([`ShardedStore::apply_mutations`]).
#[derive(Debug, Clone)]
pub struct MutatedStore {
    /// The marked snapshot (epoch 0 — stamped on publication).
    pub store: ShardedStore,
    /// Vertices newly tombstoned by the batch.
    pub removed_vertices: usize,
    /// Edges newly tombstoned by the batch.
    pub removed_edges: usize,
    /// Vertices whose label changed.
    pub relabelled: usize,
}

/// The result of an epoch-compaction pass ([`ShardedStore::compact`]).
#[derive(Debug, Clone)]
pub struct CompactedStore {
    /// The compacted snapshot (epoch 0 — stamped on publication).
    pub store: ShardedStore,
    /// Shards physically rewritten, in id order; every other shard was
    /// rebased without a rebuild.
    pub compacted_shards: Vec<PartitionId>,
    /// Tombstoned vertices physically removed.
    pub purged_vertices: usize,
    /// Tombstoned adjacency slots physically reclaimed.
    pub purged_slots: usize,
}

/// Publish every shard's tombstone fraction to the `store.tombstone_fraction`
/// gauge family (one series per shard, labelled `shard=<index>`). Gauges are
/// integer levels, so the fraction is reported in basis points (0..=10_000).
pub fn record_tombstone_gauges(store: &ShardedStore, telemetry: &loom_obs::Telemetry) {
    for shard in store.shards() {
        let basis_points = (store.tombstone_fraction(shard.id()) * 10_000.0).round() as i64;
        telemetry
            .registry()
            .gauge(
                "store.tombstone_fraction",
                &[("shard", shard.id().index().to_string())],
            )
            .set(basis_points);
    }
}

impl PatternStore for ShardedStore {
    fn label(&self, v: VertexId) -> Option<Label> {
        self.position(v)
            .filter(|&p| !self.dead[p])
            .map(|p| self.labels[p])
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self.position(v) {
            Some(p) => &self.targets[self.live_range(p)],
            None => &[],
        }
    }

    fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        let Some(p) = self.position(a) else {
            return false;
        };
        self.targets_sorted[self.live_range(p)]
            .binary_search(&b)
            .is_ok()
    }

    fn is_remote_traversal(&self, from: VertexId, to: VertexId) -> bool {
        match (self.position(from), self.position(to)) {
            (Some(a), Some(b)) if !self.dead[a] && !self.dead[b] => {
                let (pa, pb) = (self.partition[a], self.partition[b]);
                pa == UNASSIGNED || pb == UNASSIGNED || pa != pb
            }
            _ => true,
        }
    }

    fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.by_label.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;

    fn fixture() -> (LabelledGraph, Partitioning) {
        // 0 - 1 - 2 - 3 with partitions {0,1} {2}; 3 unassigned.
        let g = path_graph(4, &[Label::new(0), Label::new(1)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        (g, part)
    }

    #[test]
    fn partition_major_layout_and_slices() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.vertex_count(), 4);
        assert_eq!(store.edge_count(), 3);
        assert_eq!(store.home_vertices(PartitionId::new(0)), &[vs[0], vs[1]]);
        assert_eq!(store.home_vertices(PartitionId::new(1)), &[vs[2]]);
        assert_eq!(store.home_shard(vs[1]), Some(PartitionId::new(0)));
        assert_eq!(store.home_shard(vs[3]), None);
    }

    #[test]
    fn boundary_and_halo_indexes() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let s0 = store.shard(PartitionId::new(0)).unwrap();
        // Vertex 1 borders partition 1's vertex 2.
        assert_eq!(s0.boundary(), &[vs[1]]);
        assert_eq!(s0.halo(), &[vs[2]]);
        let s1 = store.shard(PartitionId::new(1)).unwrap();
        // Vertex 2 borders both vertex 1 (shard 0) and unassigned vertex 3.
        assert_eq!(s1.boundary(), &[vs[2]]);
        assert_eq!(s1.halo(), &[vs[1], vs[3]]);
        assert!(store.replication_factor() > 1.0);
    }

    #[test]
    fn pattern_store_semantics_match_the_sequential_store() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let sharded = ShardedStore::from_parts(&g, &part);
        let sequential = PartitionedStore::new(g.clone(), part.clone());
        for &v in &vs {
            assert_eq!(
                PatternStore::label(&sharded, v),
                PatternStore::label(&sequential, v)
            );
            assert_eq!(
                PatternStore::neighbors(&sharded, v),
                PatternStore::neighbors(&sequential, v)
            );
            for &u in &vs {
                assert_eq!(
                    PatternStore::contains_edge(&sharded, v, u),
                    PatternStore::contains_edge(&sequential, v, u)
                );
                assert_eq!(
                    PatternStore::is_remote_traversal(&sharded, v, u),
                    PatternStore::is_remote_traversal(&sequential, v, u)
                );
            }
        }
        for l in [Label::new(0), Label::new(1), Label::new(9)] {
            assert_eq!(
                PatternStore::vertices_with_label(&sharded, l),
                PatternStore::vertices_with_label(&sequential, l)
            );
        }
    }

    #[test]
    fn per_shard_label_index_covers_home_vertices_only() {
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let s0 = store.shard(PartitionId::new(0)).unwrap();
        assert_eq!(s0.vertices_with_label(Label::new(0)), &[vs[0]]);
        assert_eq!(s0.vertices_with_label(Label::new(1)), &[vs[1]]);
        assert!(s0.vertices_with_label(Label::new(9)).is_empty());
        assert_eq!(s0.len(), 2);
        assert!(!s0.is_empty());
        assert_eq!(s0.id(), PartitionId::new(0));
    }

    #[test]
    fn epoch_tagging() {
        let (g, part) = fixture();
        let store = ShardedStore::from_parts(&g, &part).with_epoch(7);
        assert_eq!(store.epoch(), 7);
    }

    /// A 9-vertex path over 3 partitions of 3 vertices each.
    fn migration_fixture() -> (LabelledGraph, Partitioning) {
        let g = path_graph(9, &[Label::new(0), Label::new(1), Label::new(2)]);
        let mut part = Partitioning::new(3, 9).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 3) as u32)).unwrap();
        }
        (g, part)
    }

    /// Assert two stores are semantically identical: same layout, same
    /// shard indexes, same `PatternStore` answers.
    fn assert_stores_equal(a: &ShardedStore, b: &ShardedStore, vs: &[VertexId]) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.shard_count(), b.shard_count());
        for p in 0..a.shard_count() {
            let p = PartitionId::new(p);
            assert_eq!(a.home_vertices(p), b.home_vertices(p), "{p} homes");
            let (sa, sb) = (a.shard(p).unwrap(), b.shard(p).unwrap());
            assert_eq!(sa.boundary(), sb.boundary(), "{p} boundary");
            assert_eq!(sa.halo(), sb.halo(), "{p} halo");
            for l in [Label::new(0), Label::new(1), Label::new(2)] {
                assert_eq!(
                    sa.vertices_with_label(l),
                    sb.vertices_with_label(l),
                    "{p} label index"
                );
            }
        }
        for &v in vs {
            assert_eq!(PatternStore::label(a, v), PatternStore::label(b, v));
            assert_eq!(PatternStore::neighbors(a, v), PatternStore::neighbors(b, v));
            assert_eq!(a.home_shard(v), b.home_shard(v));
            for &u in vs {
                assert_eq!(
                    PatternStore::contains_edge(a, v, u),
                    PatternStore::contains_edge(b, v, u)
                );
                assert_eq!(
                    PatternStore::is_remote_traversal(a, v, u),
                    PatternStore::is_remote_traversal(b, v, u)
                );
            }
        }
    }

    #[test]
    fn migration_matches_a_from_scratch_rebuild() {
        let (g, mut part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        // Move vertex 3 (shard 1) home to shard 0 and vertex 5 to shard 2.
        let moves = vec![(vs[3], PartitionId::new(0)), (vs[5], PartitionId::new(2))];
        let migrated = store.apply_migration(&moves);
        assert_eq!(migrated.moved, 2);
        assert_eq!(
            migrated.affected_shards,
            vec![
                PartitionId::new(0),
                PartitionId::new(1),
                PartitionId::new(2)
            ]
        );
        for (v, to) in moves {
            part.move_vertex(v, to).unwrap();
        }
        let rebuilt = ShardedStore::from_parts(&g, &part);
        assert_stores_equal(&migrated.store, &rebuilt, &vs);
    }

    #[test]
    fn untouched_shards_are_reused_not_rebuilt() {
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        // One move between shards 0 and 1: shard 2 must not be affected.
        let migrated = store.apply_migration(&[(vs[3], PartitionId::new(0))]);
        assert_eq!(
            migrated.affected_shards,
            vec![PartitionId::new(0), PartitionId::new(1)]
        );
        let (old, new) = (
            store.shard(PartitionId::new(2)).unwrap(),
            migrated.store.shard(PartitionId::new(2)).unwrap(),
        );
        assert_eq!(old.boundary(), new.boundary());
        assert_eq!(old.halo(), new.halo());
        // And the reused shard is still *correct* against a full rebuild.
        let mut moved = part.clone();
        moved.move_vertex(vs[3], PartitionId::new(0)).unwrap();
        assert_stores_equal(&migrated.store, &ShardedStore::from_parts(&g, &moved), &vs);
    }

    #[test]
    fn degenerate_moves_are_ignored() {
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let migrated = store.apply_migration(&[
            (vs[0], PartitionId::new(0)),                 // already there
            (vs[1], PartitionId::new(9)),                 // unknown partition
            (VertexId::new(10_000), PartitionId::new(1)), // unknown vertex
        ]);
        assert_eq!(migrated.moved, 0);
        assert!(migrated.affected_shards.is_empty());
        assert_stores_equal(&migrated.store, &store, &vs);
    }

    #[test]
    fn last_move_wins_for_a_repeated_vertex() {
        let (g, mut part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let migrated =
            store.apply_migration(&[(vs[4], PartitionId::new(0)), (vs[4], PartitionId::new(2))]);
        assert_eq!(migrated.moved, 1);
        part.move_vertex(vs[4], PartitionId::new(2)).unwrap();
        assert_stores_equal(&migrated.store, &ShardedStore::from_parts(&g, &part), &vs);
    }

    #[test]
    fn tombstones_hide_vertices_and_edges_without_a_rebuild() {
        use loom_graph::StreamElement;
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let mutated = store
            .apply_mutations(&[
                StreamElement::RemoveEdge {
                    source: vs[1],
                    target: vs[2],
                },
                StreamElement::RemoveVertex { id: vs[4] },
                StreamElement::Relabel {
                    id: vs[0],
                    label: Label::new(2),
                },
                // Unknown / repeated mutations are ignored.
                StreamElement::RemoveVertex { id: vs[4] },
                StreamElement::RemoveVertex {
                    id: VertexId::new(10_000),
                },
            ])
            .store;

        // Apply the same mutations to the graph and compare PatternStore
        // answers against a from-scratch build.
        let mut mutated_graph = g.clone();
        mutated_graph.remove_edge(vs[1], vs[2]);
        mutated_graph.remove_vertex(vs[4]);
        mutated_graph.set_label(vs[0], Label::new(2)).unwrap();
        let mut live_part = part.clone();
        live_part.unassign(vs[4]);
        let rebuilt = ShardedStore::from_parts(&mutated_graph, &live_part);

        for &v in &vs {
            assert_eq!(
                PatternStore::label(&mutated, v),
                PatternStore::label(&rebuilt, v),
                "label({v})"
            );
            assert_eq!(
                PatternStore::neighbors(&mutated, v),
                PatternStore::neighbors(&rebuilt, v),
                "neighbors({v})"
            );
            for &u in &vs {
                assert_eq!(
                    PatternStore::contains_edge(&mutated, v, u),
                    PatternStore::contains_edge(&rebuilt, v, u),
                    "contains_edge({v},{u})"
                );
            }
        }
        for l in [Label::new(0), Label::new(1), Label::new(2)] {
            assert_eq!(
                PatternStore::vertices_with_label(&mutated, l),
                PatternStore::vertices_with_label(&rebuilt, l),
                "by_label({l:?})"
            );
        }
        assert_eq!(mutated.edge_count(), mutated_graph.edge_count());
        assert_eq!(mutated.home_shard(vs[4]), None);
        assert_eq!(mutated.tombstoned_vertices(), 1);
        // Vertex 4 lives on shard 1: its tombstone fraction is positive,
        // shard 0 lost adjacency slots to the edge removal and vertex death.
        assert!(mutated.tombstone_fraction(PartitionId::new(1)) > 0.0);
        assert_eq!(mutated.tombstone_fraction(PartitionId::new(9)), 0.0);
    }

    #[test]
    fn compaction_purges_tombstones_and_matches_a_fresh_build() {
        use loom_graph::StreamElement;
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let mutated = store
            .apply_mutations(&[
                StreamElement::RemoveVertex { id: vs[4] },
                StreamElement::RemoveEdge {
                    source: vs[7],
                    target: vs[8],
                },
            ])
            .store;

        // Threshold 0.0: every shard holding any tombstone is rewritten.
        let compacted = mutated.compact(0.0);
        assert_eq!(compacted.purged_vertices, 1);
        assert!(
            compacted.purged_slots >= 2,
            "both edge directions reclaimed"
        );
        assert!(!compacted.compacted_shards.is_empty());
        let store = &compacted.store;
        assert_eq!(store.tombstoned_vertices(), 0);
        for p in 0..store.shard_count() {
            assert_eq!(store.tombstone_fraction(PartitionId::new(p)), 0.0);
        }

        let mut mutated_graph = g.clone();
        mutated_graph.remove_vertex(vs[4]);
        mutated_graph.remove_edge(vs[7], vs[8]);
        let mut live_part = part.clone();
        live_part.unassign(vs[4]);
        let rebuilt = ShardedStore::from_parts(&mutated_graph, &live_part);
        let live: Vec<VertexId> = vs.iter().copied().filter(|&v| v != vs[4]).collect();
        assert_stores_equal(store, &rebuilt, &live);
        // A second compaction has nothing to do and rewrites nothing.
        assert!(store.compact(0.0).compacted_shards.is_empty());
    }

    #[test]
    fn compaction_threshold_spares_lightly_tombstoned_shards() {
        use loom_graph::StreamElement;
        let (g, part) = migration_fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        // Kill both interior vertices of shard 1 (heavy churn there) but only
        // one edge touching shard 2 (light churn).
        let mutated = store
            .apply_mutations(&[
                StreamElement::RemoveVertex { id: vs[3] },
                StreamElement::RemoveVertex { id: vs[4] },
                StreamElement::RemoveEdge {
                    source: vs[7],
                    target: vs[8],
                },
            ])
            .store;
        let heavy = mutated.tombstone_fraction(PartitionId::new(1));
        let light = mutated.tombstone_fraction(PartitionId::new(2));
        assert!(heavy > light && light > 0.0);

        // A threshold between the two fractions rewrites only shard 1.
        let threshold = (heavy + light) / 2.0;
        let compacted = mutated.compact(threshold);
        assert_eq!(compacted.compacted_shards, vec![PartitionId::new(1)]);
        let store = &compacted.store;
        assert_eq!(store.tombstone_fraction(PartitionId::new(1)), 0.0);
        // The spared shard keeps its tombstoned slots (still hidden from
        // queries) until its own fraction crosses the threshold.
        assert!(store.tombstone_fraction(PartitionId::new(2)) > 0.0);
        assert!(!PatternStore::contains_edge(store, vs[7], vs[8]));
    }

    #[test]
    fn migration_tolerates_unassigned_vertices() {
        // Reuse the 4-vertex fixture where vertex 3 is unassigned: it cannot
        // be moved, and it survives the rebuild in the unassigned tail.
        let (g, part) = fixture();
        let vs = g.vertices_sorted();
        let store = ShardedStore::from_parts(&g, &part);
        let migrated = store.apply_migration(&[
            (vs[3], PartitionId::new(0)), // unassigned: ignored
            (vs[2], PartitionId::new(0)), // real move
        ]);
        assert_eq!(migrated.moved, 1);
        let mut moved = part.clone();
        moved.move_vertex(vs[2], PartitionId::new(0)).unwrap();
        let rebuilt = ShardedStore::from_parts(&g, &moved);
        assert_eq!(migrated.store.home_shard(vs[3]), None);
        assert_eq!(
            migrated.store.replication_factor(),
            rebuilt.replication_factor()
        );
    }
}
