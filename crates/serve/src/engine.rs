//! The concurrent serving engine: a message-passing coordinator over
//! independent shard workers.
//!
//! [`ServeEngine::serve_batch`] executes a sampled query load against a
//! pinned [`ShardedStore`] snapshot; [`ServeEngine::serve_epochs`] does the
//! same against an [`EpochStore`], with workers re-pinning on epoch
//! publication notices so ingestion can keep publishing new snapshots
//! mid-run; and [`ServeEngine::run_request`] /
//! [`ServeEngine::run_request_ctx`] are the unified [`QueryRequest`] entry
//! points behind the `QueryEngine` implementations. All paths share the
//! same machinery:
//!
//! * every workload query's compiled [`QueryPlan`] is resolved **once per
//!   run** from the shared [`PlanCache`] (or compiled as a legacy plan when
//!   no cache is wired in) — the router and every worker execute the same
//!   instance, with zero per-call ordering derivation;
//! * the coordinator (this thread) routes each query to its home shard
//!   ([`QueryRouter::home_shard_planned`]) and **sends it as a message**
//!   over that worker's [`ShardTransport`] endpoint — admission applies
//!   deadline-aware backpressure: a full worker inbox blocks the send until
//!   the request's deadline and then rejects it (counted per shard) instead
//!   of wedging forever;
//! * one worker per shard (a `std::thread::scope` thread running the
//!   private worker event loop) pins its snapshot at spawn, executes each
//!   routed query with the shared instrumented matcher under the request's
//!   [`RequestContext`] — the exact code path of the sequential executor, so
//!   aggregate metrics stay bit-identical to a sequential run for unbounded
//!   requests — and streams `Done` results back;
//! * the coordinator owns **only transport endpoints**: results, per-shard
//!   reports, epoch notices and halo sub-query handoffs all arrive as
//!   messages on its inbox, never through shared memory;
//! * per-query modelled latencies feed the [`ServeReport`] (per-shard QPS,
//!   p50/p99, remote-hop fraction, queue depth, queue-wait p99, rejects).

use crate::epoch::EpochStore;
use crate::metrics::{sort_samples, sorted_quantile, ErrorBudget, ServeReport, ShardServeMetrics};
use crate::router::QueryRouter;
use crate::shard::ShardedStore;
use crate::transport::{
    InProcEndpoint, InProcTransport, QueryDoneMsg, QueryTaskMsg, RecvError, ShardMsg,
    ShardReportMsg, ShardTransport, SubQueryMsg, TransportError,
};
use crate::worker::{worker_loop, WorkerSetup};
use loom_motif::workload::Workload;
use loom_obs::{stage, Counter, FlightKind, Histogram, Telemetry};
use loom_sim::context::{CancelToken, RequestContext};
use loom_sim::engine::{request_schedule, resolve_schedule_plans, QueryRequest, QueryResponse};
use loom_sim::executor::{ExecutionMetrics, LatencyModel, QueryMode};
use loom_sim::matcher::Embedding;
use loom_sim::plan::{PlanCache, QueryPlan};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long one blocked admission push waits before the coordinator drains
/// its inbox and retries (keeps result consumption going while a worker's
/// queue is full, which is what makes the protocol deadlock-free).
const ADMIT_SLICE: Duration = Duration::from_millis(1);

/// Receive slice while awaiting completions (bounds the latency of relay
/// flushes and cancellation broadcasts).
const PUMP_SLICE: Duration = Duration::from_millis(10);

/// Give up waiting for worker progress after this long with no message —
/// converts a crashed worker into a loud join panic instead of a hang.
const STALL_LIMIT: Duration = Duration::from_secs(30);

/// Configuration for a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker shards. Partitions map onto workers round-robin, so any worker
    /// count from 1 to the partition count makes sense (more workers than
    /// partitions leaves the excess idle).
    pub workers: usize,
    /// Bound on each worker's transport inbox; a full inbox blocks admission
    /// (backpressure) until the request's deadline instead of growing an
    /// unbounded backlog.
    pub queue_capacity: usize,
    /// How many queries the router samples and routes per admission batch.
    pub batch_size: usize,
    /// Query execution mode (rooted is the online mode the paper targets).
    pub mode: QueryMode,
    /// Cap on embeddings enumerated per query execution.
    pub match_limit: usize,
    /// Latency cost model charged per traversal.
    pub latency: LatencyModel,
    /// When true (and serving a pinned snapshot), workers hand halo-crossing
    /// anchor roots off to the worker owning them as sub-query messages
    /// instead of traversing replicated halo state themselves. Off by
    /// default: the handoff executes each borrowed root as its own matcher
    /// run, so per-query metrics under tight match limits can differ from
    /// the single-execution path.
    pub halo_handoff: bool,
    /// Service-time emulation for capacity runs: when set, each worker
    /// sleeps `estimated_latency_us × scale` wall-clock microseconds after
    /// executing a query, converting the modelled latency into real shard
    /// occupancy so an open-loop driver measures a genuine saturation knee.
    /// Sleeping (not spinning) lets shards overlap even on a single core.
    /// `None` (the default) leaves the serving path bit-identical to an
    /// engine without the knob.
    pub service_hold: Option<f64>,
}

impl ServeConfig {
    /// A config with `workers` worker shards and serving-oriented defaults
    /// (rooted queries anchored at 4 seeds, queue capacity 64, batch 32).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            queue_capacity: 64,
            batch_size: 32,
            mode: QueryMode::Rooted { seed_count: 4 },
            match_limit: 10_000,
            latency: LatencyModel::default(),
            halo_handoff: false,
            service_hold: None,
        }
    }

    /// Builder-style query execution mode.
    #[must_use]
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style per-query match limit.
    #[must_use]
    pub fn with_match_limit(mut self, limit: usize) -> Self {
        self.match_limit = limit.max(1);
        self
    }

    /// Builder-style latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style queue capacity (minimum 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style router admission batch size (minimum 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Builder-style halo sub-query handoff (see
    /// [`ServeConfig::halo_handoff`]).
    #[must_use]
    pub fn with_halo_handoff(mut self, enabled: bool) -> Self {
        self.halo_handoff = enabled;
        self
    }

    /// Builder-style service-time emulation (see
    /// [`ServeConfig::service_hold`]); negative scales clamp to zero.
    #[must_use]
    pub fn with_service_hold(mut self, scale: f64) -> Self {
        self.service_hold = Some(scale.max(0.0));
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

/// Effective per-run execution options: the engine config with any
/// per-request overrides applied.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunOptions {
    pub(crate) mode: QueryMode,
    pub(crate) match_limit: usize,
    pub(crate) traversal_budget: Option<usize>,
    pub(crate) latency: LatencyModel,
    pub(crate) collect: bool,
    pub(crate) hold_scale: Option<f64>,
}

/// Where workers pin their snapshots from.
pub(crate) enum Source<'a> {
    /// One snapshot for the whole run.
    Pinned(&'a Arc<ShardedStore>),
    /// The epoch store; workers pin at spawn and re-pin on publication
    /// notices.
    Epochs(&'a EpochStore),
}

impl Source<'_> {
    pub(crate) fn pin(&self) -> Arc<ShardedStore> {
        match self {
            Source::Pinned(store) => Arc::clone(store),
            Source::Epochs(epochs) => epochs.load(),
        }
    }
}

/// What the coordinator accumulated for one worker shard, built entirely
/// from `Done` messages (plus admission rejections it issued itself).
#[derive(Debug, Default)]
struct CoordLog {
    queries: usize,
    execution: ExecutionMetrics,
    latencies: Vec<f64>,
    epochs: Vec<u64>,
    rejected: usize,
    /// Completed executions flagged `deadline_exceeded` (disjoint from
    /// `rejected`, which never reach a worker).
    deadline_expired: usize,
    /// Run-local latency histogram, present only when the run is observed:
    /// the report's quantiles read from it, and it merges into the
    /// registry's cumulative `serve.latency{shard}` series at assembly — so
    /// live telemetry and the `ServeReport` literally share data.
    hist: Option<Histogram>,
}

impl CoordLog {
    fn record(&mut self, metrics: ExecutionMetrics, epoch: u64) {
        self.queries += 1;
        if metrics.deadline_exceeded {
            self.deadline_expired += 1;
        }
        self.latencies.push(metrics.estimated_latency_us);
        if let Some(hist) = &self.hist {
            hist.record_f64(metrics.estimated_latency_us);
        }
        self.execution.merge(&metrics);
        if self.epochs.last() != Some(&epoch) {
            self.epochs.push(epoch);
        }
    }
}

/// A handoff query awaiting its pieces: the home execution plus one partial
/// per sub-query the home worker issued, arriving in any order.
#[derive(Debug, Default)]
struct PendingQuery {
    home_done: bool,
    expected: u32,
    received: u32,
    epoch: u64,
    acc: ExecutionMetrics,
}

/// Outcome of one open-loop injection attempt (see
/// [`OpenLoopInjector::inject_next`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was enqueued on its home worker's inbox.
    Admitted {
        /// The request's run-global sequence number.
        seq: u64,
        /// The worker shard it was routed to.
        shard: usize,
    },
    /// The home worker's inbox was full; the request was rejected on the
    /// spot (counted in the shard's `rejected`, never retried).
    Rejected {
        /// The request's run-global sequence number.
        seq: u64,
        /// The worker shard it was routed to.
        shard: usize,
    },
    /// The scheduled load is exhausted — nothing left to inject.
    Exhausted,
}

/// One completed request as observed by the open-loop coordinator: when the
/// `Done` message was consumed, which is the client-visible completion time.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The request's run-global sequence number (admission order).
    pub seq: u64,
    /// When the coordinator consumed the completion.
    pub at: Instant,
    /// Whether the execution came back flagged `deadline_exceeded`.
    pub deadline_exceeded: bool,
}

/// The run coordinator: owns the coordinator-side transport endpoints and
/// every piece of run state; all worker interaction is messages.
struct Coordinator<'a> {
    links: &'a [InProcEndpoint],
    plans: &'a [Option<Arc<QueryPlan>>],
    cancel: &'a CancelToken,
    handoff: bool,
    /// Observability for the run, `None` on unobserved runs (whose code
    /// path — including clock reads — is then identical to pre-telemetry).
    telemetry: Option<&'a Telemetry>,
    /// Pre-resolved `serve.admitted{shard}` counters (empty when
    /// unobserved).
    admitted_ctr: Vec<Counter>,
    /// Pre-resolved `serve.rejected{shard}` counters (empty when
    /// unobserved).
    rejected_ctr: Vec<Counter>,
    logs: Vec<CoordLog>,
    embeddings: Vec<(u64, u64, Embedding)>,
    pending: HashMap<u64, PendingQuery>,
    /// seq → (home worker, workload query); populated only on handoff runs.
    meta: HashMap<u64, (usize, usize)>,
    relays: VecDeque<SubQueryMsg>,
    reports: Vec<Option<ShardReportMsg>>,
    outstanding: usize,
    forwarded_epoch: u64,
    cancel_sent: bool,
    /// Completion sink, present only on open-loop runs: every consumed
    /// `Done` is timestamped here for the driver to drain. `None` keeps the
    /// closed-loop paths free of per-completion clock reads.
    completions: Option<Vec<Completion>>,
}

impl<'a> Coordinator<'a> {
    fn new(
        links: &'a [InProcEndpoint],
        plans: &'a [Option<Arc<QueryPlan>>],
        cancel: &'a CancelToken,
        handoff: bool,
        telemetry: Option<&'a Telemetry>,
    ) -> Self {
        let workers = links.len();
        let counter = |name: &'static str, w: usize| {
            telemetry
                .expect("resolved only on observed runs")
                .registry()
                .counter(name, &[("shard", w.to_string())])
        };
        let (admitted_ctr, rejected_ctr) = if telemetry.is_some() {
            (
                (0..workers).map(|w| counter("serve.admitted", w)).collect(),
                (0..workers).map(|w| counter("serve.rejected", w)).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Self {
            links,
            plans,
            cancel,
            handoff,
            telemetry,
            admitted_ctr,
            rejected_ctr,
            logs: (0..workers)
                .map(|_| CoordLog {
                    hist: telemetry.map(|_| Histogram::new()),
                    ..CoordLog::default()
                })
                .collect(),
            embeddings: Vec::new(),
            pending: HashMap::new(),
            meta: HashMap::new(),
            relays: VecDeque::new(),
            reports: vec![None; workers],
            outstanding: 0,
            forwarded_epoch: 0,
            cancel_sent: false,
            completions: None,
        }
    }

    /// Send one routed query to its home worker **without blocking**: a full
    /// inbox rejects the request immediately (same accounting as a
    /// deadline-expired admission) instead of applying backpressure. This is
    /// the open-loop admission primitive — injection timing never depends on
    /// the engine keeping up. Returns whether the request was enqueued.
    fn admit_open(&mut self, worker: usize, task: QueryTaskMsg, epoch: u64) -> bool {
        if self.handoff {
            self.meta.insert(task.seq, (worker, task.query as usize));
        }
        let seq = task.seq;
        if let Some(t) = self.telemetry {
            t.flight().record(FlightKind::Admitted {
                request: seq,
                shard: worker as u32,
                epoch,
            });
        }
        match self.links[worker].try_send(ShardMsg::Query(task)) {
            Ok(()) => {
                self.outstanding += 1;
                if let Some(ctr) = self.admitted_ctr.get(worker) {
                    ctr.inc();
                }
                true
            }
            Err(err) => {
                if let ShardMsg::Query(task) = err.into_msg() {
                    if let Some(t) = self.telemetry {
                        t.flight().record(FlightKind::Rejected {
                            request: seq,
                            shard: worker as u32,
                            epoch,
                        });
                    }
                    self.reject(worker, &task, epoch);
                    if let Some(t) = self.telemetry {
                        t.flight().latch("admission rejected");
                    }
                }
                false
            }
        }
    }

    /// Send one routed query to its home worker, draining the inbox between
    /// backpressure slices. With a deadline, a push that stays blocked past
    /// it rejects the request (recorded as `deadline_exceeded` with zero
    /// traversals, and counted in the shard's `rejected`).
    fn admit(&mut self, worker: usize, task: QueryTaskMsg, deadline: Option<Instant>, epoch: u64) {
        if self.handoff {
            self.meta.insert(task.seq, (worker, task.query as usize));
        }
        // On observed runs, flight-record the admission and remember when it
        // started so a rejection can say how long the push stayed blocked.
        // Unobserved runs skip even this clock read.
        let admit_started = self.telemetry.map(|t| {
            t.flight().record(FlightKind::Admitted {
                request: task.seq,
                shard: worker as u32,
                epoch,
            });
            Instant::now()
        });
        let mut msg = ShardMsg::Query(task);
        loop {
            self.poll_cancel();
            let slice = Instant::now() + ADMIT_SLICE;
            let attempt = Some(deadline.map_or(slice, |d| d.min(slice)));
            match self.links[worker].send(msg, attempt) {
                Ok(()) => {
                    self.outstanding += 1;
                    if let Some(ctr) = self.admitted_ctr.get(worker) {
                        ctr.inc();
                    }
                    return;
                }
                Err(TransportError::Timeout(back)) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        if let ShardMsg::Query(task) = *back {
                            if let (Some(t), Some(started)) = (self.telemetry, admit_started) {
                                t.flight().record(FlightKind::QueueWait {
                                    request: task.seq,
                                    shard: worker as u32,
                                    waited_us: started.elapsed().as_micros() as u64,
                                });
                                t.flight().record(FlightKind::Rejected {
                                    request: task.seq,
                                    shard: worker as u32,
                                    epoch,
                                });
                            }
                            self.reject(worker, &task, epoch);
                            if let Some(t) = self.telemetry {
                                // Rejection is a trigger: dump the timeline
                                // leading up to it automatically.
                                t.flight().latch("admission rejected");
                            }
                        }
                        return;
                    }
                    msg = *back;
                    self.drain();
                }
                // The transport only closes during teardown, after admission.
                Err(TransportError::Closed(_)) => return,
            }
        }
    }

    /// Account an admission rejection: the request still appears in the
    /// aggregate — one executed query, zero traversals, `deadline_exceeded`
    /// — exactly the shape the matcher's pre-flight check produces, but the
    /// shard's `rejected` counter says the queue, not the matcher, spent
    /// the budget.
    fn reject(&mut self, worker: usize, task: &QueryTaskMsg, epoch: u64) {
        self.meta.remove(&task.seq);
        let metrics = ExecutionMetrics {
            queries_executed: 1,
            local_only_queries: 1,
            matches_limited: true,
            deadline_exceeded: true,
            plan: self.plans[task.query as usize].as_ref().map(|p| p.id()),
            ..ExecutionMetrics::default()
        };
        let log = &mut self.logs[worker];
        log.rejected += 1;
        log.execution.merge(&metrics);
        if log.epochs.last() != Some(&epoch) {
            log.epochs.push(epoch);
        }
        if let Some(ctr) = self.rejected_ctr.get(worker) {
            ctr.inc();
        }
    }

    /// Broadcast a cancellation notice once the run's token fires. In-proc
    /// workers share the token and unwind without it; the message keeps the
    /// protocol complete for transports without shared memory.
    fn poll_cancel(&mut self) {
        if !self.cancel_sent && self.cancel.is_cancelled() {
            self.cancel_sent = true;
            for link in self.links {
                let _ = link.try_send(ShardMsg::Cancel);
            }
        }
    }

    /// Consume everything currently in the inbox, then flush queued relays.
    fn drain(&mut self) {
        while let Ok(msg) = self.links[0].recv(Some(Instant::now())) {
            self.handle(msg);
        }
        self.flush_relays();
    }

    /// Forward queued sub-query handoffs to their target workers without
    /// blocking (a full target retries on the next drain).
    fn flush_relays(&mut self) {
        while let Some(sub) = self.relays.pop_front() {
            let target = (sub.target_worker as usize) % self.links.len();
            match self.links[target].try_send(ShardMsg::SubQuery(sub)) {
                Ok(()) => {}
                Err(err) => {
                    if let ShardMsg::SubQuery(sub) = err.into_msg() {
                        self.relays.push_front(sub);
                    }
                    break;
                }
            }
        }
    }

    fn handle(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Done(done) => self.handle_done(done),
            ShardMsg::SubQuery(sub) => self.relays.push_back(sub),
            ShardMsg::EpochPublished { epoch } => {
                if epoch > self.forwarded_epoch {
                    self.forwarded_epoch = epoch;
                    if let Some(t) = self.telemetry {
                        t.flight().record(FlightKind::EpochPublished { epoch });
                    }
                    // Best effort: a worker with a full inbox misses this
                    // notice but catches the next one.
                    for link in self.links {
                        let _ = link.try_send(ShardMsg::EpochPublished { epoch });
                    }
                }
            }
            ShardMsg::Report(report) => {
                let worker = report.worker as usize;
                if worker < self.reports.len() {
                    self.reports[worker] = Some(report);
                }
            }
            // Coordinator-bound traffic only; these go the other way.
            ShardMsg::Query(_) | ShardMsg::Cancel | ShardMsg::Finish => {}
        }
    }

    fn handle_done(&mut self, done: QueryDoneMsg) {
        let QueryDoneMsg {
            worker,
            seq,
            epoch,
            partial,
            handoffs,
            metrics,
            embeddings,
        } = done;
        self.embeddings
            .extend(embeddings.into_iter().map(|(key, e)| (seq, key, e)));
        if partial || handoffs > 0 {
            let entry = self.pending.entry(seq).or_default();
            entry.acc.merge(&metrics);
            if partial {
                entry.received += 1;
            } else {
                entry.home_done = true;
                entry.expected = handoffs;
                entry.epoch = epoch;
            }
            if entry.home_done && entry.received >= entry.expected {
                self.complete_pending(seq);
            }
        } else {
            self.observe_done(worker as usize, seq, epoch, &metrics);
            if let Some(sink) = self.completions.as_mut() {
                sink.push(Completion {
                    seq,
                    at: Instant::now(),
                    deadline_exceeded: metrics.deadline_exceeded,
                });
            }
            self.logs[worker as usize].record(metrics, epoch);
            self.outstanding -= 1;
        }
    }

    /// Flight-record a completed query that blew its deadline (and latch a
    /// dump — the other automatic trigger besides admission rejection).
    fn observe_done(&self, worker: usize, seq: u64, epoch: u64, metrics: &ExecutionMetrics) {
        let Some(t) = self.telemetry else { return };
        if metrics.deadline_exceeded {
            t.flight().record(FlightKind::DeadlineExceeded {
                request: seq,
                shard: worker as u32,
                epoch,
            });
            t.flight().latch("deadline exceeded");
        }
    }

    /// All pieces of a handoff query arrived: normalise the merged raw
    /// metrics back into one per-query record (the per-root executions each
    /// counted themselves as a query) and charge it to the home shard.
    fn complete_pending(&mut self, seq: u64) {
        let pending = self.pending.remove(&seq).expect("pending handoff query");
        let (worker, query) = self.meta.remove(&seq).expect("admitted handoff query");
        let acc = pending.acc;
        let metrics = ExecutionMetrics {
            queries_executed: 1,
            matches_found: acc.matches_found,
            total_traversals: acc.total_traversals,
            remote_traversals: acc.remote_traversals,
            local_only_queries: usize::from(acc.remote_traversals == 0),
            estimated_latency_us: acc.estimated_latency_us,
            matches_limited: acc.matches_limited,
            deadline_exceeded: acc.deadline_exceeded,
            cancelled: acc.cancelled,
            plan: self.plans[query].as_ref().map(|p| p.id()),
        };
        self.observe_done(worker, seq, pending.epoch, &metrics);
        if let Some(sink) = self.completions.as_mut() {
            sink.push(Completion {
                seq,
                at: Instant::now(),
                deadline_exceeded: metrics.deadline_exceeded,
            });
        }
        self.logs[worker].record(metrics, pending.epoch);
        self.outstanding -= 1;
    }

    /// Pump the inbox until every admitted query has completed.
    fn await_completion(&mut self) {
        let mut last_progress = Instant::now();
        while self.outstanding > 0 {
            self.poll_cancel();
            self.flush_relays();
            match self.links[0].recv(Some(Instant::now() + PUMP_SLICE)) {
                Ok(msg) => {
                    last_progress = Instant::now();
                    self.handle(msg);
                }
                Err(RecvError::Timeout) => {
                    if last_progress.elapsed() > STALL_LIMIT {
                        break;
                    }
                }
                Err(RecvError::Disconnected) => break,
            }
        }
    }

    /// Tell every worker the run is over and collect their shard reports.
    fn finish(&mut self) {
        for worker in 0..self.links.len() {
            let mut msg = ShardMsg::Finish;
            loop {
                match self.links[worker].send(msg, Some(Instant::now() + ADMIT_SLICE)) {
                    Ok(()) => break,
                    Err(TransportError::Timeout(back)) => {
                        msg = *back;
                        self.drain();
                    }
                    Err(TransportError::Closed(_)) => break,
                }
            }
        }
        let mut last_progress = Instant::now();
        while self.reports.iter().any(Option::is_none) {
            match self.links[0].recv(Some(Instant::now() + PUMP_SLICE)) {
                Ok(msg) => {
                    last_progress = Instant::now();
                    self.handle(msg);
                }
                Err(RecvError::Timeout) => {
                    if last_progress.elapsed() > STALL_LIMIT {
                        break;
                    }
                }
                Err(RecvError::Disconnected) => break,
            }
        }
    }
}

/// Driver-side handle for one open-loop run (see
/// [`ServeEngine::open_loop`]). The load is pre-scheduled exactly like a
/// closed-loop run; the driver injects it one arrival at a time with
/// **non-blocking** admission ([`OpenLoopInjector::inject_next`]), so
/// injection timing is a pure function of the driver's clock — never of the
/// engine keeping up. A full inbox rejects on the spot; a late arrival can
/// be shed ([`OpenLoopInjector::shed_next`]); both land in the same
/// per-shard `rejected` accounting the blocking path uses, so every issued
/// request appears in the final [`ServeReport`].
pub struct OpenLoopInjector<'a> {
    coordinator: Coordinator<'a>,
    router: &'a QueryRouter,
    snapshot: Arc<ShardedStore>,
    tasks: &'a [QueryTaskMsg],
    workers: usize,
    next: usize,
    issued: usize,
    query_counts: Vec<usize>,
    run_start: Instant,
}

impl OpenLoopInjector<'_> {
    /// When the run (and its relative-µs deadline clock) started.
    pub fn run_start(&self) -> Instant {
        self.run_start
    }

    /// Scheduled arrivals not yet issued.
    pub fn remaining(&self) -> usize {
        self.tasks.len() - self.next
    }

    /// Requests issued so far (admitted + rejected + shed).
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Admitted requests whose completion has not been consumed yet — the
    /// open-loop in-flight count (queued plus executing).
    pub fn outstanding(&self) -> usize {
        self.coordinator.outstanding
    }

    /// Issue the next scheduled arrival with non-blocking admission. An
    /// explicit `deadline` overrides the request-level one for this arrival
    /// (the natural choice is `arrival + SLO timeout`). Never blocks: a full
    /// home-worker inbox means [`Admission::Rejected`], charged to that
    /// shard's error budget.
    pub fn inject_next(&mut self, deadline: Option<Instant>) -> Admission {
        let tasks = self.tasks;
        let Some(task) = tasks.get(self.next) else {
            return Admission::Exhausted;
        };
        self.next += 1;
        self.issued += 1;
        self.query_counts[task.query as usize] += 1;
        let mut task = task.clone();
        if let Some(d) = deadline {
            task.deadline_us = Some(d.saturating_duration_since(self.run_start).as_micros() as u64);
        }
        let plans = self.coordinator.plans;
        let plan = plans[task.query as usize].as_ref().expect("scheduled plan");
        let shard = self
            .router
            .home_shard_planned(&self.snapshot, plan, task.root_seed);
        let worker = shard.index() % self.workers;
        let seq = task.seq;
        if self
            .coordinator
            .admit_open(worker, task, self.snapshot.epoch())
        {
            Admission::Admitted { seq, shard: worker }
        } else {
            Admission::Rejected { seq, shard: worker }
        }
    }

    /// Drop the next scheduled arrival without offering it to its worker —
    /// the driver's move when an arrival is already hopelessly late (an
    /// open-loop generator sheds, it never retries). Accounted exactly like
    /// an admission rejection on the arrival's home shard. Returns the shed
    /// sequence number, or `None` when the schedule is exhausted.
    pub fn shed_next(&mut self) -> Option<u64> {
        let tasks = self.tasks;
        let task = tasks.get(self.next)?;
        self.next += 1;
        self.issued += 1;
        self.query_counts[task.query as usize] += 1;
        let plans = self.coordinator.plans;
        let plan = plans[task.query as usize].as_ref().expect("scheduled plan");
        let shard = self
            .router
            .home_shard_planned(&self.snapshot, plan, task.root_seed);
        let worker = shard.index() % self.workers;
        let epoch = self.snapshot.epoch();
        self.coordinator.reject(worker, task, epoch);
        Some(task.seq)
    }

    /// Consume everything currently on the inbox without blocking.
    pub fn pump(&mut self) {
        self.coordinator.drain();
    }

    /// Consume inbox messages until `deadline` — this is how the driver
    /// paces arrivals: sleep-with-work until the next scheduled injection
    /// instant, timestamping completions as they land.
    pub fn pump_until(&mut self, deadline: Instant) {
        loop {
            self.coordinator.poll_cancel();
            self.coordinator.flush_relays();
            match self.coordinator.links[0].recv(Some(deadline)) {
                Ok(msg) => self.coordinator.handle(msg),
                Err(RecvError::Timeout) | Err(RecvError::Disconnected) => return,
            }
        }
    }

    /// Take every completion consumed since the last call, in consumption
    /// order, each timestamped at the instant the coordinator observed it.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.coordinator
            .completions
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

/// The concurrent sharded serving engine.
#[derive(Debug, Clone, Default)]
pub struct ServeEngine {
    config: ServeConfig,
    plans: Option<Arc<PlanCache>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl ServeEngine {
    /// Create an engine from a config.
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            plans: None,
            telemetry: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Builder-style telemetry: runs charge stage histograms
    /// (`serve.execute`, `serve.queue_wait`, `serve.halo_handoff`), keep
    /// per-shard admitted/rejected counters and queue-depth gauges, report
    /// latency quantiles from shared histograms, and flight-record the
    /// admission/rejection/deadline/epoch timeline — with an automatic
    /// [`loom_obs::FlightDump`] latched on deadline-exceeded or admission
    /// rejection. Without this, runs stay bit-identical to an
    /// uninstrumented engine.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Builder-style plan cache: the router and every worker execute the
    /// cache's compiled plans instead of re-deriving matching orders per
    /// run.
    #[must_use]
    pub fn with_plan_cache(mut self, plans: Arc<PlanCache>) -> Self {
        self.plans = Some(plans);
        self
    }

    /// The shared plan cache, if one is wired in.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }

    /// Serve `samples` queries drawn from `workload` (deterministically from
    /// `seed`) against one pinned snapshot.
    ///
    /// The sampled load and the per-query root seeds are exactly those of
    /// [`loom_sim::executor::QueryExecutor::execute_workload`], and each
    /// query runs the same compiled plan through the same matcher, so the
    /// report's aggregate [`ExecutionMetrics`] equal a sequential run's —
    /// the parity the serving tests assert.
    pub fn serve_batch(
        &self,
        store: &Arc<ShardedStore>,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> ServeReport {
        let request = QueryRequest::workload(samples).with_seed(seed);
        self.run(
            Source::Pinned(store),
            workload,
            request,
            &RequestContext::unbounded(),
        )
        .0
    }

    /// Serve `samples` queries while ingestion concurrently publishes new
    /// epochs into `epochs`. Workers pin a snapshot at spawn and re-pin on
    /// each epoch-publication notice; a query observes exactly one epoch
    /// end-to-end (no torn reads) and the report lists every epoch the run
    /// touched.
    pub fn serve_epochs(
        &self,
        epochs: &EpochStore,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> ServeReport {
        let request = QueryRequest::workload(samples).with_seed(seed);
        self.run(
            Source::Epochs(epochs),
            workload,
            request,
            &RequestContext::unbounded(),
        )
        .0
    }

    /// Execute a unified [`QueryRequest`] against one pinned snapshot and
    /// return both the serving report and the request's
    /// [`QueryResponse`] (metrics + match cursor).
    pub fn run_request(
        &self,
        store: &Arc<ShardedStore>,
        workload: &Workload,
        request: QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        self.run_request_ctx(store, workload, request, &RequestContext::unbounded())
    }

    /// Like [`ServeEngine::run_request`], under an explicit
    /// [`RequestContext`]: the effective deadline is the earlier of the
    /// context's and the request's, and firing the context's cancel token
    /// cooperatively unwinds every in-flight worker execution.
    pub fn run_request_ctx(
        &self,
        store: &Arc<ShardedStore>,
        workload: &Workload,
        request: QueryRequest,
        ctx: &RequestContext,
    ) -> (ServeReport, QueryResponse) {
        self.run(Source::Pinned(store), workload, request, ctx)
    }

    /// Like [`ServeEngine::run_request`], but serving from an
    /// [`EpochStore`] (workers re-pin on epoch publication notices).
    pub fn run_request_epochs(
        &self,
        epochs: &EpochStore,
        workload: &Workload,
        request: QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        self.run_request_epochs_ctx(epochs, workload, request, &RequestContext::unbounded())
    }

    /// Like [`ServeEngine::run_request_epochs`], under an explicit
    /// [`RequestContext`].
    pub fn run_request_epochs_ctx(
        &self,
        epochs: &EpochStore,
        workload: &Workload,
        request: QueryRequest,
        ctx: &RequestContext,
    ) -> (ServeReport, QueryResponse) {
        self.run(Source::Epochs(epochs), workload, request, ctx)
    }

    /// Run an **open-loop** load against one pinned snapshot: the engine
    /// spins up the same workers, router, and transport as
    /// [`ServeEngine::run_request`], then hands control to `driver`, which
    /// owns *when* each pre-scheduled arrival is issued via the
    /// [`OpenLoopInjector`]. Admission never blocks — a full inbox rejects
    /// immediately — so the driver's injection timing is independent of the
    /// engine's completion timing; that independence is what makes measured
    /// saturation honest (a closed-loop driver self-throttles at the knee).
    ///
    /// The request's sampled load and root seeds are exactly those of the
    /// closed-loop path; arrivals the driver never issues are simply not
    /// run. After `driver` returns, the engine awaits outstanding
    /// completions, tears the run down, and returns the [`ServeReport`]
    /// (whose [`ErrorBudget`] covers every
    /// issued request) alongside the driver's own result.
    pub fn open_loop<R>(
        &self,
        store: &Arc<ShardedStore>,
        workload: &Workload,
        request: QueryRequest,
        driver: impl FnOnce(&mut OpenLoopInjector<'_>) -> R,
    ) -> (ServeReport, R) {
        let started = Instant::now();
        let options = self.options_for(&request);
        let workers = self.config.workers.max(1);
        let router = QueryRouter::new(options.mode);
        let effective = RequestContext::unbounded().tightened_by(request.deadline);
        let handoff = self.config.halo_handoff;
        let deadline_us = effective
            .deadline
            .map(|d| d.saturating_duration_since(started).as_micros() as u64);

        let schedule = request_schedule(workload, &request);
        let tasks: Vec<QueryTaskMsg> = schedule
            .iter()
            .enumerate()
            .map(|(seq, &(query, root_seed))| QueryTaskMsg {
                seq: seq as u64,
                query: query as u32,
                root_seed,
                deadline_us,
            })
            .collect();
        let plans = resolve_schedule_plans(self.plans.as_ref(), workload, &schedule);

        let hub = InProcTransport::hub_observed(
            workers,
            self.config.queue_capacity,
            self.telemetry.as_deref(),
        );
        let source = Source::Pinned(store);

        let (logs, reports, embeddings, issued, query_counts, value) =
            std::thread::scope(|scope| {
                for (w, endpoint) in hub.workers.iter().enumerate() {
                    let source = &source;
                    let plans = &plans;
                    let cancel = effective.cancel.clone();
                    let exec_hist = self
                        .telemetry
                        .as_ref()
                        .map(|t| t.shard_histogram(stage::SERVE_EXECUTE, w as u32));
                    let halo_hist = self
                        .telemetry
                        .as_ref()
                        .map(|t| t.shard_histogram(stage::SERVE_HALO_HANDOFF, w as u32));
                    scope.spawn(move || {
                        worker_loop(
                            endpoint,
                            source,
                            WorkerSetup {
                                worker: w as u32,
                                workers: workers as u32,
                                options,
                                handoff,
                                plans,
                                run_start: started,
                                cancel,
                                exec_hist,
                                halo_hist,
                            },
                        );
                    });
                }

                let mut coordinator = Coordinator::new(
                    &hub.coordinator,
                    &plans,
                    &effective.cancel,
                    handoff,
                    self.telemetry.as_deref(),
                );
                coordinator.completions = Some(Vec::new());
                let mut injector = OpenLoopInjector {
                    coordinator,
                    router: &router,
                    snapshot: Arc::clone(store),
                    tasks: &tasks,
                    workers,
                    next: 0,
                    issued: 0,
                    query_counts: vec![0usize; workload.len()],
                    run_start: started,
                };
                let value = driver(&mut injector);
                let OpenLoopInjector {
                    mut coordinator,
                    issued,
                    query_counts,
                    ..
                } = injector;
                coordinator.await_completion();
                coordinator.finish();
                hub.coordinator[0].shutdown();
                (
                    coordinator.logs,
                    coordinator.reports,
                    coordinator.embeddings,
                    issued,
                    query_counts,
                    value,
                )
            });

        let depths: Vec<usize> = hub
            .coordinator
            .iter()
            .map(|l| l.peer_inbox_depth())
            .collect();
        let (report, _) = self.assemble(
            logs,
            reports,
            depths,
            embeddings,
            issued,
            query_counts,
            started,
            &request,
        );
        (report, value)
    }

    /// The effective run options for one request (engine config plus
    /// overrides).
    fn options_for(&self, request: &QueryRequest) -> RunOptions {
        RunOptions {
            mode: request.mode.unwrap_or(self.config.mode),
            match_limit: request.match_limit.unwrap_or(self.config.match_limit),
            traversal_budget: request.traversal_budget,
            latency: self.config.latency,
            collect: request.collect_matches,
            hold_scale: self.config.service_hold,
        }
    }

    fn run(
        &self,
        source: Source<'_>,
        workload: &Workload,
        request: QueryRequest,
        ctx: &RequestContext,
    ) -> (ServeReport, QueryResponse) {
        let started = Instant::now();
        let options = self.options_for(&request);
        let workers = self.config.workers.max(1);
        let router = QueryRouter::new(options.mode);
        let effective = ctx.tightened_by(request.deadline);
        // Handoff is gated to pinned snapshots: it requires the router and
        // every worker to agree on root ownership, which an epoch swap
        // between admission and execution would break.
        let handoff = self.config.halo_handoff && matches!(source, Source::Pinned(_));
        // `Instant`s do not cross the transport; per-task deadlines ride as
        // microseconds relative to the run start both sides hold.
        let deadline_us = effective
            .deadline
            .map(|d| d.saturating_duration_since(started).as_micros() as u64);

        // Expand the load up front through the engine-shared schedule (the
        // exact sampling and root-seed scheme of the sequential executor).
        let schedule = request_schedule(workload, &request);
        let mut query_counts = vec![0usize; workload.len()];
        let tasks: Vec<QueryTaskMsg> = schedule
            .iter()
            .enumerate()
            .map(|(seq, &(query, root_seed))| {
                query_counts[query] += 1;
                QueryTaskMsg {
                    seq: seq as u64,
                    query: query as u32,
                    root_seed,
                    deadline_us,
                }
            })
            .collect();
        let samples = tasks.len();

        // One plan resolution per *distinct* scheduled query for the whole
        // run — the router and every worker share these instances (and the
        // structural guard in `resolve_plan` rejects id collisions).
        let plans = resolve_schedule_plans(self.plans.as_ref(), workload, &schedule);

        let hub = InProcTransport::hub_observed(
            workers,
            self.config.queue_capacity,
            self.telemetry.as_deref(),
        );
        // Epoch publications reach workers as broadcast messages: the store
        // notifies the coordinator's inbox, the coordinator relays.
        let subscription = match &source {
            Source::Epochs(epochs) => Some((*epochs, epochs.subscribe(hub.notice_sink()))),
            Source::Pinned(_) => None,
        };

        let (logs, reports, embeddings) = std::thread::scope(|scope| {
            for (w, endpoint) in hub.workers.iter().enumerate() {
                let source = &source;
                let plans = &plans;
                let cancel = effective.cancel.clone();
                let exec_hist = self
                    .telemetry
                    .as_ref()
                    .map(|t| t.shard_histogram(stage::SERVE_EXECUTE, w as u32));
                let halo_hist = self
                    .telemetry
                    .as_ref()
                    .map(|t| t.shard_histogram(stage::SERVE_HALO_HANDOFF, w as u32));
                scope.spawn(move || {
                    worker_loop(
                        endpoint,
                        source,
                        WorkerSetup {
                            worker: w as u32,
                            workers: workers as u32,
                            options,
                            handoff,
                            plans,
                            run_start: started,
                            cancel,
                            exec_hist,
                            halo_hist,
                        },
                    );
                });
            }

            let mut coordinator = Coordinator::new(
                &hub.coordinator,
                &plans,
                &effective.cancel,
                handoff,
                self.telemetry.as_deref(),
            );
            for batch in tasks.chunks(self.config.batch_size) {
                // Route against the snapshot current at admission time.
                let snapshot = source.pin();
                for task in batch {
                    let plan = plans[task.query as usize].as_ref().expect("scheduled plan");
                    let shard = router.home_shard_planned(&snapshot, plan, task.root_seed);
                    let worker = shard.index() % workers;
                    coordinator.admit(worker, task.clone(), effective.deadline, snapshot.epoch());
                }
            }
            coordinator.await_completion();
            coordinator.finish();
            // Tear the run down: closing the shared inbox ends the epoch
            // subscription's delivery path too.
            hub.coordinator[0].shutdown();
            (
                coordinator.logs,
                coordinator.reports,
                coordinator.embeddings,
            )
        });

        if let Some((epochs, id)) = subscription {
            epochs.unsubscribe(id);
        }

        let depths: Vec<usize> = hub
            .coordinator
            .iter()
            .map(|l| l.peer_inbox_depth())
            .collect();
        self.assemble(
            logs,
            reports,
            depths,
            embeddings,
            samples,
            query_counts,
            started,
            &request,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        logs: Vec<CoordLog>,
        reports: Vec<Option<ShardReportMsg>>,
        depths: Vec<usize>,
        mut embeddings: Vec<(u64, u64, Embedding)>,
        samples: usize,
        query_counts: Vec<usize>,
        started: Instant,
        request: &QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        let mut aggregate = ExecutionMetrics::default();
        let mut all_latencies: Vec<f64> = Vec::with_capacity(samples);
        let mut epochs_observed: Vec<u64> = Vec::new();
        let mut shards = Vec::with_capacity(logs.len());
        let mut makespan_us = 0.0f64;
        // Observed runs read every latency quantile from histograms: the
        // per-shard run-local ones below, and this run-aggregate merge of
        // them. Unobserved runs keep the exact sort-once path, bit-identical
        // to pre-telemetry output.
        let run_hist = self.telemetry.as_ref().map(|_| Histogram::new());
        for (w, mut log) in logs.into_iter().enumerate() {
            aggregate.merge(&log.execution);
            all_latencies.extend_from_slice(&log.latencies);
            epochs_observed.extend_from_slice(&log.epochs);
            let busy_us = log.execution.estimated_latency_us;
            makespan_us = makespan_us.max(busy_us);
            let (p50_latency_us, p99_latency_us) = match &log.hist {
                Some(hist) => {
                    run_hist.as_ref().expect("observed run").merge(hist);
                    // Fold the run's samples into the cumulative
                    // `serve.latency{shard}` series the exporters scrape.
                    self.telemetry
                        .as_ref()
                        .expect("observed run")
                        .registry()
                        .histogram("serve.latency", &[("shard", w.to_string())])
                        .merge(hist);
                    (hist.quantile(0.50) as f64, hist.quantile(0.99) as f64)
                }
                None => {
                    sort_samples(&mut log.latencies);
                    (
                        sorted_quantile(&log.latencies, 0.50),
                        sorted_quantile(&log.latencies, 0.99),
                    )
                }
            };
            shards.push(ShardServeMetrics {
                shard: w as u32,
                queries: log.queries,
                p50_latency_us,
                p99_latency_us,
                execution: log.execution,
                busy_us,
                max_queue_depth: depths.get(w).copied().unwrap_or(0),
                queue_wait_p99_us: reports
                    .get(w)
                    .and_then(Option::as_ref)
                    .map_or(0.0, |r| r.queue_wait_p99_us),
                rejected: log.rejected,
                deadline_expired: log.deadline_expired,
                epoch_seq: log.epochs.iter().copied().max(),
            });
        }
        if let Some(t) = self.telemetry.as_ref() {
            for (w, depth) in depths.iter().enumerate() {
                t.registry()
                    .gauge("serve.queue_depth", &[("shard", w.to_string())])
                    .raise(*depth as i64);
            }
        }
        epochs_observed.sort_unstable();
        epochs_observed.dedup();
        // Deterministic cursor order: admission order, then enumeration
        // order within one execution (the per-embedding order key covers
        // handoff partials racing each other) — identical to a sequential
        // run.
        embeddings.sort_by_key(|&(seq, key, _)| (seq, key));
        let (p50, p99) = match &run_hist {
            Some(hist) => (hist.quantile(0.50) as f64, hist.quantile(0.99) as f64),
            None => {
                sort_samples(&mut all_latencies);
                (
                    sorted_quantile(&all_latencies, 0.50),
                    sorted_quantile(&all_latencies, 0.99),
                )
            }
        };
        let error_budget = ErrorBudget {
            requests: samples,
            rejected: shards.iter().map(|s| s.rejected).sum(),
            deadline_expired: shards.iter().map(|s| s.deadline_expired).sum(),
        };
        let wall_clock_us = started.elapsed().as_secs_f64() * 1e6;
        let wall_clock_qps = if wall_clock_us <= 0.0 {
            0.0
        } else {
            samples as f64 / (wall_clock_us / 1e6)
        };
        let report = ServeReport {
            shards,
            aggregate,
            queries: samples,
            makespan_us,
            wall_clock_us,
            wall_clock_qps,
            p50_latency_us: p50,
            p99_latency_us: p99,
            epochs_observed,
            query_counts,
            error_budget,
        };
        let response = QueryResponse::from_engine(
            aggregate,
            embeddings.into_iter().map(|(_, _, e)| e).collect(),
            request.collect_matches,
        );
        (report, response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_partition::partition::{PartitionId, Partitioning};
    use loom_sim::plan::{GraphStatistics, QueryPlanner};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn fixture() -> (Arc<ShardedStore>, Workload) {
        let g = path_graph(12, &[l(0), l(1), l(2)]);
        let mut part = Partitioning::new(4, 12).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 3) as u32)).unwrap();
        }
        let store = Arc::new(ShardedStore::from_parts(&g, &part));
        let workload = Workload::uniform(vec![
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap(),
            PatternQuery::path(QueryId::new(1), &[l(1), l(2)]).unwrap(),
        ])
        .unwrap();
        (store, workload)
    }

    #[test]
    fn serve_batch_executes_every_sample() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(4));
        let report = engine.serve_batch(&store, &workload, 50, 9);
        assert_eq!(report.queries, 50);
        assert_eq!(report.aggregate.queries_executed, 50);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards.iter().map(|s| s.queries).sum::<usize>(), 50);
        assert!(report.wall_clock_us > 0.0);
        assert_eq!(report.epochs_observed, vec![0]);
        // Unbounded requests are never rejected at admission.
        assert!(report.shards.iter().all(|s| s.rejected == 0));
    }

    #[test]
    fn serving_is_deterministic_per_seed_modulo_worker_count() {
        let (store, workload) = fixture();
        let one = ServeEngine::new(ServeConfig::new(1)).serve_batch(&store, &workload, 40, 3);
        let four = ServeEngine::new(ServeConfig::new(4)).serve_batch(&store, &workload, 40, 3);
        // The aggregate execution metrics do not depend on the worker count.
        assert_eq!(one.aggregate, four.aggregate);
        // But the work is spread: the busiest shard shrinks.
        assert!(four.makespan_us <= one.makespan_us);
    }

    #[test]
    fn more_workers_raise_modelled_throughput() {
        let (store, workload) = fixture();
        let one = ServeEngine::new(ServeConfig::new(1)).serve_batch(&store, &workload, 200, 5);
        let four = ServeEngine::new(ServeConfig::new(4)).serve_batch(&store, &workload, 200, 5);
        assert!(four.aggregate_qps() > one.aggregate_qps());
    }

    #[test]
    fn idle_shards_report_zero_metrics_and_do_not_skew_the_makespan() {
        // 2 partitions served by 4 workers: workers 2 and 3 never receive a
        // query. Their metrics must be all-zero (the empty-sample quantile
        // guard) and the makespan must come from the busy shards only.
        let g = path_graph(8, &[l(0), l(1), l(2)]);
        let mut part = Partitioning::new(2, 8).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 4) as u32)).unwrap();
        }
        let store = Arc::new(ShardedStore::from_parts(&g, &part));
        let workload = Workload::uniform(vec![PatternQuery::path(
            QueryId::new(0),
            &[l(0), l(1), l(2)],
        )
        .unwrap()])
        .unwrap();
        let report = ServeEngine::new(ServeConfig::new(4)).serve_batch(&store, &workload, 60, 11);
        assert_eq!(report.queries, 60);
        let busy_max = report
            .shards
            .iter()
            .fold(0.0f64, |acc, s| acc.max(s.busy_us));
        assert_eq!(report.makespan_us, busy_max);
        let idle: Vec<_> = report.shards.iter().filter(|s| s.queries == 0).collect();
        assert!(!idle.is_empty(), "expected idle workers beyond shard count");
        for shard in idle {
            assert_eq!(shard.qps(), 0.0);
            assert_eq!(shard.busy_us, 0.0);
            assert_eq!(shard.p50_latency_us, 0.0);
            assert_eq!(shard.p99_latency_us, 0.0);
        }
    }

    #[test]
    fn report_records_the_observed_query_mix() {
        let (store, workload) = fixture();
        let report = ServeEngine::new(ServeConfig::new(2)).serve_batch(&store, &workload, 80, 7);
        assert_eq!(report.query_counts.len(), workload.len());
        assert_eq!(report.query_counts.iter().sum::<usize>(), 80);
        // A uniform 2-query workload: both queries appear.
        assert!(report.query_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zero_samples_produce_an_empty_report() {
        let (store, workload) = fixture();
        let report = ServeEngine::default().serve_batch(&store, &workload, 0, 1);
        assert_eq!(report.queries, 0);
        assert_eq!(report.aggregate_qps(), 0.0);
        assert_eq!(report.p99_latency_us, 0.0);
    }

    #[test]
    fn backpressure_keeps_queue_depth_bounded() {
        let (store, workload) = fixture();
        let config = ServeConfig::new(2)
            .with_queue_capacity(4)
            .with_batch_size(8);
        let report = ServeEngine::new(config).serve_batch(&store, &workload, 100, 2);
        for shard in &report.shards {
            assert!(shard.max_queue_depth <= 4);
        }
        assert_eq!(report.aggregate.queries_executed, 100);
    }

    #[test]
    fn plan_cache_is_shared_by_router_and_workers() {
        let (store, workload) = fixture();
        // Same graph the fixture shards.
        let stats = GraphStatistics::from_graph(&path_graph(12, &[l(0), l(1), l(2)]));
        let cache = Arc::new(PlanCache::compile(
            &QueryPlanner::default(),
            &workload,
            &stats,
        ));
        let engine = ServeEngine::new(ServeConfig::new(2)).with_plan_cache(Arc::clone(&cache));
        assert!(engine.plan_cache().is_some());
        let uncached = ServeEngine::new(ServeConfig::new(2));
        let a = engine.serve_batch(&store, &workload, 60, 5);
        let b = uncached.serve_batch(&store, &workload, 60, 5);
        // One lookup per workload query per run, not per sample.
        assert_eq!(cache.hits(), workload.len());
        assert_eq!(cache.misses(), 0);
        // Cached and legacy plans agree on these symmetric-statistics
        // queries, so the metrics line up apart from plan provenance.
        assert_eq!(a.aggregate.total_traversals, b.aggregate.total_traversals);
        assert_eq!(a.aggregate.matches_found, b.aggregate.matches_found);
    }

    #[test]
    fn run_request_collects_embeddings_deterministically_across_workers() {
        let (store, workload) = fixture();
        let request = QueryRequest::workload(30)
            .with_seed(9)
            .collect_matches(true);
        let (_, one) =
            ServeEngine::new(ServeConfig::new(1)).run_request(&store, &workload, request);
        let (_, four) =
            ServeEngine::new(ServeConfig::new(4)).run_request(&store, &workload, request);
        assert_eq!(one.metrics, four.metrics);
        let a: Vec<_> = one.into_cursor().collect();
        let b: Vec<_> = four.into_cursor().collect();
        assert_eq!(a, b, "cursor order must not depend on the worker count");
        assert!(!a.is_empty());
    }

    #[test]
    fn single_query_requests_run_only_that_query() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let (report, response) = engine.run_request(
            &store,
            &workload,
            QueryRequest::query(QueryId::new(1))
                .with_samples(20)
                .with_seed(3),
        );
        assert_eq!(report.queries, 20);
        assert_eq!(report.query_counts, vec![0, 20]);
        assert_eq!(response.metrics.queries_executed, 20);
        // Unknown ids run nothing.
        let (empty, _) = engine.run_request(
            &store,
            &workload,
            QueryRequest::query(QueryId::new(42)).with_samples(5),
        );
        assert_eq!(empty.queries, 0);
        assert_eq!(empty.aggregate, ExecutionMetrics::default());
    }

    #[test]
    fn expired_deadlines_reject_or_short_circuit_without_traversals() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let request = QueryRequest::workload(20)
            .with_seed(4)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        let (report, response) = engine.run_request(&store, &workload, request);
        assert_eq!(report.queries, 20);
        assert_eq!(report.aggregate.queries_executed, 20);
        assert_eq!(report.aggregate.total_traversals, 0);
        assert!(report.aggregate.deadline_exceeded);
        assert!(report.aggregate.matches_limited);
        assert!(response.metrics.deadline_exceeded);
        assert_eq!(response.metrics.matches_found, 0);
    }

    #[test]
    fn cancelled_context_unwinds_and_flags_the_report() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let ctx = RequestContext::unbounded();
        ctx.cancel.cancel();
        let (report, response) = engine.run_request_ctx(
            &store,
            &workload,
            QueryRequest::workload(15).with_seed(6),
            &ctx,
        );
        assert_eq!(report.aggregate.queries_executed, 15);
        assert_eq!(report.aggregate.total_traversals, 0);
        assert!(report.aggregate.cancelled);
        assert!(response.metrics.cancelled);
    }

    #[test]
    fn observed_runs_populate_telemetry_without_changing_aggregates() {
        let (store, workload) = fixture();
        let telemetry = Telemetry::new();
        let observed = ServeEngine::new(ServeConfig::new(2)).with_telemetry(Arc::clone(&telemetry));
        let plain = ServeEngine::new(ServeConfig::new(2));
        let a = observed.serve_batch(&store, &workload, 40, 3);
        let b = plain.serve_batch(&store, &workload, 40, 3);
        // Instrumentation must not perturb the modelled execution.
        assert_eq!(a.aggregate, b.aggregate);
        assert_eq!(a.queries, b.queries);
        let snap = telemetry.snapshot();
        let hist_count = |name: &str| {
            snap.registry
                .histograms
                .iter()
                .filter(|(k, _)| k.name == name)
                .map(|(_, h)| h.count)
                .sum::<u64>()
        };
        assert_eq!(hist_count(stage::SERVE_EXECUTE), 40);
        assert_eq!(hist_count("serve.latency"), 40);
        assert!(hist_count(stage::SERVE_QUEUE_WAIT) > 0);
        let admitted: u64 = snap
            .registry
            .counters
            .iter()
            .filter(|(k, _)| k.name == "serve.admitted")
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(admitted, 40);
        // Report quantiles come from the shared histograms: conservative
        // (bucket upper bound ≥ the exact sorted answer) within 1/32.
        assert!(a.p99_latency_us >= b.p99_latency_us);
        assert!(a.p99_latency_us <= b.p99_latency_us.mul_add(1.0 + 1.0 / 32.0, 1.0));
        // No trigger fired: nothing latched.
        assert!(telemetry.flight().last_dump().is_none());
    }

    #[test]
    fn open_loop_never_blocks_and_accounts_rejections() {
        let (store, workload) = fixture();
        // One worker held ~1ms per query behind a 2-deep queue: a burst of 30
        // back-to-back injections must reject most arrivals immediately
        // instead of blocking the driver.
        let config = ServeConfig::new(1)
            .with_queue_capacity(2)
            .with_service_hold(50.0);
        let engine = ServeEngine::new(config);
        let request = QueryRequest::workload(30).with_seed(5);
        let (report, admitted) = engine.open_loop(&store, &workload, request, |inj| {
            let mut admitted = 0usize;
            loop {
                match inj.inject_next(None) {
                    Admission::Admitted { .. } => admitted += 1,
                    Admission::Rejected { .. } => {}
                    Admission::Exhausted => break,
                }
            }
            admitted
        });
        assert_eq!(report.queries, 30);
        assert_eq!(report.error_budget.requests, 30);
        assert_eq!(report.error_budget.rejected, 30 - admitted);
        // Every issued request appears in the aggregate, executed or not.
        assert_eq!(report.aggregate.queries_executed, 30);
        assert!(
            report.error_budget.rejected > 0,
            "a 2-deep queue must reject under a 30-request burst"
        );
    }

    #[test]
    fn open_loop_completions_and_shed_accounting() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let request = QueryRequest::workload(20).with_seed(7);
        let (report, (completed, shed)) = engine.open_loop(&store, &workload, request, |inj| {
            for _ in 0..10 {
                assert!(matches!(inj.inject_next(None), Admission::Admitted { .. }));
            }
            let mut shed = 0usize;
            while inj.shed_next().is_some() {
                shed += 1;
            }
            assert!(matches!(inj.inject_next(None), Admission::Exhausted));
            while inj.outstanding() > 0 {
                inj.pump_until(Instant::now() + Duration::from_millis(5));
            }
            (inj.drain_completions().len(), shed)
        });
        assert_eq!(shed, 10);
        assert_eq!(completed, 10);
        assert_eq!(report.queries, 20);
        assert_eq!(report.error_budget.requests, 20);
        assert_eq!(report.error_budget.rejected, 10);
        assert_eq!(report.aggregate.queries_executed, 20);
        assert_eq!(report.query_counts.iter().sum::<usize>(), 20);
    }

    #[test]
    fn service_hold_changes_wall_clock_only() {
        let (store, workload) = fixture();
        let plain = ServeEngine::new(ServeConfig::new(2)).serve_batch(&store, &workload, 40, 3);
        let held = ServeEngine::new(ServeConfig::new(2).with_service_hold(5.0))
            .serve_batch(&store, &workload, 40, 3);
        // The hold occupies the shard in wall-clock time but must not perturb
        // the modelled execution or its accounting.
        assert_eq!(plain.aggregate, held.aggregate);
        assert_eq!(plain.queries, held.queries);
        assert_eq!(plain.error_budget, held.error_budget);
    }

    #[test]
    fn report_carries_wall_clock_qps() {
        let (store, workload) = fixture();
        let report = ServeEngine::new(ServeConfig::new(2)).serve_batch(&store, &workload, 30, 1);
        assert!(report.wall_clock_qps > 0.0);
        assert!((report.wall_clock_qps - report.wall_clock_qps()).abs() < 1e-9);
    }

    #[test]
    fn halo_handoff_matches_direct_execution_on_unbounded_runs() {
        let (store, workload) = fixture();
        let direct = ServeEngine::new(ServeConfig::new(4));
        let handoff = ServeEngine::new(ServeConfig::new(4).with_halo_handoff(true));
        let request = QueryRequest::workload(40)
            .with_seed(8)
            .collect_matches(true);
        let (dr, dresp) = direct.run_request(&store, &workload, request);
        let (hr, hresp) = handoff.run_request(&store, &workload, request);
        assert_eq!(dr.queries, hr.queries);
        assert_eq!(
            dr.aggregate.matches_found, hr.aggregate.matches_found,
            "handoff must find the same matches"
        );
        assert_eq!(dr.aggregate.queries_executed, hr.aggregate.queries_executed);
        let a: Vec<_> = dresp.into_cursor().collect();
        let b: Vec<_> = hresp.into_cursor().collect();
        assert_eq!(a, b, "handoff must preserve the cursor order");
    }
}
