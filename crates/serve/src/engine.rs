//! The concurrent serving engine: router + per-shard worker pool.
//!
//! [`ServeEngine::serve_batch`] executes a sampled query load against a
//! pinned [`ShardedStore`] snapshot; [`ServeEngine::serve_epochs`] does the
//! same against an [`EpochStore`], pinning the *current* epoch per query so
//! ingestion can keep publishing new snapshots mid-run; and
//! [`ServeEngine::run_request`] is the unified
//! [`QueryRequest`] entry point behind the
//! `QueryEngine` implementations. All paths share the same machinery:
//!
//! * every workload query's compiled [`QueryPlan`](loom_sim::plan::QueryPlan) is resolved **once per
//!   run** from the shared [`PlanCache`] (or compiled as a legacy plan when
//!   no cache is wired in) — the router and every worker execute the same
//!   instance, with zero per-call ordering derivation;
//! * the router resolves each query's home shard from the plan's root label
//!   ([`QueryRouter::home_shard_planned`]) and pushes it into that shard's
//!   bounded [`ShardQueue`] — admission blocks when a queue is full
//!   (backpressure);
//! * one worker per shard (a `std::thread::scope` thread) drains its queue,
//!   executing each query's plan with the shared instrumented matcher
//!   ([`loom_sim::matcher::execute_plan`]) — the exact code path of the
//!   sequential executor, so the aggregate metrics are bit-identical to a
//!   sequential run over the same `(workload, samples, seed)`;
//! * per-query modelled latencies feed the [`ServeReport`] (per-shard QPS,
//!   p50/p99, remote-hop fraction, queue depth).

use crate::epoch::EpochStore;
use crate::metrics::{quantile, ServeReport, ShardServeMetrics};
use crate::queue::ShardQueue;
use crate::router::QueryRouter;
use crate::shard::ShardedStore;
use loom_motif::workload::Workload;
use loom_sim::engine::{request_schedule, resolve_schedule_plans, QueryRequest, QueryResponse};
use loom_sim::executor::{ExecutionMetrics, LatencyModel, QueryMode};
use loom_sim::matcher::{execute_plan, Embedding, ExecOptions};
use loom_sim::plan::PlanCache;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker shards. Partitions map onto workers round-robin, so any worker
    /// count from 1 to the partition count makes sense (more workers than
    /// partitions leaves the excess idle).
    pub workers: usize,
    /// Bound on each shard queue; a full queue blocks admission
    /// (backpressure) instead of growing an unbounded backlog.
    pub queue_capacity: usize,
    /// How many queries the router samples and routes per admission batch.
    pub batch_size: usize,
    /// Query execution mode (rooted is the online mode the paper targets).
    pub mode: QueryMode,
    /// Cap on embeddings enumerated per query execution.
    pub match_limit: usize,
    /// Latency cost model charged per traversal.
    pub latency: LatencyModel,
}

impl ServeConfig {
    /// A config with `workers` worker shards and serving-oriented defaults
    /// (rooted queries anchored at 4 seeds, queue capacity 64, batch 32).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            queue_capacity: 64,
            batch_size: 32,
            mode: QueryMode::Rooted { seed_count: 4 },
            match_limit: 10_000,
            latency: LatencyModel::default(),
        }
    }

    /// Builder-style query execution mode.
    #[must_use]
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style per-query match limit.
    #[must_use]
    pub fn with_match_limit(mut self, limit: usize) -> Self {
        self.match_limit = limit.max(1);
        self
    }

    /// Builder-style latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style queue capacity (minimum 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style router admission batch size (minimum 1).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

/// One routed unit of work: the `seq`-th sampled query of the run.
#[derive(Debug, Clone, Copy)]
struct QueryTask {
    /// Index into the workload's query list.
    query: usize,
    /// Position in the run's admission order (orders collected embeddings
    /// deterministically across worker counts).
    seq: usize,
    /// Deterministic root seed (`run_seed + seq + 1`, as in the sequential
    /// executor).
    root_seed: u64,
}

/// Effective per-run execution options: the engine config with any
/// per-request overrides applied.
#[derive(Debug, Clone, Copy)]
struct RunOptions {
    mode: QueryMode,
    match_limit: usize,
    traversal_budget: Option<usize>,
    latency: LatencyModel,
    collect: bool,
}

/// What one worker accumulated over its queue.
#[derive(Debug, Default)]
struct WorkerLog {
    queries: usize,
    execution: ExecutionMetrics,
    latencies: Vec<f64>,
    epochs: Vec<u64>,
    /// Collected embeddings tagged by task sequence, so the merged cursor
    /// order is independent of the worker count.
    embeddings: Vec<(usize, Embedding)>,
}

impl WorkerLog {
    fn record(&mut self, metrics: ExecutionMetrics, epoch: u64) {
        self.queries += 1;
        self.latencies.push(metrics.estimated_latency_us);
        self.execution.merge(&metrics);
        if self.epochs.last() != Some(&epoch) {
            self.epochs.push(epoch);
        }
    }
}

/// Where workers pin their snapshots from.
enum Source<'a> {
    /// One snapshot for the whole run.
    Pinned(&'a Arc<ShardedStore>),
    /// The latest epoch at execution time, pinned per query.
    Epochs(&'a EpochStore),
}

impl Source<'_> {
    fn pin(&self) -> Arc<ShardedStore> {
        match self {
            Source::Pinned(store) => Arc::clone(store),
            Source::Epochs(epochs) => epochs.load(),
        }
    }
}

/// The concurrent sharded serving engine.
#[derive(Debug, Clone, Default)]
pub struct ServeEngine {
    config: ServeConfig,
    plans: Option<Arc<PlanCache>>,
}

impl ServeEngine {
    /// Create an engine from a config.
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            plans: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Builder-style plan cache: the router and every worker execute the
    /// cache's compiled plans instead of re-deriving matching orders per
    /// run.
    #[must_use]
    pub fn with_plan_cache(mut self, plans: Arc<PlanCache>) -> Self {
        self.plans = Some(plans);
        self
    }

    /// The shared plan cache, if one is wired in.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plans.as_ref()
    }

    /// Serve `samples` queries drawn from `workload` (deterministically from
    /// `seed`) against one pinned snapshot.
    ///
    /// The sampled load and the per-query root seeds are exactly those of
    /// [`loom_sim::executor::QueryExecutor::execute_workload`], and each
    /// query runs the same compiled plan through the same matcher, so the
    /// report's aggregate [`ExecutionMetrics`] equal a sequential run's —
    /// the parity the serving tests assert.
    pub fn serve_batch(
        &self,
        store: &Arc<ShardedStore>,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> ServeReport {
        let request = QueryRequest::workload(samples).with_seed(seed);
        self.run(Source::Pinned(store), workload, request).0
    }

    /// Serve `samples` queries while ingestion concurrently publishes new
    /// epochs into `epochs`. Each query pins the epoch current at its
    /// execution and observes only that snapshot (no torn reads); the report
    /// lists every epoch the run touched.
    pub fn serve_epochs(
        &self,
        epochs: &EpochStore,
        workload: &Workload,
        samples: usize,
        seed: u64,
    ) -> ServeReport {
        let request = QueryRequest::workload(samples).with_seed(seed);
        self.run(Source::Epochs(epochs), workload, request).0
    }

    /// Execute a unified [`QueryRequest`] against one pinned snapshot and
    /// return both the serving report and the request's
    /// [`QueryResponse`] (metrics + match cursor).
    pub fn run_request(
        &self,
        store: &Arc<ShardedStore>,
        workload: &Workload,
        request: QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        self.run(Source::Pinned(store), workload, request)
    }

    /// Like [`ServeEngine::run_request`], but pinning each query to the
    /// epoch current at its execution.
    pub fn run_request_epochs(
        &self,
        epochs: &EpochStore,
        workload: &Workload,
        request: QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        self.run(Source::Epochs(epochs), workload, request)
    }

    /// The effective run options for one request (engine config plus
    /// overrides).
    fn options_for(&self, request: &QueryRequest) -> RunOptions {
        RunOptions {
            mode: request.mode.unwrap_or(self.config.mode),
            match_limit: request.match_limit.unwrap_or(self.config.match_limit),
            traversal_budget: request.traversal_budget,
            latency: self.config.latency,
            collect: request.collect_matches,
        }
    }

    fn run(
        &self,
        source: Source<'_>,
        workload: &Workload,
        request: QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        let started = Instant::now();
        let options = self.options_for(&request);
        let workers = self.config.workers.max(1);
        let router = QueryRouter::new(options.mode);
        let queues: Vec<ShardQueue<QueryTask>> = (0..workers)
            .map(|_| ShardQueue::new(self.config.queue_capacity))
            .collect();

        // Expand the load up front through the engine-shared schedule (the
        // exact sampling and root-seed scheme of the sequential executor).
        let schedule = request_schedule(workload, &request);
        let mut query_counts = vec![0usize; workload.len()];
        let tasks: Vec<QueryTask> = schedule
            .iter()
            .enumerate()
            .map(|(seq, &(query, root_seed))| {
                query_counts[query] += 1;
                QueryTask {
                    query,
                    seq,
                    root_seed,
                }
            })
            .collect();
        let samples = tasks.len();

        // One plan resolution per *distinct* scheduled query for the whole
        // run — the router and every worker share these instances (and the
        // structural guard in `resolve_plan` rejects id collisions).
        let plans = resolve_schedule_plans(self.plans.as_ref(), workload, &schedule);

        let logs: Vec<WorkerLog> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queue = &queues[w];
                    let source = &source;
                    let plans = &plans;
                    scope.spawn(move || {
                        let mut log = WorkerLog::default();
                        while let Some(task) = queue.pop() {
                            // Pin one immutable snapshot for the whole query:
                            // an epoch swap mid-search is invisible.
                            let snapshot = source.pin();
                            let plan = plans[task.query].as_ref().expect("scheduled plan");
                            let exec = execute_plan(
                                snapshot.as_ref(),
                                plan,
                                &ExecOptions {
                                    mode: options.mode,
                                    match_limit: options.match_limit,
                                    traversal_budget: options.traversal_budget,
                                    latency: options.latency,
                                    root_seed: task.root_seed,
                                    collect: options.collect,
                                },
                            );
                            log.record(exec.metrics, snapshot.epoch());
                            log.embeddings
                                .extend(exec.embeddings.into_iter().map(|e| (task.seq, e)));
                        }
                        log
                    })
                })
                .collect();

            // The router runs on this thread: route each admission batch to
            // its home shards, blocking on full queues (backpressure).
            for batch in tasks.chunks(self.config.batch_size) {
                // Route against the snapshot current at admission time.
                let snapshot = source.pin();
                for task in batch {
                    let plan = plans[task.query].as_ref().expect("scheduled plan");
                    let shard = router.home_shard_planned(&snapshot, plan, task.root_seed);
                    let worker = shard.index() % workers;
                    // Err only if the queue is closed, which cannot happen
                    // before this loop finishes.
                    let _ = queues[worker].push(*task);
                }
            }
            for queue in &queues {
                queue.close();
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        self.assemble(logs, &queues, samples, query_counts, started, &request)
    }

    fn assemble(
        &self,
        logs: Vec<WorkerLog>,
        queues: &[ShardQueue<QueryTask>],
        samples: usize,
        query_counts: Vec<usize>,
        started: Instant,
        request: &QueryRequest,
    ) -> (ServeReport, QueryResponse) {
        let mut aggregate = ExecutionMetrics::default();
        let mut all_latencies: Vec<f64> = Vec::with_capacity(samples);
        let mut epochs_observed: Vec<u64> = Vec::new();
        let mut embeddings: Vec<(usize, Embedding)> = Vec::new();
        let mut shards = Vec::with_capacity(logs.len());
        let mut makespan_us = 0.0f64;
        for (w, mut log) in logs.into_iter().enumerate() {
            aggregate.merge(&log.execution);
            all_latencies.extend_from_slice(&log.latencies);
            epochs_observed.extend_from_slice(&log.epochs);
            embeddings.append(&mut log.embeddings);
            let busy_us = log.execution.estimated_latency_us;
            makespan_us = makespan_us.max(busy_us);
            shards.push(ShardServeMetrics {
                shard: w as u32,
                queries: log.queries,
                p50_latency_us: quantile(&mut log.latencies, 0.50),
                p99_latency_us: quantile(&mut log.latencies, 0.99),
                execution: log.execution,
                busy_us,
                max_queue_depth: queues[w].max_depth(),
            });
        }
        epochs_observed.sort_unstable();
        epochs_observed.dedup();
        // Deterministic cursor order: admission order, then discovery order
        // within one execution (the per-task order is already stable, and
        // sort_by_key is stable) — identical to a sequential run.
        embeddings.sort_by_key(|&(seq, _)| seq);
        let p50 = quantile(&mut all_latencies, 0.50);
        let p99 = quantile(&mut all_latencies, 0.99);
        let report = ServeReport {
            shards,
            aggregate,
            queries: samples,
            makespan_us,
            wall_clock_us: started.elapsed().as_secs_f64() * 1e6,
            p50_latency_us: p50,
            p99_latency_us: p99,
            epochs_observed,
            query_counts,
        };
        let response = QueryResponse::from_engine(
            aggregate,
            embeddings.into_iter().map(|(_, e)| e).collect(),
            request.collect_matches,
        );
        (report, response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_partition::partition::{PartitionId, Partitioning};
    use loom_sim::plan::{GraphStatistics, QueryPlanner};

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    fn fixture() -> (Arc<ShardedStore>, Workload) {
        let g = path_graph(12, &[l(0), l(1), l(2)]);
        let mut part = Partitioning::new(4, 12).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 3) as u32)).unwrap();
        }
        let store = Arc::new(ShardedStore::from_parts(&g, &part));
        let workload = Workload::uniform(vec![
            PatternQuery::path(QueryId::new(0), &[l(0), l(1), l(2)]).unwrap(),
            PatternQuery::path(QueryId::new(1), &[l(1), l(2)]).unwrap(),
        ])
        .unwrap();
        (store, workload)
    }

    #[test]
    fn serve_batch_executes_every_sample() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(4));
        let report = engine.serve_batch(&store, &workload, 50, 9);
        assert_eq!(report.queries, 50);
        assert_eq!(report.aggregate.queries_executed, 50);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.shards.iter().map(|s| s.queries).sum::<usize>(), 50);
        assert!(report.wall_clock_us > 0.0);
        assert_eq!(report.epochs_observed, vec![0]);
    }

    #[test]
    fn serving_is_deterministic_per_seed_modulo_worker_count() {
        let (store, workload) = fixture();
        let one = ServeEngine::new(ServeConfig::new(1)).serve_batch(&store, &workload, 40, 3);
        let four = ServeEngine::new(ServeConfig::new(4)).serve_batch(&store, &workload, 40, 3);
        // The aggregate execution metrics do not depend on the worker count.
        assert_eq!(one.aggregate, four.aggregate);
        // But the work is spread: the busiest shard shrinks.
        assert!(four.makespan_us <= one.makespan_us);
    }

    #[test]
    fn more_workers_raise_modelled_throughput() {
        let (store, workload) = fixture();
        let one = ServeEngine::new(ServeConfig::new(1)).serve_batch(&store, &workload, 200, 5);
        let four = ServeEngine::new(ServeConfig::new(4)).serve_batch(&store, &workload, 200, 5);
        assert!(four.aggregate_qps() > one.aggregate_qps());
    }

    #[test]
    fn idle_shards_report_zero_metrics_and_do_not_skew_the_makespan() {
        // 2 partitions served by 4 workers: workers 2 and 3 never receive a
        // query. Their metrics must be all-zero (the empty-sample quantile
        // guard) and the makespan must come from the busy shards only.
        let g = path_graph(8, &[l(0), l(1), l(2)]);
        let mut part = Partitioning::new(2, 8).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 4) as u32)).unwrap();
        }
        let store = Arc::new(ShardedStore::from_parts(&g, &part));
        let workload = Workload::uniform(vec![PatternQuery::path(
            QueryId::new(0),
            &[l(0), l(1), l(2)],
        )
        .unwrap()])
        .unwrap();
        let report = ServeEngine::new(ServeConfig::new(4)).serve_batch(&store, &workload, 60, 11);
        assert_eq!(report.queries, 60);
        let busy_max = report
            .shards
            .iter()
            .fold(0.0f64, |acc, s| acc.max(s.busy_us));
        assert_eq!(report.makespan_us, busy_max);
        let idle: Vec<_> = report.shards.iter().filter(|s| s.queries == 0).collect();
        assert!(!idle.is_empty(), "expected idle workers beyond shard count");
        for shard in idle {
            assert_eq!(shard.qps(), 0.0);
            assert_eq!(shard.busy_us, 0.0);
            assert_eq!(shard.p50_latency_us, 0.0);
            assert_eq!(shard.p99_latency_us, 0.0);
        }
    }

    #[test]
    fn report_records_the_observed_query_mix() {
        let (store, workload) = fixture();
        let report = ServeEngine::new(ServeConfig::new(2)).serve_batch(&store, &workload, 80, 7);
        assert_eq!(report.query_counts.len(), workload.len());
        assert_eq!(report.query_counts.iter().sum::<usize>(), 80);
        // A uniform 2-query workload: both queries appear.
        assert!(report.query_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zero_samples_produce_an_empty_report() {
        let (store, workload) = fixture();
        let report = ServeEngine::default().serve_batch(&store, &workload, 0, 1);
        assert_eq!(report.queries, 0);
        assert_eq!(report.aggregate_qps(), 0.0);
        assert_eq!(report.p99_latency_us, 0.0);
    }

    #[test]
    fn backpressure_keeps_queue_depth_bounded() {
        let (store, workload) = fixture();
        let config = ServeConfig::new(2)
            .with_queue_capacity(4)
            .with_batch_size(8);
        let report = ServeEngine::new(config).serve_batch(&store, &workload, 100, 2);
        for shard in &report.shards {
            assert!(shard.max_queue_depth <= 4);
        }
        assert_eq!(report.aggregate.queries_executed, 100);
    }

    #[test]
    fn plan_cache_is_shared_by_router_and_workers() {
        let (store, workload) = fixture();
        // Same graph the fixture shards.
        let stats = GraphStatistics::from_graph(&path_graph(12, &[l(0), l(1), l(2)]));
        let cache = Arc::new(PlanCache::compile(
            &QueryPlanner::default(),
            &workload,
            &stats,
        ));
        let engine = ServeEngine::new(ServeConfig::new(2)).with_plan_cache(Arc::clone(&cache));
        assert!(engine.plan_cache().is_some());
        let uncached = ServeEngine::new(ServeConfig::new(2));
        let a = engine.serve_batch(&store, &workload, 60, 5);
        let b = uncached.serve_batch(&store, &workload, 60, 5);
        // One lookup per workload query per run, not per sample.
        assert_eq!(cache.hits(), workload.len());
        assert_eq!(cache.misses(), 0);
        // Cached and legacy plans agree on these symmetric-statistics
        // queries, so the metrics line up apart from plan provenance.
        assert_eq!(a.aggregate.total_traversals, b.aggregate.total_traversals);
        assert_eq!(a.aggregate.matches_found, b.aggregate.matches_found);
    }

    #[test]
    fn run_request_collects_embeddings_deterministically_across_workers() {
        let (store, workload) = fixture();
        let request = QueryRequest::workload(30)
            .with_seed(9)
            .collect_matches(true);
        let (_, one) =
            ServeEngine::new(ServeConfig::new(1)).run_request(&store, &workload, request);
        let (_, four) =
            ServeEngine::new(ServeConfig::new(4)).run_request(&store, &workload, request);
        assert_eq!(one.metrics, four.metrics);
        let a: Vec<_> = one.into_cursor().collect();
        let b: Vec<_> = four.into_cursor().collect();
        assert_eq!(a, b, "cursor order must not depend on the worker count");
        assert!(!a.is_empty());
    }

    #[test]
    fn single_query_requests_run_only_that_query() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let (report, response) = engine.run_request(
            &store,
            &workload,
            QueryRequest::query(QueryId::new(1))
                .with_samples(20)
                .with_seed(3),
        );
        assert_eq!(report.queries, 20);
        assert_eq!(report.query_counts, vec![0, 20]);
        assert_eq!(response.metrics.queries_executed, 20);
        // Unknown ids run nothing.
        let (empty, _) = engine.run_request(
            &store,
            &workload,
            QueryRequest::query(QueryId::new(42)).with_samples(5),
        );
        assert_eq!(empty.queries, 0);
        assert_eq!(empty.aggregate, ExecutionMetrics::default());
    }
}
