//! # loom-serve
//!
//! The concurrent sharded serving engine: the layer that finally *exploits*
//! a LOOM partitioning for parallelism instead of only measuring it.
//!
//! A finished [`Partitioning`](loom_partition::partition::Partitioning)
//! becomes a running engine in four pieces:
//!
//! * [`shard`] — [`shard::ShardedStore`]: an immutable partition-major CSR
//!   snapshot where each partition's home vertices form a contiguous slice
//!   (its [`shard::Shard`]), with per-shard label indexes and a replicated
//!   boundary-vertex halo;
//! * [`router`] — [`router::QueryRouter`]: anchors each rooted pattern query
//!   on its home shard via the label/partition indexes;
//! * [`transport`] — [`transport::ShardTransport`]: the object-safe,
//!   wire-shaped message channel between the coordinator and each worker.
//!   Everything that crosses it is a serde-serializable
//!   [`transport::ShardMsg`] (routed queries, halo sub-query handoffs,
//!   results, shard reports, epoch notices) — no shared-memory handle ever
//!   does. [`transport::InProcTransport`] is the bounded-channel in-process
//!   implementation;
//! * [`engine`] — [`engine::ServeEngine`]: the run coordinator. It routes
//!   queries and owns only transport endpoints; one independent worker event
//!   loop per shard (a `std::thread::scope` thread) executes them with the
//!   shared instrumented matcher from `loom-sim` under each request's
//!   [`RequestContext`](loom_sim::context::RequestContext) — deadlines and
//!   cancellation unwind searches cooperatively mid-backtrack. Admission
//!   applies deadline-aware backpressure: a full worker inbox rejects the
//!   request at its deadline instead of wedging;
//! * [`epoch`] — [`epoch::EpochStore`]: ingest-while-serve via epoch-swapped
//!   snapshots — the streaming partitioner keeps ingesting and periodically
//!   publishes a new immutable shard set through an `arc-swap`-style pointer,
//!   so queries pin one epoch end-to-end and reads never block on writes.
//!   Publications are broadcast to registered [`epoch::EpochSink`]s; the
//!   serving coordinator relays them to workers as messages.
//!
//! [`metrics::ServeReport`] summarises a run: per-shard QPS, p50/p99 modelled
//! latency (from the `loom-sim` [`LatencyModel`](loom_sim::executor::LatencyModel)),
//! remote-hop fraction, peak queue depth, queue-wait p99 and admission
//! rejects.
//!
//! ```
//! use loom_serve::prelude::*;
//! use loom_graph::generators::regular::path_graph;
//! use loom_graph::Label;
//! use loom_motif::query::{PatternQuery, QueryId};
//! use loom_motif::workload::Workload;
//! use loom_partition::partition::{PartitionId, Partitioning};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = path_graph(8, &[Label::new(0), Label::new(1)]);
//! let mut partitioning = Partitioning::new(2, 8)?;
//! for (i, v) in graph.vertices_sorted().into_iter().enumerate() {
//!     partitioning.assign(v, PartitionId::new((i / 4) as u32))?;
//! }
//! let store = Arc::new(ShardedStore::from_parts(&graph, &partitioning));
//!
//! let workload = Workload::uniform(vec![PatternQuery::path(
//!     QueryId::new(0),
//!     &[Label::new(0), Label::new(1)],
//! )?])?;
//! let engine = ServeEngine::new(ServeConfig::new(2));
//! let report = engine.serve_batch(&store, &workload, 100, 42);
//! assert_eq!(report.aggregate.queries_executed, 100);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod epoch;
pub mod metrics;
pub mod queue;
pub mod router;
pub mod shard;
pub mod transport;
mod worker;

pub use engine::{Admission, Completion, OpenLoopInjector, ServeConfig, ServeEngine};
pub use epoch::{EpochSink, EpochStore, SubscriptionId};
pub use metrics::{ErrorBudget, ServeReport, ShardServeMetrics};
pub use queue::ShardQueue;
pub use router::QueryRouter;
pub use shard::{MigratedStore, Shard, ShardedStore};
pub use transport::{
    InProcEndpoint, InProcHub, InProcTransport, QueryDoneMsg, QueryTaskMsg, RecvError, ShardMsg,
    ShardReportMsg, ShardTransport, SubQueryMsg, TransportError, TransportStats,
};

/// Convenient re-exports for examples, tests and the umbrella crate.
pub mod prelude {
    pub use crate::engine::{Admission, Completion, OpenLoopInjector, ServeConfig, ServeEngine};
    pub use crate::epoch::{EpochSink, EpochStore};
    pub use crate::metrics::{ErrorBudget, ServeReport, ShardServeMetrics};
    pub use crate::queue::ShardQueue;
    pub use crate::router::QueryRouter;
    pub use crate::shard::{MigratedStore, Shard, ShardedStore};
    pub use crate::transport::{InProcTransport, ShardMsg, ShardTransport};
}
