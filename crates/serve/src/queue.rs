//! Bounded per-shard work queues with blocking backpressure.
//!
//! Each worker shard owns one [`ShardQueue`]; the router pushes routed query
//! tasks into it and blocks when the queue is full (the backpressure policy:
//! a slow shard slows admission instead of growing an unbounded backlog).
//! Workers block on pop until a task arrives or the queue is closed and
//! drained. The queue also records the maximum depth it reached, which the
//! serving report surfaces per shard.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Why a deadline-aware push was refused. The rejected item is handed back
/// in both cases, so callers can re-route or account for it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue stayed full past the deadline (backpressure held the whole
    /// time) — the admission-control signal a stuck worker produces instead
    /// of wedging the router forever.
    Timeout(T),
    /// The queue has been closed.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the item the queue refused.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Timeout(item) | PushError::Closed(item) => item,
        }
    }
}

/// Why a deadline-aware pop returned empty-handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// Nothing arrived before the deadline; the queue is still open.
    Timeout,
    /// The queue is closed *and* drained — no item will ever arrive.
    Closed,
}

/// A bounded multi-producer / multi-consumer FIFO queue.
///
/// Built directly on `std::sync` (a condvar must pair with the mutex that
/// produced its guard, and the real `parking_lot` has its own condvar type);
/// lock poisoning is recovered the same way the vendored `parking_lot`
/// recovers it, so a panicking worker never wedges the queue.
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

impl<T> ShardQueue<T> {
    /// Create a queue admitting at most `capacity` queued items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Push an item, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Push an item, blocking while the queue is full but only until
    /// `deadline` (`None` blocks indefinitely, like [`ShardQueue::push`]).
    ///
    /// This is the backpressure fix for admission control: a stuck or slow
    /// consumer used to wedge a blocking `push` forever; a deadline-aware
    /// producer gets the item back as [`PushError::Timeout`] and can reject
    /// the request instead.
    ///
    /// # Errors
    ///
    /// [`PushError::Timeout`] when the queue stayed full until the deadline,
    /// [`PushError::Closed`] when the queue has been closed; both return the
    /// item.
    pub fn push_deadline(&self, item: T, deadline: Option<Instant>) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            match deadline {
                None => {
                    state = self
                        .not_full
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(PushError::Timeout(item));
                    }
                    state = self
                        .not_full
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
        if state.closed {
            return Err(PushError::Closed(item));
        }
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop the next item, blocking while the queue is empty but only until
    /// `deadline` (`None` blocks indefinitely, like [`ShardQueue::pop`]).
    ///
    /// # Errors
    ///
    /// [`PopError::Timeout`] when nothing arrived by the deadline,
    /// [`PopError::Closed`] once the queue is closed and drained.
    pub fn pop_deadline(&self, deadline: Option<Instant>) -> Result<T, PopError> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Ok(item);
            }
            if state.closed {
                return Err(PopError::Closed);
            }
            match deadline {
                None => {
                    state = self
                        .not_empty
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(PopError::Timeout);
                    }
                    state = self
                        .not_empty
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Pop the next item, blocking while the queue is empty. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: pending items remain poppable, further pushes fail,
    /// and blocked consumers wake up once the backlog drains.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The maximum depth the queue reached so far.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_push_pop() {
        let q = ShardQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = ShardQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_backpressure_blocks_producers() {
        let q = ShardQueue::new(2);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    q.push(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(item) = q.pop() {
                got.push(item);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
        assert_eq!(produced.load(Ordering::SeqCst), 100);
        // The bounded queue never grew beyond its capacity.
        assert!(q.max_depth() <= 2);
    }

    #[test]
    fn timed_push_rejects_when_backpressure_holds_past_the_deadline() {
        use std::time::Duration;
        let q = ShardQueue::new(1);
        q.push(1).unwrap();
        // Full queue + already-expired deadline: immediate rejection, item
        // handed back.
        let expired = Instant::now() - Duration::from_millis(1);
        match q.push_deadline(2, Some(expired)) {
            Err(PushError::Timeout(item)) => assert_eq!(item, 2),
            other => panic!("expected timeout, got {other:?}"),
        }
        // A short future deadline also times out while nobody consumes.
        let soon = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.push_deadline(3, Some(soon)), Err(PushError::Timeout(3)));
        // Space frees up: the timed push succeeds within its deadline.
        assert_eq!(q.pop(), Some(1));
        let ample = Instant::now() + Duration::from_secs(5);
        assert_eq!(q.push_deadline(4, Some(ample)), Ok(()));
        assert_eq!(q.pop(), Some(4));
        // Closed queues report Closed, not Timeout.
        q.close();
        assert_eq!(q.push_deadline(5, Some(ample)), Err(PushError::Closed(5)));
        assert_eq!(PushError::Closed(5).into_inner(), 5);
    }

    #[test]
    fn timed_pop_distinguishes_timeout_from_closed() {
        use std::time::Duration;
        let q: ShardQueue<u32> = ShardQueue::new(2);
        let soon = Instant::now() + Duration::from_millis(5);
        assert_eq!(q.pop_deadline(Some(soon)), Err(PopError::Timeout));
        q.push(9).unwrap();
        assert_eq!(q.pop_deadline(Some(soon)), Ok(9));
        q.close();
        assert_eq!(q.pop_deadline(Some(soon)), Err(PopError::Closed));
        // `None` deadline behaves like the blocking pop on a closed queue.
        assert_eq!(q.pop_deadline(None), Err(PopError::Closed));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q: ShardQueue<u32> = ShardQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert_eq!(q.pop(), Some(7));
    }
}
