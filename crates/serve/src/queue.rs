//! Bounded per-shard work queues with blocking backpressure.
//!
//! Each worker shard owns one [`ShardQueue`]; the router pushes routed query
//! tasks into it and blocks when the queue is full (the backpressure policy:
//! a slow shard slows admission instead of growing an unbounded backlog).
//! Workers block on pop until a task arrives or the queue is closed and
//! drained. The queue also records the maximum depth it reached, which the
//! serving report surfaces per shard.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A bounded multi-producer / multi-consumer FIFO queue.
///
/// Built directly on `std::sync` (a condvar must pair with the mutex that
/// produced its guard, and the real `parking_lot` has its own condvar type);
/// lock poisoning is recovered the same way the vendored `parking_lot`
/// recovers it, so a panicking worker never wedges the queue.
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

impl<T> ShardQueue<T> {
    /// Create a queue admitting at most `capacity` queued items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Push an item, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop the next item, blocking while the queue is empty. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: pending items remain poppable, further pushes fail,
    /// and blocked consumers wake up once the backlog drains.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The maximum depth the queue reached so far.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_push_pop() {
        let q = ShardQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = ShardQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_backpressure_blocks_producers() {
        let q = ShardQueue::new(2);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    q.push(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(item) = q.pop() {
                got.push(item);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
        assert_eq!(produced.load(Ordering::SeqCst), 100);
        // The bounded queue never grew beyond its capacity.
        assert!(q.max_depth() <= 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q: ShardQueue<u32> = ShardQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert_eq!(q.pop(), Some(7));
    }
}
