//! The query router: anchor each query on its home shard.
//!
//! A rooted pattern query enters the engine as `(plan, root_seed)`. The
//! router consumes the **compiled plan's root label** — the same plan the
//! executing worker will run, fetched once per query set from the shared
//! [`PlanCache`](loom_sim::plan::PlanCache) — so routing performs no
//! matching-order derivation at all (the double derivation the plan
//! redesign removed). It resolves the roots the matcher will anchor on via
//! the plan-driven [`loom_sim::matcher::plan_roots`] lookup, maps each root
//! to the shard hosting it, and dispatches the query to the shard hosting
//! the **most** roots (vote ties broken deterministically by the root seed,
//! so no shard is systematically favoured). Queries with no assigned roots
//! at all are spread by `root_seed % shards`, so unmatched queries
//! round-robin across shards instead of piling onto a single one.

use crate::shard::ShardedStore;
use loom_motif::query::PatternQuery;
use loom_partition::partition::PartitionId;
use loom_sim::executor::QueryMode;
use loom_sim::matcher::plan_roots;
use loom_sim::plan::QueryPlan;

/// Routes queries to home shards ahead of execution.
#[derive(Debug, Clone, Copy)]
pub struct QueryRouter {
    mode: QueryMode,
}

impl QueryRouter {
    /// Create a router for queries executed under `mode` (the mode determines
    /// which roots the matcher will anchor on, and therefore the home shard).
    pub fn new(mode: QueryMode) -> Self {
        Self { mode }
    }

    /// The execution mode the router resolves roots under.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// The home shard for one `(query, root_seed)` execution — legacy entry
    /// point for callers without a compiled plan: compiles a
    /// [`QueryPlan::legacy`] on the spot and delegates to
    /// [`QueryRouter::home_shard_planned`]. The serving engine resolves each
    /// workload query's plan once per run and calls the planned variant
    /// directly.
    pub fn home_shard(
        &self,
        store: &ShardedStore,
        query: &PatternQuery,
        root_seed: u64,
    ) -> PartitionId {
        if query.graph().is_empty() {
            let k = store.shard_count().max(1);
            return PartitionId::new((root_seed % u64::from(k)) as u32);
        }
        self.home_shard_planned(store, &QueryPlan::legacy(query), root_seed)
    }

    /// The home shard for one `(plan, root_seed)` execution: the shard
    /// hosting the plurality of the roots the matcher will anchor on —
    /// resolved from the plan's pre-compiled root label, with no ordering
    /// derivation. Vote ties are broken deterministically by `root_seed`
    /// (not towards a fixed shard, which would systematically overload low
    /// shard ids). When *no* vote lands on any shard (the plan's root label
    /// is unindexed, or every root is unassigned) the query is spread by
    /// `root_seed % shards` explicitly — per-query root seeds are
    /// consecutive, so unmatched queries round-robin across shards instead
    /// of hotspotting near shard 0.
    pub fn home_shard_planned(
        &self,
        store: &ShardedStore,
        plan: &QueryPlan,
        root_seed: u64,
    ) -> PartitionId {
        let k = store.shard_count().max(1);
        let mut votes = vec![0usize; k as usize];
        match self.mode {
            QueryMode::FullEnumeration => {
                // Every root-label vertex anchors the scan, so each shard's
                // vote is just a count in its label index — no per-vertex
                // home lookups.
                for (i, shard) in store.shards().iter().enumerate() {
                    votes[i] = shard.vertices_with_label(plan.root_label()).len();
                }
            }
            QueryMode::Rooted { .. } => {
                for root in plan_roots(store, plan, self.mode, root_seed) {
                    if let Some(p) = store.home_shard(root) {
                        votes[p.index()] += 1;
                    }
                }
            }
        }
        let best = votes.iter().copied().max().expect("at least one shard");
        if best == 0 {
            return PartitionId::new((root_seed % u64::from(k)) as u32);
        }
        let tied: Vec<usize> = (0..votes.len()).filter(|&i| votes[i] == best).collect();
        PartitionId::new(tied[root_seed as usize % tied.len()] as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_motif::query::QueryId;
    use loom_partition::partition::Partitioning;

    fn l(x: u32) -> Label {
        Label::new(x)
    }

    /// Path 0-1-2-3 with labels a,b,a,b; partition {0,1} / {2,3}.
    fn store() -> ShardedStore {
        let g = path_graph(4, &[l(0), l(1)]);
        let vs = g.vertices_sorted();
        let mut part = Partitioning::new(2, 4).unwrap();
        part.assign(vs[0], PartitionId::new(0)).unwrap();
        part.assign(vs[1], PartitionId::new(0)).unwrap();
        part.assign(vs[2], PartitionId::new(1)).unwrap();
        part.assign(vs[3], PartitionId::new(1)).unwrap();
        ShardedStore::from_parts(&g, &part)
    }

    #[test]
    fn full_enumeration_routes_to_the_plurality_shard() {
        let store = store();
        // Root label a lives at vertices 0 (shard 0) and 2 (shard 1): a tie,
        // broken deterministically by the root seed.
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let router = QueryRouter::new(QueryMode::FullEnumeration);
        assert_eq!(router.home_shard(&store, &query, 0), PartitionId::new(0));
        assert_eq!(router.home_shard(&store, &query, 1), PartitionId::new(1));
    }

    #[test]
    fn planned_and_legacy_routing_agree_on_the_same_plan() {
        let store = store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let plan = QueryPlan::legacy(&query);
        for mode in [
            QueryMode::FullEnumeration,
            QueryMode::Rooted { seed_count: 2 },
        ] {
            let router = QueryRouter::new(mode);
            for seed in 0..20 {
                assert_eq!(
                    router.home_shard(&store, &query, seed),
                    router.home_shard_planned(&store, &plan, seed),
                    "mode {mode:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn rooted_routing_is_deterministic_per_seed() {
        let store = store();
        let query = PatternQuery::path(QueryId::new(0), &[l(0), l(1)]).unwrap();
        let router = QueryRouter::new(QueryMode::Rooted { seed_count: 1 });
        for seed in 0..20 {
            let a = router.home_shard(&store, &query, seed);
            let b = router.home_shard(&store, &query, seed);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_vote_queries_spread_across_shards() {
        // Regression: queries whose roots land on no shard must not hotspot
        // near shard 0 — they spread by `root_seed % shards`.
        let store = store();
        let query = PatternQuery::path(QueryId::new(0), &[l(9), l(1)]).unwrap();
        for mode in [
            QueryMode::FullEnumeration,
            QueryMode::Rooted { seed_count: 2 },
        ] {
            let router = QueryRouter::new(mode);
            let mut hits = [0usize; 2];
            // Consecutive root seeds, exactly as the engine assigns them.
            for seed in 1..=40u64 {
                hits[router.home_shard(&store, &query, seed).index()] += 1;
            }
            assert_eq!(hits, [20, 20], "mode {mode:?} hotspots zero-vote load");
        }
    }
}
