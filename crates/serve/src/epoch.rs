//! Epoch-swapped snapshots: ingest-while-serve without read-side blocking.
//!
//! The streaming partitioner keeps ingesting batches while queries are being
//! served; periodically it freezes its progress into a new immutable
//! [`ShardedStore`] and publishes it through an [`EpochStore`]. Publication
//! is an `arc-swap`-style atomic pointer exchange (an `RwLock<Arc<_>>` from
//! the vendored `parking_lot`, held only for the pointer swap itself): a
//! reader clones the current `Arc` and then works entirely lock-free on a
//! *pinned* snapshot, so a query observes exactly one epoch end-to-end —
//! never a torn mix of two — and reads never wait on an in-progress ingest
//! batch.

use crate::shard::ShardedStore;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, atomically swappable handle to the current serving snapshot.
#[derive(Debug)]
pub struct EpochStore {
    current: RwLock<Arc<ShardedStore>>,
    epoch: AtomicU64,
}

impl EpochStore {
    /// Create an epoch store serving `initial` as epoch 1.
    pub fn new(initial: ShardedStore) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial.with_epoch(1))),
            epoch: AtomicU64::new(1),
        }
    }

    /// Pin the current snapshot. The returned `Arc` stays valid (and
    /// immutable) for as long as the caller holds it, regardless of how many
    /// newer epochs are published meanwhile.
    pub fn load(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.current.read())
    }

    /// Publish a new snapshot, returning the epoch number it was stamped
    /// with. Readers that already pinned the previous epoch keep it; new
    /// loads observe the fresh one.
    ///
    /// # Ordering invariant
    ///
    /// The counter is advanced *inside* the write lock, *after* the pointer
    /// swap, with `Release`; [`EpochStore::current_epoch`] reads it with
    /// `Acquire`. Snapshots are only pinned under the read lock, which cannot
    /// be acquired before the publisher's unlock — and the unlock is ordered
    /// after the counter store. So once a thread has pinned a snapshot with
    /// epoch `e`, every later [`EpochStore::current_epoch`] call it makes
    /// returns at least `e`: the counter can never trail a pointer swap the
    /// reader has already observed (the bug a bare `Relaxed` load allowed).
    /// With concurrent publishers the write lock serialises both the swap and
    /// the counter bump, so the snapshot left behind is always the one with
    /// the highest epoch.
    pub fn publish(&self, store: ShardedStore) -> u64 {
        let mut current = self.current.write();
        // Exclusive via the write lock (the previous publisher's store
        // happens-before this load through lock acquisition), so a plain
        // Relaxed read sees the latest value.
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        *current = Arc::new(store.with_epoch(epoch));
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// The epoch number of the latest published snapshot. Never trails the
    /// epoch of any snapshot the calling thread has already pinned via
    /// [`EpochStore::load`] (see [`EpochStore::publish`] for the ordering
    /// argument).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_partition::partition::{PartitionId, Partitioning};

    fn snapshot(vertices: usize) -> ShardedStore {
        let g = path_graph(vertices, &[Label::new(0), Label::new(1)]);
        let mut part = Partitioning::new(2, vertices).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i % 2) as u32)).unwrap();
        }
        ShardedStore::from_parts(&g, &part)
    }

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let epochs = EpochStore::new(snapshot(4));
        assert_eq!(epochs.current_epoch(), 1);
        assert_eq!(epochs.load().vertex_count(), 4);
        let e = epochs.publish(snapshot(6));
        assert_eq!(e, 2);
        assert_eq!(epochs.current_epoch(), 2);
        assert_eq!(epochs.load().vertex_count(), 6);
        assert_eq!(epochs.load().epoch(), 2);
    }

    #[test]
    fn pinned_snapshot_survives_a_swap() {
        let epochs = EpochStore::new(snapshot(4));
        let pinned = epochs.load();
        epochs.publish(snapshot(8));
        // The pinned epoch still sees the old graph, the store the new one.
        assert_eq!(pinned.vertex_count(), 4);
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(epochs.load().vertex_count(), 8);
    }

    #[test]
    fn concurrent_loads_and_publishes_do_not_tear() {
        let epochs = EpochStore::new(snapshot(2));
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 2..30usize {
                    epochs.publish(snapshot(2 * i));
                }
            });
            for _ in 0..200 {
                let snap = epochs.load();
                // Every observed snapshot is internally consistent: a path
                // graph of n vertices always has n-1 edges.
                assert_eq!(snap.edge_count(), snap.vertex_count() - 1);
                // The counter never trails a snapshot this thread pinned.
                assert!(snap.epoch() <= epochs.current_epoch());
            }
        });
        assert_eq!(epochs.current_epoch(), 29);
    }
}
