//! Epoch-swapped snapshots: ingest-while-serve without read-side blocking.
//!
//! The streaming partitioner keeps ingesting batches while queries are being
//! served; periodically it freezes its progress into a new immutable
//! [`ShardedStore`] and publishes it through an [`EpochStore`]. Publication
//! is an `arc-swap`-style atomic pointer exchange (an `RwLock<Arc<_>>` from
//! the vendored `parking_lot`, held only for the pointer swap itself): a
//! reader clones the current `Arc` and then works entirely lock-free on a
//! *pinned* snapshot, so a query observes exactly one epoch end-to-end —
//! never a torn mix of two — and reads never wait on an in-progress ingest
//! batch.
//!
//! Since the transport refactor, publication is additionally **broadcast**:
//! interested parties register an [`EpochSink`] and each [`EpochStore::publish`]
//! notifies every registered sink with the fresh epoch number. The serving
//! coordinator registers a sink that enqueues an epoch-publication message
//! on its own transport inbox and relays it to the shard workers — workers
//! re-pin their snapshot on the *notice*, not by peeking at shared state
//! mid-query, which is what keeps the message layer socket-ready.

use crate::shard::ShardedStore;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A subscriber to epoch publications.
///
/// `notify` runs on the publisher's thread, after the swap is visible, and
/// must not block: sinks that forward into bounded channels drop the notice
/// when the channel is full (any notice merely says "something newer than
/// what you pinned exists"; a dropped one is superseded by the next publish
/// or by the next explicit [`EpochStore::load`]).
pub trait EpochSink: Send + Sync {
    /// A new snapshot with this epoch number is now loadable.
    fn notify(&self, epoch: u64);
}

/// Handle returned by [`EpochStore::subscribe`]; pass it back to
/// [`EpochStore::unsubscribe`] when the subscriber goes away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionId(u64);

/// A shared, atomically swappable handle to the current serving snapshot.
#[derive(Debug)]
pub struct EpochStore {
    current: RwLock<Arc<ShardedStore>>,
    epoch: AtomicU64,
    #[allow(clippy::type_complexity)]
    sinks: Mutex<Vec<(u64, Arc<dyn EpochSink>)>>,
    next_sink: AtomicU64,
}

impl std::fmt::Debug for dyn EpochSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EpochSink")
    }
}

impl EpochStore {
    /// Create an epoch store serving `initial` as epoch 1.
    pub fn new(initial: ShardedStore) -> Self {
        Self::resume(initial, 1)
    }

    /// Create an epoch store serving `initial` stamped with an explicit
    /// `epoch` — the recovery path: a store rebuilt from a checkpoint keeps
    /// its pre-crash `epoch_seq`, so the sequence numbers in
    /// [`crate::metrics::ShardServeMetrics`] and in checkpoint manifests stay
    /// monotonic (and diffable) across a restart. The next
    /// [`EpochStore::publish`] is stamped `epoch + 1`.
    pub fn resume(initial: ShardedStore, epoch: u64) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial.with_epoch(epoch))),
            epoch: AtomicU64::new(epoch),
            sinks: Mutex::new(Vec::new()),
            next_sink: AtomicU64::new(0),
        }
    }

    /// Pin the current snapshot. The returned `Arc` stays valid (and
    /// immutable) for as long as the caller holds it, regardless of how many
    /// newer epochs are published meanwhile.
    pub fn load(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.current.read())
    }

    /// Publish a new snapshot, returning the epoch number it was stamped
    /// with. Readers that already pinned the previous epoch keep it; new
    /// loads observe the fresh one.
    ///
    /// # Ordering invariant
    ///
    /// The counter is advanced *inside* the write lock, *after* the pointer
    /// swap, with `Release`; [`EpochStore::current_epoch`] reads it with
    /// `Acquire`. Snapshots are only pinned under the read lock, which cannot
    /// be acquired before the publisher's unlock — and the unlock is ordered
    /// after the counter store. So once a thread has pinned a snapshot with
    /// epoch `e`, every later [`EpochStore::current_epoch`] call it makes
    /// returns at least `e`: the counter can never trail a pointer swap the
    /// reader has already observed (the bug a bare `Relaxed` load allowed).
    /// With concurrent publishers the write lock serialises both the swap and
    /// the counter bump, so the snapshot left behind is always the one with
    /// the highest epoch.
    pub fn publish(&self, store: ShardedStore) -> u64 {
        let epoch = {
            let mut current = self.current.write();
            // Exclusive via the write lock (the previous publisher's store
            // happens-before this load through lock acquisition), so a plain
            // Relaxed read sees the latest value.
            let epoch = self.epoch.load(Ordering::Relaxed) + 1;
            *current = Arc::new(store.with_epoch(epoch));
            self.epoch.store(epoch, Ordering::Release);
            epoch
        };
        // Broadcast outside the write lock: a sink that loads the snapshot
        // from inside `notify` must not deadlock against the publisher, and
        // readers should never wait on sink fan-out.
        let sinks: Vec<Arc<dyn EpochSink>> = {
            let registered = self.sinks.lock();
            registered
                .iter()
                .map(|(_, sink)| Arc::clone(sink))
                .collect()
        };
        for sink in sinks {
            sink.notify(epoch);
        }
        epoch
    }

    /// Register a sink notified on every subsequent publish. Returns the id
    /// to [`EpochStore::unsubscribe`] with.
    pub fn subscribe(&self, sink: Arc<dyn EpochSink>) -> SubscriptionId {
        let id = self.next_sink.fetch_add(1, Ordering::Relaxed);
        self.sinks.lock().push((id, sink));
        SubscriptionId(id)
    }

    /// Remove a previously registered sink. Unknown ids are a no-op (the
    /// sink may already have been removed).
    pub fn unsubscribe(&self, id: SubscriptionId) {
        self.sinks.lock().retain(|(sid, _)| *sid != id.0);
    }

    /// How many sinks are currently subscribed.
    pub fn subscriber_count(&self) -> usize {
        self.sinks.lock().len()
    }

    /// The epoch number of the latest published snapshot. Never trails the
    /// epoch of any snapshot the calling thread has already pinned via
    /// [`EpochStore::load`] (see [`EpochStore::publish`] for the ordering
    /// argument).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_partition::partition::{PartitionId, Partitioning};

    fn snapshot(vertices: usize) -> ShardedStore {
        let g = path_graph(vertices, &[Label::new(0), Label::new(1)]);
        let mut part = Partitioning::new(2, vertices).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i % 2) as u32)).unwrap();
        }
        ShardedStore::from_parts(&g, &part)
    }

    #[test]
    fn publish_bumps_epoch_and_swaps() {
        let epochs = EpochStore::new(snapshot(4));
        assert_eq!(epochs.current_epoch(), 1);
        assert_eq!(epochs.load().vertex_count(), 4);
        let e = epochs.publish(snapshot(6));
        assert_eq!(e, 2);
        assert_eq!(epochs.current_epoch(), 2);
        assert_eq!(epochs.load().vertex_count(), 6);
        assert_eq!(epochs.load().epoch(), 2);
    }

    #[test]
    fn pinned_snapshot_survives_a_swap() {
        let epochs = EpochStore::new(snapshot(4));
        let pinned = epochs.load();
        epochs.publish(snapshot(8));
        // The pinned epoch still sees the old graph, the store the new one.
        assert_eq!(pinned.vertex_count(), 4);
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(epochs.load().vertex_count(), 8);
    }

    #[test]
    fn sinks_receive_each_publish_and_unsubscribe_stops_them() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct Recorder(StdMutex<Vec<u64>>);
        impl EpochSink for Recorder {
            fn notify(&self, epoch: u64) {
                self.0.lock().unwrap().push(epoch);
            }
        }
        let epochs = EpochStore::new(snapshot(4));
        let recorder = Arc::new(Recorder::default());
        let id = epochs.subscribe(Arc::clone(&recorder) as Arc<dyn EpochSink>);
        assert_eq!(epochs.subscriber_count(), 1);
        epochs.publish(snapshot(6));
        epochs.publish(snapshot(8));
        assert_eq!(*recorder.0.lock().unwrap(), vec![2, 3]);
        epochs.unsubscribe(id);
        assert_eq!(epochs.subscriber_count(), 0);
        epochs.publish(snapshot(10));
        assert_eq!(*recorder.0.lock().unwrap(), vec![2, 3]);
        // Unsubscribing twice is a harmless no-op.
        epochs.unsubscribe(id);
    }

    #[test]
    fn sinks_may_load_the_snapshot_they_were_notified_about() {
        // A sink that loads from inside `notify` must observe at least the
        // epoch it was told about (broadcast happens after the swap, outside
        // the write lock).
        struct Loader(Arc<EpochStore>);
        impl EpochSink for Loader {
            fn notify(&self, epoch: u64) {
                assert!(self.0.load().epoch() >= epoch);
            }
        }
        let epochs = Arc::new(EpochStore::new(snapshot(4)));
        epochs.subscribe(Arc::new(Loader(Arc::clone(&epochs))));
        assert_eq!(epochs.publish(snapshot(6)), 2);
    }

    #[test]
    fn concurrent_loads_and_publishes_do_not_tear() {
        let epochs = EpochStore::new(snapshot(2));
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 2..30usize {
                    epochs.publish(snapshot(2 * i));
                }
            });
            for _ in 0..200 {
                let snap = epochs.load();
                // Every observed snapshot is internally consistent: a path
                // graph of n vertices always has n-1 edges.
                assert_eq!(snap.edge_count(), snap.vertex_count() - 1);
                // The counter never trails a snapshot this thread pinned.
                assert!(snap.epoch() <= epochs.current_epoch());
            }
        });
        assert_eq!(epochs.current_epoch(), 29);
    }
}
