//! Serving metrics: per-shard and aggregate reports.
//!
//! Latency figures come from the [`LatencyModel`](loom_sim::executor::LatencyModel)
//! the matcher already charges per traversal — the same cost model the rest
//! of `loom-sim` uses — so they are deterministic and include the simulated
//! network cost of remote hops. Throughput is reported both ways: the
//! **modelled** aggregate QPS (queries ÷ the makespan of the busiest shard
//! under the latency model — the simulated cluster's throughput, which is
//! what the paper's partitioning quality argument is about) and the raw
//! wall-clock QPS of this process for reference.

use loom_sim::executor::ExecutionMetrics;
use serde::{Deserialize, Serialize};

/// Per-shard serving metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardServeMetrics {
    /// Shard (worker) index.
    pub shard: u32,
    /// Queries this shard executed.
    pub queries: usize,
    /// Merged execution metrics over those queries.
    pub execution: ExecutionMetrics,
    /// Modelled busy time: the sum of per-query estimated latencies, µs.
    pub busy_us: f64,
    /// Median per-query modelled latency, µs.
    pub p50_latency_us: f64,
    /// 99th-percentile per-query modelled latency, µs.
    pub p99_latency_us: f64,
    /// Deepest the shard's work queue got (bounded by the configured
    /// capacity; hitting the bound means backpressure engaged).
    pub max_queue_depth: usize,
    /// 99th-percentile wall-clock wait of this shard's messages between
    /// enqueue and dequeue, µs — the queueing delay backpressure added on
    /// top of execution time.
    pub queue_wait_p99_us: f64,
    /// Requests routed to this shard but rejected at admission because the
    /// queue stayed full past the request deadline. Rejected requests still
    /// count in the aggregate (flagged `deadline_exceeded`, zero
    /// traversals); this counter says the *queue*, not the matcher, spent
    /// their budget.
    pub rejected: usize,
    /// Completed executions on this shard whose metrics came back flagged
    /// `deadline_exceeded` — the matcher's pre-flight short-circuit or a
    /// mid-run deadline unwind. Disjoint from `rejected` (those never reach
    /// a worker), so `rejected + deadline_expired` is the shard's full
    /// dropped-request count.
    pub deadline_expired: usize,
    /// The highest epoch sequence number this shard's queries were pinned to,
    /// or `None` for a shard that served nothing (an idle shard is thereby
    /// distinguishable from one genuinely pinned at epoch 0). Epoch sequences
    /// are monotonic across restarts — a recovered store resumes at its
    /// checkpointed `epoch_seq` — so recovered-vs-live runs are diffable by
    /// this number.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub epoch_seq: Option<u64>,
}

impl ShardServeMetrics {
    /// Modelled per-shard throughput: queries ÷ busy seconds (0 when idle).
    pub fn qps(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            self.queries as f64 / (self.busy_us / 1e6)
        }
    }

    /// Fraction of this shard's traversals that crossed partitions.
    pub fn remote_hop_fraction(&self) -> f64 {
        self.execution.inter_partition_probability()
    }
}

/// Per-run dropped-request accounting: how many of the run's requests were
/// rejected at admission or completed past their deadline. Open-loop
/// capacity steps assert against this ("≤ X% dropped") instead of scraping
/// per-shard counters or telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBudget {
    /// Requests the run issued (admitted + rejected + shed).
    pub requests: usize,
    /// Requests rejected at admission (full queue, or shed by an open-loop
    /// driver as hopelessly late) — they never reached a worker.
    pub rejected: usize,
    /// Requests that reached a worker but completed flagged
    /// `deadline_exceeded` (pre-flight short-circuit or mid-run unwind).
    pub deadline_expired: usize,
}

impl ErrorBudget {
    /// Total requests that did not complete a full execution in time.
    pub fn dropped(&self) -> usize {
        self.rejected + self.deadline_expired
    }

    /// Dropped requests as a fraction of issued requests (0.0 when idle).
    pub fn dropped_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.requests as f64
        }
    }

    /// Whether the run stayed within a budget of `max_fraction` dropped.
    pub fn within(&self, max_fraction: f64) -> bool {
        self.dropped_fraction() <= max_fraction
    }
}

/// The aggregate report one serving run produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-shard breakdown, indexed by worker shard.
    pub shards: Vec<ShardServeMetrics>,
    /// Execution metrics merged across every shard.
    pub aggregate: ExecutionMetrics,
    /// Total queries served.
    pub queries: usize,
    /// Modelled makespan: the busiest shard's busy time, µs. Shards run
    /// concurrently, so this is the simulated cluster's completion time.
    pub makespan_us: f64,
    /// Wall-clock duration of the run in this process, µs.
    pub wall_clock_us: f64,
    /// Wall-clock aggregate throughput (queries ÷ wall-clock seconds),
    /// carried on the report so callers stop re-deriving it. Populated at
    /// assembly; reports built by hand can leave it 0.0 and use
    /// [`ServeReport::wall_clock_qps`], which always derives from
    /// `wall_clock_us`.
    pub wall_clock_qps: f64,
    /// Median per-query modelled latency across all shards, µs.
    pub p50_latency_us: f64,
    /// 99th-percentile per-query modelled latency across all shards, µs.
    pub p99_latency_us: f64,
    /// Distinct epochs the run's queries were pinned to (a single-element
    /// list unless ingestion published new snapshots mid-run).
    pub epochs_observed: Vec<u64>,
    /// How many of the run's sampled executions hit each workload query,
    /// indexed by the workload's query order. This is the *observed* query
    /// mix — the signal the `loom-adapt` workload tracker compares against
    /// the mix the partitioning was mined for to detect drift.
    pub query_counts: Vec<usize>,
    /// Dropped-request accounting for the whole run (admission rejections +
    /// deadline-expired completions, summed across shards).
    pub error_budget: ErrorBudget,
}

impl ServeReport {
    /// Modelled aggregate throughput: queries ÷ makespan seconds. This is the
    /// number the shard-count sweep is about — more shards divide the same
    /// total work into a shorter makespan.
    pub fn aggregate_qps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            0.0
        } else {
            self.queries as f64 / (self.makespan_us / 1e6)
        }
    }

    /// Wall-clock throughput of this process (subject to host parallelism).
    pub fn wall_clock_qps(&self) -> f64 {
        if self.wall_clock_us <= 0.0 {
            0.0
        } else {
            self.queries as f64 / (self.wall_clock_us / 1e6)
        }
    }

    /// Fraction of all traversals that crossed partitions.
    pub fn remote_hop_fraction(&self) -> f64 {
        self.aggregate.inter_partition_probability()
    }
}

/// Sort a latency sample in place, once, so any number of
/// [`sorted_quantile`] reads follow for free. Callers that want p50 *and*
/// p99 from one buffer pay one sort instead of one per quantile.
pub fn sort_samples(samples: &mut [f64]) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
}

/// The `q`-th quantile (0.0 ≤ q ≤ 1.0) of an **already sorted** sample, by
/// the nearest-rank method. Returns 0.0 for an empty sample — the guard
/// matters because idle shards (a worker that served zero queries)
/// legitimately hand this function an empty latency vector; without it the
/// computed rank would index `samples[0]` and panic.
pub fn sorted_quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(samples.len() - 1);
    samples[rank]
}

/// One-shot convenience: [`sort_samples`] then [`sorted_quantile`]. For a
/// single quantile this is fine; for several from the same buffer, sort once
/// and use [`sorted_quantile`] directly.
pub fn quantile(samples: &mut [f64], q: f64) -> f64 {
    sort_samples(samples);
    sorted_quantile(samples, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_by_nearest_rank() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&mut s, 0.5), 3.0);
        assert_eq!(quantile(&mut s, 0.99), 5.0);
        assert_eq!(quantile(&mut s, 0.0), 1.0);
        assert_eq!(quantile(&mut [], 0.5), 0.0);
    }

    #[test]
    fn sort_once_answers_every_quantile() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        sort_samples(&mut s);
        assert_eq!(s, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(sorted_quantile(&s, 0.5), 3.0);
        assert_eq!(sorted_quantile(&s, 0.99), 5.0);
        assert_eq!(sorted_quantile(&s, 0.0), 1.0);
        assert_eq!(sorted_quantile(&[], 0.99), 0.0);
    }

    #[test]
    fn shard_qps_and_remote_fraction() {
        let m = ShardServeMetrics {
            shard: 0,
            queries: 100,
            execution: ExecutionMetrics {
                queries_executed: 100,
                total_traversals: 10,
                remote_traversals: 4,
                ..ExecutionMetrics::default()
            },
            busy_us: 2_000_000.0,
            ..ShardServeMetrics::default()
        };
        assert!((m.qps() - 50.0).abs() < 1e-9);
        assert!((m.remote_hop_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(ShardServeMetrics::default().qps(), 0.0);
    }

    #[test]
    fn empty_samples_never_index_out_of_bounds() {
        // Regression: every quantile of an empty sample is 0.0, including the
        // extremes whose nearest rank would otherwise read samples[0].
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(quantile(&mut [], q), 0.0);
        }
        // A single sample answers every quantile with itself.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(quantile(&mut [7.5], q), 7.5);
        }
    }

    #[test]
    fn zero_query_shard_reports_zeros() {
        // A shard that served nothing: no latency samples, no busy time.
        let idle = ShardServeMetrics {
            shard: 3,
            ..ShardServeMetrics::default()
        };
        assert_eq!(idle.queries, 0);
        assert_eq!(idle.qps(), 0.0);
        assert_eq!(idle.p50_latency_us, 0.0);
        assert_eq!(idle.p99_latency_us, 0.0);
        assert_eq!(idle.remote_hop_fraction(), 0.0);
    }

    #[test]
    fn report_throughputs() {
        let report = ServeReport {
            queries: 300,
            makespan_us: 1_500_000.0,
            wall_clock_us: 3_000_000.0,
            ..ServeReport::default()
        };
        assert!((report.aggregate_qps() - 200.0).abs() < 1e-9);
        assert!((report.wall_clock_qps() - 100.0).abs() < 1e-9);
        assert_eq!(ServeReport::default().aggregate_qps(), 0.0);
    }

    #[test]
    fn error_budget_fractions() {
        let budget = ErrorBudget {
            requests: 200,
            rejected: 6,
            deadline_expired: 4,
        };
        assert_eq!(budget.dropped(), 10);
        assert!((budget.dropped_fraction() - 0.05).abs() < 1e-12);
        assert!(budget.within(0.05));
        assert!(!budget.within(0.049));
        // An idle run dropped nothing and fits any budget, including zero.
        assert_eq!(ErrorBudget::default().dropped_fraction(), 0.0);
        assert!(ErrorBudget::default().within(0.0));
    }
}
