//! The shard transport: message-passing between the serving coordinator and
//! its shard workers.
//!
//! Before this layer existed, "distributed" serving was a rewrite: workers
//! shared one address space, reached into shared queues and peeked at a
//! shared `RwLock` for epoch swaps. [`ShardTransport`] puts a wire-shaped
//! boundary in between. Everything that crosses it is a [`ShardMsg`] — a
//! routed query request, a halo-crossing sub-query handoff, a per-shard
//! metric report, an epoch-publication notice — and every payload is plain
//! serde-serializable data: vertex ids, seeds, metric structs, relative
//! deadlines in microseconds. **No `Arc<ShardedStore>` or any other
//! shared-memory handle crosses the trait**; a worker's snapshot is handed
//! to it at spawn and refreshed when an [`ShardMsg::EpochPublished`] notice
//! arrives, never by dereferencing shared state mid-run. Swapping the
//! in-process implementation ([`InProcTransport`]) for a socket is a
//! transport change, not an engine rewrite — which is the whole point.
//!
//! The in-process implementation is a hub: one bounded [`ShardQueue`] per
//! worker (coordinator → worker) plus one shared inbox every worker sends
//! into (worker → coordinator). Sends are deadline-aware — backpressure can
//! reject instead of wedging admission — and the receive side measures the
//! wall-clock time each message sat queued, which is where the per-shard
//! `queue_wait_p99` figure comes from.

use crate::epoch::EpochSink;
use crate::queue::{PopError, PushError, ShardQueue};
use loom_graph::VertexId;
use loom_obs::{stage, Histogram, Telemetry};
use loom_sim::executor::ExecutionMetrics;
use loom_sim::matcher::Embedding;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One routed query execution: coordinator → home worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTaskMsg {
    /// Position in the run's admission order; results are re-assembled (and
    /// the match cursor ordered) by this sequence number.
    pub seq: u64,
    /// Index into the workload's query list (both sides hold the same
    /// compiled plan table for the run).
    pub query: u32,
    /// Deterministic root seed (`run_seed + seq + 1`, the scheme every
    /// engine shares).
    pub root_seed: u64,
    /// Request deadline as microseconds since the run's start instant, or
    /// `None` for unbounded. `Instant`s do not serialise; a run-relative
    /// offset survives a wire hop and both ends reconstruct the absolute
    /// deadline from their copy of the run start.
    pub deadline_us: Option<u64>,
}

/// A halo-crossing sub-query handoff: the home worker ships the roots it
/// does **not** own to the worker that owns them (relayed through the
/// coordinator), instead of traversing into replicated halo state itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubQueryMsg {
    /// Admission sequence of the parent query.
    pub seq: u64,
    /// Index into the workload's query list.
    pub query: u32,
    /// Worker that should execute these roots.
    pub target_worker: u32,
    /// Worker that issued the handoff (the query's home).
    pub origin_worker: u32,
    /// `(rank, root)` pairs: `rank` is the root's position in the parent
    /// execution's full candidate list, so merged embeddings keep the exact
    /// enumeration order a single-worker execution would produce.
    pub roots: Vec<(u32, VertexId)>,
    /// Parent request deadline, microseconds since run start.
    pub deadline_us: Option<u64>,
}

/// One finished (or partial) execution: worker → coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryDoneMsg {
    /// Worker that executed this piece.
    pub worker: u32,
    /// Admission sequence of the query.
    pub seq: u64,
    /// Epoch of the snapshot the piece executed against.
    pub epoch: u64,
    /// `true` for a sub-query partial; `false` for the home execution.
    pub partial: bool,
    /// Number of sub-query handoffs the home execution issued (home results
    /// only); the coordinator completes the query once it holds the home
    /// result plus this many partials.
    pub handoffs: u32,
    /// Metrics of this piece (raw; the coordinator normalises per-query
    /// counts when merging handoff partials).
    pub metrics: ExecutionMetrics,
    /// Collected embeddings tagged with an order key (root rank and
    /// discovery index), so the merged cursor is deterministic however the
    /// pieces raced.
    pub embeddings: Vec<(u64, Embedding)>,
}

/// End-of-run shard summary: worker → coordinator, in reply to
/// [`ShardMsg::Finish`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReportMsg {
    /// Reporting worker.
    pub worker: u32,
    /// Queries the worker executed (home executions; sub-query partials are
    /// accounted to their home query).
    pub queries: usize,
    /// Median wall-clock time messages sat in this worker's inbox, µs.
    pub queue_wait_p50_us: f64,
    /// 99th-percentile wall-clock inbox wait, µs.
    pub queue_wait_p99_us: f64,
    /// Deepest the worker's inbox got.
    pub max_inbox_depth: usize,
}

/// Everything that crosses a [`ShardTransport`]: plain serialisable data,
/// never a shared-memory handle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardMsg {
    /// Coordinator → worker: execute one routed query.
    Query(QueryTaskMsg),
    /// Worker → coordinator → worker: halo-crossing sub-query handoff. A
    /// worker addresses the message; the coordinator relays it to
    /// `target_worker` (workers hold no direct links to each other).
    SubQuery(SubQueryMsg),
    /// Worker → coordinator: a query (or sub-query partial) finished.
    Done(QueryDoneMsg),
    /// Worker → coordinator: final shard summary, in reply to `Finish`.
    Report(ShardReportMsg),
    /// Broadcast: a new snapshot epoch is loadable. Workers re-pin on this
    /// notice instead of peeking at shared state.
    EpochPublished {
        /// The freshly published epoch number.
        epoch: u64,
    },
    /// Coordinator → worker: cooperatively cancel the current run's
    /// in-flight executions.
    Cancel,
    /// Coordinator → worker: no more work is coming; reply with `Report`
    /// and exit.
    Finish,
}

/// Why a send was refused; the undelivered message is handed back (boxed,
/// so the error stays pointer-sized on the happy path).
#[derive(Debug)]
pub enum TransportError {
    /// The peer's inbox stayed full past the send deadline (backpressure).
    Timeout(Box<ShardMsg>),
    /// The endpoint (or its peer) has shut down.
    Closed(Box<ShardMsg>),
}

impl TransportError {
    /// Recover the message the transport refused to carry.
    pub fn into_msg(self) -> ShardMsg {
        match self {
            TransportError::Timeout(msg) | TransportError::Closed(msg) => *msg,
        }
    }
}

/// Why a receive returned empty-handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Nothing arrived before the deadline; the endpoint is still live.
    Timeout,
    /// The endpoint has shut down and its backlog is drained.
    Disconnected,
}

/// Counters and queue-wait quantiles one endpoint observed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Messages sent through this endpoint.
    pub sent: usize,
    /// Messages received by this endpoint.
    pub received: usize,
    /// Deepest this endpoint's receive queue got.
    pub max_recv_depth: usize,
    /// Median wall-clock time received messages spent queued, µs.
    pub queue_wait_p50_us: f64,
    /// 99th-percentile wall-clock time received messages spent queued, µs.
    pub queue_wait_p99_us: f64,
}

/// An object-safe, duplex message channel between the serving coordinator
/// and one shard worker.
///
/// The contract is deliberately wire-shaped: every [`ShardMsg`] payload is
/// serde-serializable plain data, deadlines are explicit per call, and the
/// only shared state between the two ends of a conversation is whatever the
/// implementation carries *inside* itself. An implementation backed by a
/// socket pair satisfies the same trait; the in-process one is
/// [`InProcTransport`].
pub trait ShardTransport: Send + Sync {
    /// Send a message, blocking under backpressure until `deadline`
    /// (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if the peer's inbox stayed full past the
    /// deadline, [`TransportError::Closed`] if the link is down; both hand
    /// the message back.
    fn send(&self, msg: ShardMsg, deadline: Option<Instant>) -> Result<(), TransportError>;

    /// Receive the next message, blocking until `deadline` (`None` blocks
    /// indefinitely).
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] once the link is down and drained.
    fn recv(&self, deadline: Option<Instant>) -> Result<ShardMsg, RecvError>;

    /// Non-blocking send: deliver only if the peer's inbox has room right
    /// now. Used for notices that are safe to drop (epoch publications,
    /// cancellation nudges whose state also travels out-of-band).
    ///
    /// # Errors
    ///
    /// Same as [`ShardTransport::send`] with an immediate deadline.
    fn try_send(&self, msg: ShardMsg) -> Result<(), TransportError> {
        self.send(msg, Some(Instant::now()))
    }

    /// Tear down this endpoint's receive side: pending messages are still
    /// drained, further sends *to* this endpoint fail, and blocked receivers
    /// wake up.
    fn shutdown(&self);

    /// Counters and queue-wait quantiles this endpoint observed. The
    /// default is all-zero for implementations that do not measure.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// A queued message plus its enqueue instant (for queue-wait accounting).
/// The envelope is in-process plumbing, not part of the wire shape — a
/// socket implementation would timestamp on receipt instead.
#[derive(Debug)]
struct Envelope {
    msg: ShardMsg,
    enqueued: Instant,
}

/// One end of an in-process shard link: a pair of bounded [`ShardQueue`]s
/// (send side and receive side) plus receive-wait accounting.
#[derive(Debug)]
pub struct InProcEndpoint {
    tx: Arc<ShardQueue<Envelope>>,
    rx: Arc<ShardQueue<Envelope>>,
    sent: AtomicUsize,
    received: AtomicUsize,
    waits_us: parking_lot::Mutex<Vec<f64>>,
    /// Live telemetry: each receive's queue wait also lands in this shared
    /// `serve.queue_wait{shard}` histogram, so the series is scrapable
    /// mid-run instead of only in the end-of-run report.
    wait_hist: Option<Arc<Histogram>>,
}

impl InProcEndpoint {
    fn new(tx: Arc<ShardQueue<Envelope>>, rx: Arc<ShardQueue<Envelope>>) -> Self {
        Self {
            tx,
            rx,
            sent: AtomicUsize::new(0),
            received: AtomicUsize::new(0),
            waits_us: parking_lot::Mutex::new(Vec::new()),
            wait_hist: None,
        }
    }

    fn observed(mut self, wait_hist: Option<Arc<Histogram>>) -> Self {
        self.wait_hist = wait_hist;
        self
    }

    /// Deepest the *send-side* queue (the peer's inbox) got — the
    /// coordinator reads this per worker for the serving report.
    pub fn peer_inbox_depth(&self) -> usize {
        self.tx.max_depth()
    }
}

impl ShardTransport for InProcEndpoint {
    fn send(&self, msg: ShardMsg, deadline: Option<Instant>) -> Result<(), TransportError> {
        let envelope = Envelope {
            msg,
            enqueued: Instant::now(),
        };
        match self.tx.push_deadline(envelope, deadline) {
            Ok(()) => {
                self.sent.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(PushError::Timeout(envelope)) => {
                Err(TransportError::Timeout(Box::new(envelope.msg)))
            }
            Err(PushError::Closed(envelope)) => Err(TransportError::Closed(Box::new(envelope.msg))),
        }
    }

    fn recv(&self, deadline: Option<Instant>) -> Result<ShardMsg, RecvError> {
        match self.rx.pop_deadline(deadline) {
            Ok(envelope) => {
                self.received.fetch_add(1, Ordering::Relaxed);
                let wait_us = envelope.enqueued.elapsed().as_secs_f64() * 1e6;
                self.waits_us.lock().push(wait_us);
                if let Some(hist) = &self.wait_hist {
                    hist.record_f64(wait_us);
                }
                Ok(envelope.msg)
            }
            Err(PopError::Timeout) => Err(RecvError::Timeout),
            Err(PopError::Closed) => Err(RecvError::Disconnected),
        }
    }

    fn shutdown(&self) {
        self.rx.close();
    }

    fn stats(&self) -> TransportStats {
        let mut waits = self.waits_us.lock().clone();
        // One sort answers both quantiles.
        crate::metrics::sort_samples(&mut waits);
        TransportStats {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            max_recv_depth: self.rx.max_depth(),
            queue_wait_p50_us: crate::metrics::sorted_quantile(&waits, 0.50),
            queue_wait_p99_us: crate::metrics::sorted_quantile(&waits, 0.99),
        }
    }
}

/// An [`EpochSink`] that turns each publication into a non-blocking
/// [`ShardMsg::EpochPublished`] notice on the coordinator's inbox. Dropped
/// when the inbox is full or closed — a notice only says "something newer
/// exists" and is superseded by the next publish.
#[derive(Debug)]
pub struct InboxNoticeSink {
    inbox: Arc<ShardQueue<Envelope>>,
}

impl EpochSink for InboxNoticeSink {
    fn notify(&self, epoch: u64) {
        let envelope = Envelope {
            msg: ShardMsg::EpochPublished { epoch },
            enqueued: Instant::now(),
        };
        let _ = self.inbox.push_deadline(envelope, Some(Instant::now()));
    }
}

/// The wired-up in-process transport for one serving run: one coordinator
/// endpoint per worker plus the matching worker endpoints. All
/// worker→coordinator traffic lands in a single shared inbox (the
/// [`ShardQueue`] is multi-producer), which every coordinator endpoint
/// receives from.
#[derive(Debug)]
pub struct InProcHub {
    /// Coordinator-side endpoints, indexed by worker: endpoint `i` sends to
    /// worker `i`'s inbox and receives from the shared coordinator inbox.
    pub coordinator: Vec<InProcEndpoint>,
    /// Worker-side endpoints, indexed by worker: endpoint `i` receives from
    /// its own inbox and sends to the shared coordinator inbox.
    pub workers: Vec<InProcEndpoint>,
    inbox: Arc<ShardQueue<Envelope>>,
}

impl InProcHub {
    /// An [`EpochSink`] feeding epoch-publication notices into the
    /// coordinator's inbox.
    pub fn notice_sink(&self) -> Arc<InboxNoticeSink> {
        Arc::new(InboxNoticeSink {
            inbox: Arc::clone(&self.inbox),
        })
    }
}

/// Factory for the in-process [`ShardTransport`] implementation.
#[derive(Debug, Clone, Copy)]
pub struct InProcTransport;

impl InProcTransport {
    /// Build a coordinator↔workers hub: `workers` bounded per-worker inboxes
    /// of `capacity` entries each, plus a shared coordinator inbox sized so
    /// workers returning results do not deadlock against a coordinator that
    /// is momentarily busy routing.
    pub fn hub(workers: usize, capacity: usize) -> InProcHub {
        Self::hub_observed(workers, capacity, None)
    }

    /// Like [`InProcTransport::hub`], with live telemetry: each worker
    /// endpoint's receives charge their queue wait into that shard's
    /// `serve.queue_wait{shard}` histogram. `None` builds the exact
    /// uninstrumented hub.
    pub fn hub_observed(
        workers: usize,
        capacity: usize,
        telemetry: Option<&Telemetry>,
    ) -> InProcHub {
        let workers = workers.max(1);
        let capacity = capacity.max(1);
        // Every worker can have its whole inbox's worth of results plus a
        // report in flight; the coordinator drains aggressively, but sizing
        // the inbox for the worst case keeps the protocol deadlock-free by
        // construction rather than by timing.
        let inbox = Arc::new(ShardQueue::new(workers * (capacity + 2)));
        let mut coordinator = Vec::with_capacity(workers);
        let mut worker_ends = Vec::with_capacity(workers);
        for w in 0..workers {
            let worker_inbox = Arc::new(ShardQueue::new(capacity));
            coordinator.push(InProcEndpoint::new(
                Arc::clone(&worker_inbox),
                Arc::clone(&inbox),
            ));
            let wait_hist = telemetry.map(|t| t.shard_histogram(stage::SERVE_QUEUE_WAIT, w as u32));
            worker_ends
                .push(InProcEndpoint::new(Arc::clone(&inbox), worker_inbox).observed(wait_hist));
        }
        InProcHub {
            coordinator,
            workers: worker_ends,
            inbox,
        }
    }

    /// A simple duplex endpoint pair (a ↔ b) for tests and tools.
    pub fn pair(capacity: usize) -> (InProcEndpoint, InProcEndpoint) {
        let ab = Arc::new(ShardQueue::new(capacity.max(1)));
        let ba = Arc::new(ShardQueue::new(capacity.max(1)));
        (
            InProcEndpoint::new(Arc::clone(&ab), Arc::clone(&ba)),
            InProcEndpoint::new(ba, ab),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The trait must stay object-safe: the worker loop takes
    /// `&dyn ShardTransport`.
    #[test]
    fn shard_transport_is_object_safe() {
        let (a, _b) = InProcTransport::pair(2);
        let dynamic: &dyn ShardTransport = &a;
        dynamic.send(ShardMsg::Finish, None).unwrap();
        let _: Option<Box<dyn ShardTransport>> = None;
    }

    #[test]
    fn pair_roundtrips_messages_in_order() {
        let (a, b) = InProcTransport::pair(4);
        a.send(ShardMsg::EpochPublished { epoch: 7 }, None).unwrap();
        a.send(ShardMsg::Cancel, None).unwrap();
        assert_eq!(b.recv(None), Ok(ShardMsg::EpochPublished { epoch: 7 }));
        assert_eq!(b.recv(None), Ok(ShardMsg::Cancel));
        let stats = b.stats();
        assert_eq!(stats.received, 2);
        assert!(stats.queue_wait_p99_us >= stats.queue_wait_p50_us);
        assert_eq!(a.stats().sent, 2);
    }

    #[test]
    fn sends_time_out_under_backpressure_and_fail_after_shutdown() {
        let (a, b) = InProcTransport::pair(1);
        a.send(ShardMsg::Finish, None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(5);
        match a.send(ShardMsg::Cancel, Some(deadline)) {
            Err(TransportError::Timeout(msg)) => assert_eq!(*msg, ShardMsg::Cancel),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(matches!(
            a.try_send(ShardMsg::Cancel),
            Err(TransportError::Timeout(_))
        ));
        // Shutdown closes b's receive side: the backlog drains, then sends
        // to b fail as Closed.
        b.shutdown();
        assert_eq!(b.recv(None), Ok(ShardMsg::Finish));
        assert_eq!(b.recv(None), Err(RecvError::Disconnected));
        match a.send(ShardMsg::Cancel, None) {
            Err(TransportError::Closed(msg)) => {
                assert_eq!(*msg, ShardMsg::Cancel);
                assert_eq!(TransportError::Closed(msg).into_msg(), ShardMsg::Cancel);
            }
            other => panic!("expected closed, got {other:?}"),
        }
    }

    #[test]
    fn recv_deadline_distinguishes_timeout_from_disconnect() {
        let (a, b) = InProcTransport::pair(2);
        let deadline = Instant::now() + Duration::from_millis(5);
        assert_eq!(b.recv(Some(deadline)), Err(RecvError::Timeout));
        a.send(ShardMsg::Finish, None).unwrap();
        assert_eq!(
            b.recv(Some(Instant::now() + Duration::from_secs(5))),
            Ok(ShardMsg::Finish)
        );
    }

    #[test]
    fn hub_routes_worker_traffic_into_one_coordinator_inbox() {
        let hub = InProcTransport::hub(3, 4);
        assert_eq!(hub.coordinator.len(), 3);
        assert_eq!(hub.workers.len(), 3);
        for (w, endpoint) in hub.workers.iter().enumerate() {
            endpoint
                .send(
                    ShardMsg::Report(ShardReportMsg {
                        worker: w as u32,
                        queries: w,
                        queue_wait_p50_us: 0.0,
                        queue_wait_p99_us: 0.0,
                        max_inbox_depth: 0,
                    }),
                    None,
                )
                .unwrap();
        }
        // Any coordinator endpoint receives from the shared inbox.
        let mut seen = Vec::new();
        for _ in 0..3 {
            match hub.coordinator[0].recv(None) {
                Ok(ShardMsg::Report(report)) => seen.push(report.worker),
                other => panic!("unexpected {other:?}"),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        // Coordinator → worker links are private per worker.
        hub.coordinator[1].send(ShardMsg::Finish, None).unwrap();
        assert_eq!(hub.workers[1].recv(None), Ok(ShardMsg::Finish));
        assert_eq!(
            hub.workers[0].recv(Some(Instant::now())),
            Err(RecvError::Timeout)
        );
        assert!(hub.coordinator[1].peer_inbox_depth() >= 1);
    }

    #[test]
    fn observed_hub_charges_queue_waits_into_the_shard_histogram() {
        let telemetry = Telemetry::new();
        let hub = InProcTransport::hub_observed(2, 4, Some(&telemetry));
        hub.coordinator[1].send(ShardMsg::Finish, None).unwrap();
        assert_eq!(hub.workers[1].recv(None), Ok(ShardMsg::Finish));
        let waits = telemetry.shard_histogram(stage::SERVE_QUEUE_WAIT, 1);
        assert_eq!(waits.count(), 1);
        // The other shard received nothing; its series stays empty.
        let idle = telemetry.shard_histogram(stage::SERVE_QUEUE_WAIT, 0);
        assert_eq!(idle.count(), 0);
    }

    #[test]
    fn notice_sink_drops_when_the_inbox_is_full() {
        let hub = InProcTransport::hub(1, 1);
        let sink = hub.notice_sink();
        // Capacity of the shared inbox for one worker at capacity 1 is 3.
        for epoch in 0..10 {
            crate::epoch::EpochSink::notify(&*sink, epoch);
        }
        let mut got = 0;
        while hub.coordinator[0].recv(Some(Instant::now())).is_ok() {
            got += 1;
        }
        assert!((1..=3).contains(&got), "bounded, drop-on-full: got {got}");
    }
}
