//! The shard worker: one independent event loop per worker shard.
//!
//! A worker owns no shared serving state. It pins its snapshot at spawn,
//! then reacts purely to [`ShardMsg`]s arriving over its transport
//! endpoint: routed queries execute against the pinned snapshot under the
//! request's [`RequestContext`] (deadline + cancellation threaded down into
//! the matcher's traversal checks), epoch-publication notices trigger a
//! re-pin, sub-query handoffs execute borrowed roots on behalf of another
//! worker's query, and `Finish` flushes a final shard report before the
//! loop exits. The loop takes `&dyn ShardTransport` — it compiles against
//! the trait object, which is the object-safety proof that a socket-backed
//! transport drops in without touching this file.

use crate::engine::{RunOptions, Source};
use crate::shard::ShardedStore;
use crate::transport::{
    QueryDoneMsg, QueryTaskMsg, RecvError, ShardMsg, ShardReportMsg, ShardTransport, SubQueryMsg,
};
use loom_graph::VertexId;
use loom_obs::{Histogram, SpanTimer};
use loom_sim::context::{CancelToken, RequestContext};
use loom_sim::executor::ExecutionMetrics;
use loom_sim::matcher::{
    execute_plan_ctx, execute_plan_with_roots, plan_roots, Embedding, ExecOptions,
};
use loom_sim::plan::QueryPlan;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a worker is handed at spawn. Deliberately snapshot-free
/// beyond the `Source` it pins from: queries, deadlines and epoch changes
/// all arrive as messages.
pub(crate) struct WorkerSetup<'a> {
    /// This worker's index.
    pub worker: u32,
    /// Total workers in the run (for the shard→worker mapping of handoffs).
    pub workers: u32,
    /// Effective run options (engine config + request overrides).
    pub options: RunOptions,
    /// Whether halo-crossing roots are handed off to their owning worker
    /// instead of being traversed via replicated halo state.
    pub handoff: bool,
    /// The run's resolved plans, indexed by workload query.
    pub plans: &'a [Option<Arc<QueryPlan>>],
    /// The instant message deadlines (`deadline_us`) are relative to.
    pub run_start: Instant,
    /// The run's cancellation token (shared with the coordinator; a
    /// `ShardMsg::Cancel` fires it too, for transports where the two sides
    /// do not share memory).
    pub cancel: CancelToken,
    /// `serve.execute{shard}` histogram each query execution's wall clock is
    /// charged into; `None` (telemetry off) skips even the clock read.
    pub exec_hist: Option<Arc<Histogram>>,
    /// `serve.halo_handoff{shard}` histogram for borrowed-root sub-query
    /// executions this worker runs on another query's behalf.
    pub halo_hist: Option<Arc<Histogram>>,
}

impl WorkerSetup<'_> {
    /// Reconstruct the absolute request context for a run-relative deadline.
    fn context_for(&self, deadline_us: Option<u64>) -> RequestContext {
        let mut ctx = RequestContext::unbounded().with_cancel(self.cancel.clone());
        ctx.deadline = deadline_us.map(|us| self.run_start + Duration::from_micros(us));
        ctx
    }

    fn exec_options(&self, root_seed: u64) -> ExecOptions {
        ExecOptions {
            mode: self.options.mode,
            match_limit: self.options.match_limit,
            traversal_budget: self.options.traversal_budget,
            latency: self.options.latency,
            root_seed,
            collect: self.options.collect,
        }
    }
}

/// Run one worker until `Finish` arrives (or the link drops).
pub(crate) fn worker_loop(
    transport: &dyn ShardTransport,
    source: &Source<'_>,
    setup: WorkerSetup<'_>,
) {
    // Pin once at spawn; re-pin only when an epoch-publication notice says
    // something newer exists. Queries never peek at shared state.
    let mut snapshot = source.pin();
    let mut executed = 0usize;
    loop {
        let msg = match transport.recv(None) {
            Ok(msg) => msg,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Disconnected) => break,
        };
        match msg {
            ShardMsg::Query(task) => {
                executed += 1;
                let span = SpanTimer::start(setup.exec_hist.as_deref());
                let done = execute_query(transport, &snapshot, &setup, &task);
                drop(span);
                // Service-time emulation for capacity runs: hold the shard
                // for the query's modelled latency (scaled) before reporting
                // completion, so occupancy — and therefore the measured
                // saturation knee — tracks the latency model. Sleeping keeps
                // shards overlappable on any core count.
                if let Some(scale) = setup.options.hold_scale {
                    let hold_us = done.metrics.estimated_latency_us * scale;
                    if hold_us >= 1.0 {
                        std::thread::sleep(Duration::from_micros(hold_us.min(5e6) as u64));
                    }
                }
                let _ = transport.send(ShardMsg::Done(done), None);
            }
            ShardMsg::SubQuery(sub) => {
                let span = SpanTimer::start(setup.halo_hist.as_deref());
                let done = execute_subquery(&snapshot, &setup, &sub);
                drop(span);
                let _ = transport.send(ShardMsg::Done(done), None);
            }
            ShardMsg::EpochPublished { .. } => {
                snapshot = source.pin();
            }
            ShardMsg::Cancel => setup.cancel.cancel(),
            ShardMsg::Finish => {
                let stats = transport.stats();
                let _ = transport.send(
                    ShardMsg::Report(ShardReportMsg {
                        worker: setup.worker,
                        queries: executed,
                        queue_wait_p50_us: stats.queue_wait_p50_us,
                        queue_wait_p99_us: stats.queue_wait_p99_us,
                        max_inbox_depth: stats.max_recv_depth,
                    }),
                    None,
                );
                break;
            }
            // Done/Report travel worker → coordinator only; a worker that
            // receives one ignores it rather than wedging the loop.
            ShardMsg::Done(_) | ShardMsg::Report(_) => {}
        }
    }
}

/// Execute one routed query on this worker, possibly handing off
/// halo-crossing roots, and build its `Done` message.
fn execute_query(
    transport: &dyn ShardTransport,
    snapshot: &Arc<ShardedStore>,
    setup: &WorkerSetup<'_>,
    task: &QueryTaskMsg,
) -> QueryDoneMsg {
    let ctx = setup.context_for(task.deadline_us);
    let plan = setup.plans[task.query as usize]
        .as_ref()
        .expect("scheduled plan");
    let opts = setup.exec_options(task.root_seed);

    if setup.handoff {
        let roots = plan_roots(snapshot.as_ref(), plan, opts.mode, opts.root_seed);
        let (local, remote) = split_roots(snapshot, &roots, setup.workers, setup.worker);
        if !remote.is_empty() {
            // Ship the roots other workers own before doing local work, so
            // the borrowed executions overlap with ours. Blocking send is
            // safe: the coordinator relay drains its inbox while it routes.
            let handoffs = remote.len() as u32;
            for (target, group) in remote {
                let _ = transport.send(
                    ShardMsg::SubQuery(SubQueryMsg {
                        seq: task.seq,
                        query: task.query,
                        target_worker: target,
                        origin_worker: setup.worker,
                        roots: group,
                        deadline_us: task.deadline_us,
                    }),
                    None,
                );
            }
            let (metrics, embeddings) = execute_ranked(snapshot, plan, &opts, &ctx, &local);
            return QueryDoneMsg {
                worker: setup.worker,
                seq: task.seq,
                epoch: snapshot.epoch(),
                partial: false,
                handoffs,
                metrics,
                embeddings,
            };
        }
        // All roots are local: fall through to the plain single-execution
        // path, which is bit-identical to handoff-disabled serving.
    }

    let exec = execute_plan_ctx(snapshot.as_ref(), plan, &opts, &ctx);
    QueryDoneMsg {
        worker: setup.worker,
        seq: task.seq,
        epoch: snapshot.epoch(),
        partial: false,
        handoffs: 0,
        metrics: exec.metrics,
        embeddings: exec
            .embeddings
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u64, e))
            .collect(),
    }
}

/// Execute borrowed roots on behalf of another worker's query.
fn execute_subquery(
    snapshot: &Arc<ShardedStore>,
    setup: &WorkerSetup<'_>,
    sub: &SubQueryMsg,
) -> QueryDoneMsg {
    let ctx = setup.context_for(sub.deadline_us);
    let plan = setup.plans[sub.query as usize]
        .as_ref()
        .expect("scheduled plan");
    let opts = setup.exec_options(0);
    let (metrics, embeddings) = execute_ranked(snapshot, plan, &opts, &ctx, &sub.roots);
    QueryDoneMsg {
        worker: setup.worker,
        seq: sub.seq,
        epoch: snapshot.epoch(),
        partial: true,
        handoffs: 0,
        metrics,
        embeddings,
    }
}

/// Anchor roots tagged with their enumeration rank.
type RankedRoots = Vec<(u32, VertexId)>;

/// Partition a query's anchor roots by owning worker: `(rank, root)` pairs
/// this worker keeps, and per-target groups to hand off. Roots with no home
/// shard (halo-only or unassigned) stay local.
fn split_roots(
    snapshot: &ShardedStore,
    roots: &[VertexId],
    workers: u32,
    me: u32,
) -> (RankedRoots, BTreeMap<u32, RankedRoots>) {
    let mut local = Vec::new();
    let mut remote: BTreeMap<u32, RankedRoots> = BTreeMap::new();
    for (rank, &root) in roots.iter().enumerate() {
        let target = snapshot
            .home_shard(root)
            .map(|p| (p.index() as u32) % workers.max(1))
            .unwrap_or(me);
        if target == me {
            local.push((rank as u32, root));
        } else {
            remote.entry(target).or_default().push((rank as u32, root));
        }
    }
    (local, remote)
}

/// Execute a set of ranked roots one by one, merging metrics and tagging
/// each embedding with `(rank << 32) | discovery_index` so the coordinator
/// reassembles the cursor in exact enumeration order.
fn execute_ranked(
    snapshot: &Arc<ShardedStore>,
    plan: &QueryPlan,
    opts: &ExecOptions,
    ctx: &RequestContext,
    roots: &[(u32, VertexId)],
) -> (ExecutionMetrics, Vec<(u64, Embedding)>) {
    let mut metrics = ExecutionMetrics::default();
    let mut embeddings = Vec::new();
    for &(rank, root) in roots {
        let exec = execute_plan_with_roots(snapshot.as_ref(), plan, opts, ctx, &[root]);
        metrics.merge(&exec.metrics);
        embeddings.extend(
            exec.embeddings
                .into_iter()
                .enumerate()
                .map(|(i, e)| ((u64::from(rank) << 32) | (i as u64 & 0xffff_ffff), e)),
        );
    }
    (metrics, embeddings)
}
