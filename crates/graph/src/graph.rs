//! The mutable labelled graph used throughout LOOM.
//!
//! [`LabelledGraph`] matches the paper's Definition of a labelled graph
//! `G = (V, E, L_V, f_l)`: a vertex set, an undirected edge set, and a
//! surjective mapping of vertices to labels. It is an adjacency-list
//! structure optimised for the operations the streaming partitioner and the
//! motif matcher need: add vertex/edge, neighbourhood iteration, degree and
//! label lookups, and induced sub-graph extraction.

use crate::error::{GraphError, Result};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{EdgeKey, Label, VertexId};
use serde::{Deserialize, Serialize};

/// An undirected, vertex-labelled graph.
///
/// Self-loops and parallel edges are rejected: the partitioning model in the
/// paper treats edges as unordered vertex pairs and a self-loop can never be
/// cut, so neither contributes anything to the problem.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelledGraph {
    labels: FxHashMap<VertexId, Label>,
    adjacency: FxHashMap<VertexId, Vec<VertexId>>,
    edges: FxHashSet<EdgeKey>,
    next_id: u64,
}

impl LabelledGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty graph with capacity reserved for roughly
    /// `vertices` vertices and `edges` edges.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        Self {
            labels: FxHashMap::with_capacity_and_hasher(vertices, Default::default()),
            adjacency: FxHashMap::with_capacity_and_hasher(vertices, Default::default()),
            edges: FxHashSet::with_capacity_and_hasher(edges, Default::default()),
            next_id: 0,
        }
    }

    /// Rebuild a graph from explicit per-vertex adjacency lists (e.g. when
    /// loading a checkpoint blob), **preserving each list's order** as the
    /// graph's neighbour-iteration order. This matters because downstream
    /// CSR snapshots inherit [`LabelledGraph::neighbors`] order, and match
    /// enumeration (and therefore match-limited metrics) follows it: a
    /// recovered graph reproduces traversals bit-for-bit only if the lists
    /// come back in the exact order they were serialized.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] if a list references an id with
    /// no entry of its own, [`GraphError::SelfLoop`] for `v ∈ adj(v)`,
    /// [`GraphError::DuplicateEdge`] if a neighbour repeats within one list,
    /// and [`GraphError::Parse`] if an edge does not appear in **both**
    /// endpoints' lists (the symmetry a well-formed undirected serialization
    /// guarantees).
    pub fn from_adjacency_lists<I>(lists: I) -> Result<Self>
    where
        I: IntoIterator<Item = (VertexId, Label, Vec<VertexId>)>,
    {
        let mut graph = Self::new();
        let mut adjacency: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
        for (v, label, neighbours) in lists {
            graph.insert_vertex(v, label);
            adjacency.insert(v, neighbours);
        }
        // Each undirected edge must be named once by each endpoint: count
        // directed appearances and demand exactly two per edge key.
        let mut seen_directed: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        for (&v, neighbours) in &adjacency {
            for &u in neighbours {
                if u == v {
                    return Err(GraphError::SelfLoop(v));
                }
                if !graph.labels.contains_key(&u) {
                    return Err(GraphError::MissingVertex(u));
                }
                if !seen_directed.insert((v, u)) {
                    return Err(GraphError::DuplicateEdge(v, u));
                }
                graph.edges.insert(EdgeKey::new(v, u));
            }
        }
        for &key in &graph.edges {
            if !seen_directed.contains(&(key.lo, key.hi))
                || !seen_directed.contains(&(key.hi, key.lo))
            {
                return Err(GraphError::Parse {
                    line: 0,
                    message: format!(
                        "asymmetric adjacency: edge ({}, {}) is missing from one endpoint's list",
                        key.lo, key.hi
                    ),
                });
            }
        }
        // Install the lists verbatim — order preserved.
        for (v, neighbours) in adjacency {
            graph.adjacency.insert(v, neighbours);
        }
        Ok(graph)
    }

    /// Add a new vertex with the given label, returning its freshly allocated
    /// id (ids allocated this way are dense and increasing).
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId::new(self.next_id);
        self.next_id += 1;
        self.labels.insert(id, label);
        self.adjacency.entry(id).or_default();
        id
    }

    /// Insert a vertex with an explicit id (e.g. when replaying a stream or
    /// loading a file). Returns `true` if the vertex was new, `false` if the
    /// vertex already existed (in which case its label is updated).
    pub fn insert_vertex(&mut self, id: VertexId, label: Label) -> bool {
        self.next_id = self.next_id.max(id.raw() + 1);
        self.adjacency.entry(id).or_default();
        self.labels.insert(id, label).is_none()
    }

    /// Add an undirected edge between two existing vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingVertex`] if either endpoint is absent,
    /// [`GraphError::SelfLoop`] for `a == b`, and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> Result<EdgeKey> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if !self.labels.contains_key(&a) {
            return Err(GraphError::MissingVertex(a));
        }
        if !self.labels.contains_key(&b) {
            return Err(GraphError::MissingVertex(b));
        }
        let key = EdgeKey::new(a, b);
        if !self.edges.insert(key) {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        self.adjacency.entry(a).or_default().push(b);
        self.adjacency.entry(b).or_default().push(a);
        Ok(key)
    }

    /// Add an edge if it is not already present, ignoring duplicates.
    /// Returns `true` if the edge was inserted.
    ///
    /// # Errors
    ///
    /// Returns the same endpoint errors as [`LabelledGraph::add_edge`].
    pub fn add_edge_idempotent(&mut self, a: VertexId, b: VertexId) -> Result<bool> {
        match self.add_edge(a, b) {
            Ok(_) => Ok(true),
            Err(GraphError::DuplicateEdge(_, _)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Remove an edge. Returns `true` if it was present.
    pub fn remove_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        let key = EdgeKey::new(a, b);
        if !self.edges.remove(&key) {
            return false;
        }
        if let Some(list) = self.adjacency.get_mut(&a) {
            list.retain(|&v| v != b);
        }
        if let Some(list) = self.adjacency.get_mut(&b) {
            list.retain(|&v| v != a);
        }
        true
    }

    /// Remove a vertex and all of its incident edges.
    /// Returns `true` if the vertex was present.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        if self.labels.remove(&v).is_none() {
            return false;
        }
        let neighbours = self.adjacency.remove(&v).unwrap_or_default();
        for n in neighbours {
            self.edges.remove(&EdgeKey::new(v, n));
            if let Some(list) = self.adjacency.get_mut(&n) {
                list.retain(|&u| u != v);
            }
        }
        true
    }

    /// Whether the vertex exists.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.labels.contains_key(&v)
    }

    /// Whether the undirected edge exists.
    #[inline]
    pub fn contains_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.edges.contains(&EdgeKey::new(a, b))
    }

    /// The label of a vertex.
    #[inline]
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.get(&v).copied()
    }

    /// Change the label of an existing vertex. Returns the previous label.
    pub fn set_label(&mut self, v: VertexId, label: Label) -> Result<Label> {
        match self.labels.get_mut(&v) {
            Some(slot) => Ok(std::mem::replace(slot, label)),
            None => Err(GraphError::MissingVertex(v)),
        }
    }

    /// The neighbours of a vertex (empty slice if the vertex is absent).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.adjacency.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The degree of a vertex (0 if absent).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency.get(&v).map(Vec::len).unwrap_or(0)
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate over all vertex ids (arbitrary order).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.labels.keys().copied()
    }

    /// All vertex ids, sorted ascending. Useful for deterministic iteration.
    pub fn vertices_sorted(&self) -> Vec<VertexId> {
        let mut ids: Vec<_> = self.labels.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Iterate over all undirected edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.edges.iter().copied()
    }

    /// All edges, sorted lexicographically. Useful for deterministic iteration.
    pub fn edges_sorted(&self) -> Vec<EdgeKey> {
        let mut edges: Vec<_> = self.edges.iter().copied().collect();
        edges.sort_unstable();
        edges
    }

    /// Iterate over `(VertexId, Label)` pairs (arbitrary order).
    pub fn labelled_vertices(&self) -> impl Iterator<Item = (VertexId, Label)> + '_ {
        self.labels.iter().map(|(&v, &l)| (v, l))
    }

    /// The maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.values().map(Vec::len).max().unwrap_or(0)
    }

    /// The average degree `2|E| / |V|` (0.0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.labels.len() as f64
        }
    }

    /// Histogram of labels → number of vertices carrying that label.
    pub fn label_histogram(&self) -> FxHashMap<Label, usize> {
        let mut hist = FxHashMap::default();
        for &label in self.labels.values() {
            *hist.entry(label).or_insert(0) += 1;
        }
        hist
    }

    /// The set of distinct labels present in the graph.
    pub fn distinct_labels(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self
            .labels
            .values()
            .copied()
            .collect::<FxHashSet<_>>()
            .into_iter()
            .collect();
        labels.sort_unstable();
        labels
    }

    /// Copy every vertex and edge of `other` into `self`, keeping ids.
    /// Existing vertices keep their current label; duplicate edges are ignored.
    pub fn absorb(&mut self, other: &LabelledGraph) {
        for (v, l) in other.labelled_vertices() {
            if !self.contains_vertex(v) {
                self.insert_vertex(v, l);
            }
        }
        for e in other.edges() {
            let _ = self.add_edge_idempotent(e.lo, e.hi);
        }
    }

    /// Number of edges between `v` and vertices in `set`.
    pub fn edges_into_set(&self, v: VertexId, set: &FxHashSet<VertexId>) -> usize {
        self.neighbors(v).iter().filter(|n| set.contains(n)).count()
    }

    /// Total memory-light summary used in logs and reports.
    pub fn summary(&self) -> GraphSummary {
        GraphSummary {
            vertices: self.vertex_count(),
            edges: self.edge_count(),
            max_degree: self.max_degree(),
            avg_degree: self.average_degree(),
            labels: self.distinct_labels().len(),
        }
    }
}

/// A compact statistical summary of a graph, used in reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphSummary {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Average vertex degree.
    pub avg_degree: f64,
    /// Number of distinct labels.
    pub labels: usize,
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} max_deg={} avg_deg={:.2} labels={}",
            self.vertices, self.edges, self.max_degree, self.avg_degree, self.labels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_vertex_graph() -> (LabelledGraph, VertexId, VertexId) {
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(1));
        (g, a, b)
    }

    #[test]
    fn add_vertex_allocates_dense_ids() {
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(1));
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.label(a), Some(Label::new(0)));
        assert_eq!(g.label(b), Some(Label::new(1)));
    }

    #[test]
    fn insert_vertex_respects_explicit_ids() {
        let mut g = LabelledGraph::new();
        assert!(g.insert_vertex(VertexId::new(10), Label::new(2)));
        // Fresh ids continue after the largest explicit id.
        let next = g.add_vertex(Label::new(0));
        assert_eq!(next.raw(), 11);
        // Re-inserting updates the label and reports "not new".
        assert!(!g.insert_vertex(VertexId::new(10), Label::new(3)));
        assert_eq!(g.label(VertexId::new(10)), Some(Label::new(3)));
    }

    #[test]
    fn add_edge_updates_adjacency_both_ways() {
        let (mut g, a, b) = two_vertex_graph();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(a), &[b]);
        assert_eq!(g.neighbors(b), &[a]);
        assert!(g.contains_edge(a, b));
        assert!(g.contains_edge(b, a));
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn add_edge_rejects_self_loops_and_duplicates_and_missing() {
        let (mut g, a, b) = two_vertex_graph();
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
        g.add_edge(a, b).unwrap();
        assert!(matches!(
            g.add_edge(b, a),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        let ghost = VertexId::new(99);
        assert_eq!(g.add_edge(a, ghost), Err(GraphError::MissingVertex(ghost)));
        assert_eq!(g.add_edge(ghost, a), Err(GraphError::MissingVertex(ghost)));
    }

    #[test]
    fn idempotent_edge_insertion() {
        let (mut g, a, b) = two_vertex_graph();
        assert!(g.add_edge_idempotent(a, b).unwrap());
        assert!(!g.add_edge_idempotent(a, b).unwrap());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_edge_and_vertex() {
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(1));
        let c = g.add_vertex(Label::new(2));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();

        assert!(g.remove_edge(a, b));
        assert!(!g.remove_edge(a, b));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(a), 0);

        assert!(g.remove_vertex(b));
        assert!(!g.remove_vertex(b));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(c), 0);
    }

    #[test]
    fn set_label_replaces_and_errors_on_missing() {
        let (mut g, a, _) = two_vertex_graph();
        assert_eq!(g.set_label(a, Label::new(5)).unwrap(), Label::new(0));
        assert_eq!(g.label(a), Some(Label::new(5)));
        assert!(g.set_label(VertexId::new(77), Label::new(0)).is_err());
    }

    #[test]
    fn statistics_and_histograms() {
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(0));
        let c = g.add_vertex(Label::new(1));
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-9);
        let hist = g.label_histogram();
        assert_eq!(hist[&Label::new(0)], 2);
        assert_eq!(hist[&Label::new(1)], 1);
        assert_eq!(g.distinct_labels(), vec![Label::new(0), Label::new(1)]);
        let summary = g.summary();
        assert_eq!(summary.vertices, 3);
        assert_eq!(summary.edges, 2);
        assert_eq!(summary.labels, 2);
        assert!(summary.to_string().contains("|V|=3"));
    }

    #[test]
    fn absorb_merges_graphs() {
        let mut g1 = LabelledGraph::new();
        let a = g1.add_vertex(Label::new(0));
        let b = g1.add_vertex(Label::new(1));
        g1.add_edge(a, b).unwrap();

        let mut g2 = LabelledGraph::new();
        g2.insert_vertex(b, Label::new(1));
        g2.insert_vertex(VertexId::new(5), Label::new(2));
        g2.add_edge(b, VertexId::new(5)).unwrap();

        g1.absorb(&g2);
        assert_eq!(g1.vertex_count(), 3);
        assert_eq!(g1.edge_count(), 2);
        assert!(g1.contains_edge(b, VertexId::new(5)));
    }

    #[test]
    fn sorted_accessors_are_deterministic() {
        let mut g = LabelledGraph::new();
        for i in 0..10 {
            g.insert_vertex(VertexId::new(9 - i), Label::new(0));
        }
        let sorted = g.vertices_sorted();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_adjacency_lists_preserves_neighbour_order() {
        // Build a graph whose adjacency order differs from sorted order,
        // then round-trip it through explicit lists.
        let mut g = LabelledGraph::new();
        for i in 0..4 {
            g.insert_vertex(VertexId::new(i), Label::new(i as u32));
        }
        // Edge insertion order drives neighbour order: 0 sees 3, then 1.
        g.add_edge(VertexId::new(0), VertexId::new(3)).unwrap();
        g.add_edge(VertexId::new(0), VertexId::new(1)).unwrap();
        g.add_edge(VertexId::new(2), VertexId::new(1)).unwrap();
        let lists: Vec<_> = g
            .vertices_sorted()
            .into_iter()
            .map(|v| (v, g.label(v).unwrap(), g.neighbors(v).to_vec()))
            .collect();
        let rebuilt = LabelledGraph::from_adjacency_lists(lists).unwrap();
        assert_eq!(rebuilt.vertex_count(), g.vertex_count());
        assert_eq!(rebuilt.edge_count(), g.edge_count());
        for v in g.vertices_sorted() {
            assert_eq!(rebuilt.neighbors(v), g.neighbors(v), "order of {v}");
            assert_eq!(rebuilt.label(v), g.label(v));
        }
        assert_eq!(rebuilt.edges_sorted(), g.edges_sorted());
        // Fresh ids continue after the largest explicit id.
        assert_eq!(rebuilt.clone().add_vertex(Label::new(0)).raw(), 4);
    }

    #[test]
    fn from_adjacency_lists_rejects_malformed_input() {
        let v = |i: u64| VertexId::new(i);
        let l = Label::new(0);
        // Neighbour with no vertex entry.
        assert!(matches!(
            LabelledGraph::from_adjacency_lists(vec![(v(0), l, vec![v(9)])]),
            Err(GraphError::MissingVertex(_))
        ));
        // Self-loop.
        assert!(matches!(
            LabelledGraph::from_adjacency_lists(vec![(v(0), l, vec![v(0)])]),
            Err(GraphError::SelfLoop(_))
        ));
        // Repeated neighbour within one list.
        assert!(matches!(
            LabelledGraph::from_adjacency_lists(vec![
                (v(0), l, vec![v(1), v(1)]),
                (v(1), l, vec![v(0)]),
            ]),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        // Asymmetric edge: 0 lists 1 but 1 does not list 0.
        assert!(matches!(
            LabelledGraph::from_adjacency_lists(vec![(v(0), l, vec![v(1)]), (v(1), l, vec![]),]),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn edges_into_set_counts_correctly() {
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(0));
        let c = g.add_vertex(Label::new(0));
        let d = g.add_vertex(Label::new(0));
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(a, d).unwrap();
        let mut set = FxHashSet::default();
        set.insert(b);
        set.insert(c);
        assert_eq!(g.edges_into_set(a, &set), 2);
    }
}
