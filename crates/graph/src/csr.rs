//! Immutable Compressed Sparse Row (CSR) snapshot of a labelled graph.
//!
//! The streaming partitioners never need global structure, but the *offline*
//! multilevel partitioner and several quality metrics do, and iterating
//! hash-map adjacency for those is needlessly slow. [`CsrGraph`] is a compact
//! frozen snapshot with O(1) neighbour-slice access and dense `0..n` internal
//! indices, plus the mapping back to the original [`VertexId`]s.

use crate::fxhash::FxHashMap;
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use serde::{Deserialize, Serialize};

/// A frozen CSR representation of a [`LabelledGraph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[i]..offsets[i+1]` is the neighbour range of dense vertex `i`.
    offsets: Vec<usize>,
    /// Concatenated neighbour lists (dense indices).
    targets: Vec<u32>,
    /// Label per dense vertex.
    labels: Vec<Label>,
    /// Dense index → original id.
    ids: Vec<VertexId>,
    /// Original id → dense index.
    index_of: FxHashMap<VertexId, u32>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl CsrGraph {
    /// Build a CSR snapshot from a mutable graph. Vertices are assigned dense
    /// indices in ascending `VertexId` order so the mapping is deterministic.
    pub fn from_graph(graph: &LabelledGraph) -> Self {
        let ids = graph.vertices_sorted();
        let index_of: FxHashMap<VertexId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let n = ids.len();
        let mut degrees = vec![0usize; n];
        for (i, &v) in ids.iter().enumerate() {
            degrees[i] = graph.degree(v);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &degrees {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut targets = vec![0u32; *offsets.last().unwrap()];
        let mut cursor = offsets.clone();
        for (i, &v) in ids.iter().enumerate() {
            let mut neighbours: Vec<u32> = graph.neighbors(v).iter().map(|n| index_of[n]).collect();
            neighbours.sort_unstable();
            let start = cursor[i];
            targets[start..start + neighbours.len()].copy_from_slice(&neighbours);
            cursor[i] += neighbours.len();
        }
        let labels = ids
            .iter()
            .map(|&v| graph.label(v).expect("vertex present in snapshot"))
            .collect();
        CsrGraph {
            offsets,
            targets,
            labels,
            ids,
            index_of,
            edge_count: graph.edge_count(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbours (dense indices) of dense vertex `i`.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        let i = i as usize;
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of dense vertex `i`.
    #[inline]
    pub fn degree(&self, i: u32) -> usize {
        let i = i as usize;
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Label of dense vertex `i`.
    #[inline]
    pub fn label(&self, i: u32) -> Label {
        self.labels[i as usize]
    }

    /// Original [`VertexId`] of dense vertex `i`.
    #[inline]
    pub fn original_id(&self, i: u32) -> VertexId {
        self.ids[i as usize]
    }

    /// Dense index of an original vertex id, if present.
    #[inline]
    pub fn dense_index(&self, v: VertexId) -> Option<u32> {
        self.index_of.get(&v).copied()
    }

    /// Iterate over all dense vertex indices.
    pub fn dense_vertices(&self) -> impl Iterator<Item = u32> {
        0..self.ids.len() as u32
    }

    /// Iterate over every undirected edge once, as dense index pairs `(u, v)`
    /// with `u < v`.
    pub fn dense_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.dense_vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> LabelledGraph {
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(1));
        let c = g.add_vertex(Label::new(2));
        let d = g.add_vertex(Label::new(0));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        g.add_edge(c, d).unwrap();
        g
    }

    #[test]
    fn csr_preserves_counts_and_degrees() {
        let g = triangle_plus_tail();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.vertex_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        // Vertex 2 (c) has degree 3; others accordingly.
        let c = csr.dense_index(VertexId::new(2)).unwrap();
        assert_eq!(csr.degree(c), 3);
        assert_eq!(csr.label(c), Label::new(2));
        assert_eq!(csr.original_id(c), VertexId::new(2));
    }

    #[test]
    fn dense_edges_enumerates_each_edge_once() {
        let g = triangle_plus_tail();
        let csr = CsrGraph::from_graph(&g);
        let edges: Vec<_> = csr.dense_edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn neighbour_slices_are_sorted() {
        let g = triangle_plus_tail();
        let csr = CsrGraph::from_graph(&g);
        for v in csr.dense_vertices() {
            let ns = csr.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn missing_vertex_has_no_dense_index() {
        let g = triangle_plus_tail();
        let csr = CsrGraph::from_graph(&g);
        assert!(csr.dense_index(VertexId::new(42)).is_none());
    }

    #[test]
    fn empty_graph_snapshot() {
        let csr = CsrGraph::from_graph(&LabelledGraph::new());
        assert_eq!(csr.vertex_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.dense_edges().count(), 0);
    }
}
