//! Induced sub-graph extraction.
//!
//! Both the motif miner (paper Algorithm 1) and the stream matcher (paper
//! §4.3) repeatedly materialise the sub-graph induced by a small vertex set;
//! this module provides that operation plus helpers for testing connectivity
//! of candidate sub-graphs.

use crate::fxhash::FxHashSet;
use crate::graph::LabelledGraph;
use crate::ids::VertexId;

/// Return the sub-graph of `graph` induced by `vertices`: the given vertices
/// (with their labels) plus every edge of `graph` whose endpoints are both in
/// the set. Vertices absent from `graph` are silently ignored.
pub fn induced_subgraph<I>(graph: &LabelledGraph, vertices: I) -> LabelledGraph
where
    I: IntoIterator<Item = VertexId>,
{
    let set: FxHashSet<VertexId> = vertices
        .into_iter()
        .filter(|&v| graph.contains_vertex(v))
        .collect();
    let mut sub = LabelledGraph::with_capacity(set.len(), set.len());
    for &v in &set {
        if let Some(label) = graph.label(v) {
            sub.insert_vertex(v, label);
        }
    }
    for &v in &set {
        for &n in graph.neighbors(v) {
            if n > v && set.contains(&n) {
                let _ = sub.add_edge_idempotent(v, n);
            }
        }
    }
    sub
}

/// Build the sub-graph of `graph` consisting of exactly the given vertices
/// and exactly the given edges (an *edge sub-graph*, not the vertex-induced
/// one: edges of `graph` between the given vertices that are not listed are
/// omitted). Vertices or edges absent from `graph` are silently ignored.
///
/// The motif miner uses this to materialise the sub-graphs produced by
/// Algorithm 1, which grow one *edge* at a time.
pub fn edge_subgraph(
    graph: &LabelledGraph,
    vertices: &[VertexId],
    edges: &[crate::ids::EdgeKey],
) -> LabelledGraph {
    let mut sub = LabelledGraph::with_capacity(vertices.len(), edges.len());
    for &v in vertices {
        if let Some(label) = graph.label(v) {
            sub.insert_vertex(v, label);
        }
    }
    for e in edges {
        if graph.contains_edge(e.lo, e.hi) && sub.contains_vertex(e.lo) && sub.contains_vertex(e.hi)
        {
            let _ = sub.add_edge_idempotent(e.lo, e.hi);
        }
    }
    sub
}

/// Whether the sub-graph induced by `vertices` is connected (the empty set is
/// considered connected, matching the convention used by the motif matcher).
pub fn is_connected_subset(graph: &LabelledGraph, vertices: &FxHashSet<VertexId>) -> bool {
    let mut iter = vertices.iter();
    let Some(&start) = iter.next() else {
        return true;
    };
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(v) = stack.pop() {
        for &n in graph.neighbors(v) {
            if vertices.contains(&n) && seen.insert(n) {
                stack.push(n);
            }
        }
    }
    seen.len() == vertices.len()
}

/// The vertex set of the connected component of `graph` containing `start`,
/// restricted to `allowed` (useful to grow a window sub-graph around a new
/// edge without leaving the stream window).
pub fn component_within(
    graph: &LabelledGraph,
    start: VertexId,
    allowed: &FxHashSet<VertexId>,
) -> FxHashSet<VertexId> {
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    if !allowed.contains(&start) || !graph.contains_vertex(start) {
        return seen;
    }
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(v) = stack.pop() {
        for &n in graph.neighbors(v) {
            if allowed.contains(&n) && seen.insert(n) {
                stack.push(n);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;

    fn path_of(n: usize) -> (LabelledGraph, Vec<VertexId>) {
        let mut g = LabelledGraph::new();
        let vs: Vec<_> = (0..n)
            .map(|i| g.add_vertex(Label::new(i as u32 % 3)))
            .collect();
        for w in vs.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        (g, vs)
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (g, vs) = path_of(5);
        let sub = induced_subgraph(&g, [vs[0], vs[1], vs[3]]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.contains_edge(vs[0], vs[1]));
        assert!(!sub.contains_edge(vs[1], vs[3]));
        // Labels are preserved.
        assert_eq!(sub.label(vs[3]), g.label(vs[3]));
    }

    #[test]
    fn induced_subgraph_ignores_unknown_vertices() {
        let (g, vs) = path_of(3);
        let sub = induced_subgraph(&g, [vs[0], VertexId::new(999)]);
        assert_eq!(sub.vertex_count(), 1);
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn connectivity_checks() {
        let (g, vs) = path_of(5);
        let all: FxHashSet<_> = vs.iter().copied().collect();
        assert!(is_connected_subset(&g, &all));
        let split: FxHashSet<_> = [vs[0], vs[1], vs[3], vs[4]].into_iter().collect();
        assert!(!is_connected_subset(&g, &split));
        let empty = FxHashSet::default();
        assert!(is_connected_subset(&g, &empty));
    }

    #[test]
    fn edge_subgraph_keeps_only_listed_edges() {
        use crate::ids::EdgeKey;
        // Triangle a-b-c; take the path a-b-c (omit the closing edge).
        let mut g = LabelledGraph::new();
        let a = g.add_vertex(Label::new(0));
        let b = g.add_vertex(Label::new(1));
        let c = g.add_vertex(Label::new(2));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        let sub = edge_subgraph(&g, &[a, b, c], &[EdgeKey::new(a, b), EdgeKey::new(b, c)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(!sub.contains_edge(c, a));
        // Unknown vertices/edges are ignored.
        let bogus = edge_subgraph(
            &g,
            &[a, VertexId::new(99)],
            &[EdgeKey::new(a, VertexId::new(99))],
        );
        assert_eq!(bogus.vertex_count(), 1);
        assert_eq!(bogus.edge_count(), 0);
    }

    #[test]
    fn component_within_respects_allowed_set() {
        let (g, vs) = path_of(6);
        let allowed: FxHashSet<_> = [vs[0], vs[1], vs[2], vs[4], vs[5]].into_iter().collect();
        let comp = component_within(&g, vs[0], &allowed);
        assert_eq!(comp.len(), 3);
        assert!(comp.contains(&vs[2]));
        assert!(!comp.contains(&vs[4]));
        // Start vertex outside allowed set yields empty component.
        let none = component_within(&g, vs[3], &allowed);
        assert!(none.is_empty());
    }
}
