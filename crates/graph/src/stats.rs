//! Structural graph statistics.
//!
//! The experiment reports describe their input graphs with the usual summary
//! statistics: degree distribution percentiles, global clustering
//! coefficient, and degree histogram. Nothing here is needed on the streaming
//! hot path; these are offline descriptive tools.

use crate::fxhash::FxHashSet;
use crate::graph::LabelledGraph;
use serde::{Deserialize, Serialize};

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 90th percentile degree.
    pub p90: usize,
    /// 99th percentile degree.
    pub p99: usize,
}

/// Compute degree distribution statistics (all zeros for an empty graph).
pub fn degree_stats(graph: &LabelledGraph) -> DegreeStats {
    let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
    if degrees.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            p90: 0,
            p99: 0,
        };
    }
    degrees.sort_unstable();
    let percentile = |p: f64| -> usize {
        let index = ((degrees.len() as f64 - 1.0) * p).round() as usize;
        degrees[index.min(degrees.len() - 1)]
    };
    DegreeStats {
        min: degrees[0],
        max: *degrees.last().expect("non-empty"),
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
        median: percentile(0.5),
        p90: percentile(0.9),
        p99: percentile(0.99),
    }
}

/// Histogram of degrees: `histogram[d]` = number of vertices with degree `d`.
pub fn degree_histogram(graph: &LabelledGraph) -> Vec<usize> {
    let mut histogram = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        histogram[graph.degree(v)] += 1;
    }
    histogram
}

/// Exact global clustering coefficient: `3 · triangles / open-or-closed
/// triplets` (0.0 when the graph has no wedge).
///
/// Exact triangle counting is `O(Σ deg(v)²)`, which is fine for the graph
/// sizes used in the experiments; do not call this on multi-million-edge
/// graphs.
pub fn clustering_coefficient(graph: &LabelledGraph) -> f64 {
    let mut triangles = 0usize;
    let mut wedges = 0usize;
    for v in graph.vertices() {
        let neighbours = graph.neighbors(v);
        let d = neighbours.len();
        if d < 2 {
            continue;
        }
        wedges += d * (d - 1) / 2;
        let set: FxHashSet<_> = neighbours.iter().copied().collect();
        for (i, &a) in neighbours.iter().enumerate() {
            for &b in &neighbours[i + 1..] {
                if set.contains(&b) && graph.contains_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular::{clique, path_graph, star_graph};
    use crate::generators::{barabasi_albert, GeneratorConfig};
    use crate::ids::Label;

    #[test]
    fn degree_stats_on_simple_shapes() {
        let path = path_graph(5, &[Label::new(0)]);
        let stats = degree_stats(&path);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 2);
        assert!((stats.mean - 1.6).abs() < 1e-12);
        assert_eq!(stats.median, 2);

        let star = star_graph(9, &[Label::new(0)]);
        let stats = degree_stats(&star);
        assert_eq!(stats.max, 9);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.p99, 9);

        let empty = degree_stats(&LabelledGraph::new());
        assert_eq!(empty.max, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn histogram_counts_every_vertex() {
        let star = star_graph(4, &[Label::new(0)]);
        let histogram = degree_histogram(&star);
        assert_eq!(histogram.iter().sum::<usize>(), 5);
        assert_eq!(histogram[1], 4);
        assert_eq!(histogram[4], 1);
    }

    #[test]
    fn clustering_coefficient_bounds() {
        // A clique is fully clustered, a path has no triangles.
        let k5 = clique(5, &[Label::new(0)]);
        assert!((clustering_coefficient(&k5) - 1.0).abs() < 1e-12);
        let path = path_graph(10, &[Label::new(0)]);
        assert_eq!(clustering_coefficient(&path), 0.0);
        assert_eq!(clustering_coefficient(&LabelledGraph::new()), 0.0);
        // BA graphs have some clustering, strictly between the two extremes.
        let ba = barabasi_albert(GeneratorConfig::new(500, 2, 3), 3).unwrap();
        let c = clustering_coefficient(&ba);
        assert!(c > 0.0 && c < 1.0, "clustering {c}");
    }

    #[test]
    fn heavy_tail_is_visible_in_percentiles() {
        let ba = barabasi_albert(GeneratorConfig::new(2_000, 2, 9), 2).unwrap();
        let stats = degree_stats(&ba);
        assert!(stats.p99 > stats.median * 2);
        assert!(stats.max >= stats.p99);
    }
}
