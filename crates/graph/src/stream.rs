//! The graph-stream abstraction.
//!
//! A graph-stream is "an ordering over the elements of a dynamic, growing
//! graph" (paper §1). We model it as a sequence of [`StreamElement`]s:
//! vertex additions carrying the vertex label, and edge additions between
//! vertices that have already appeared. Streaming partitioners consume the
//! elements strictly in order and exactly once.

use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use crate::ordering::StreamOrder;
use serde::{Deserialize, Serialize};

/// One element of a graph stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamElement {
    /// A new vertex arriving with its label.
    AddVertex {
        /// The vertex id.
        id: VertexId,
        /// The vertex label.
        label: Label,
    },
    /// A new edge arriving between two previously seen vertices.
    AddEdge {
        /// First endpoint (already streamed).
        source: VertexId,
        /// Second endpoint (already streamed).
        target: VertexId,
    },
}

impl StreamElement {
    /// Whether this element is a vertex addition.
    pub fn is_vertex(&self) -> bool {
        matches!(self, StreamElement::AddVertex { .. })
    }

    /// Whether this element is an edge addition.
    pub fn is_edge(&self) -> bool {
        matches!(self, StreamElement::AddEdge { .. })
    }
}

/// An ordered sequence of graph elements, replayable any number of times.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphStream {
    elements: Vec<StreamElement>,
    vertex_count: usize,
    edge_count: usize,
}

impl GraphStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a stream from an explicit element sequence.
    ///
    /// The sequence is taken as-is; callers are responsible for ensuring edges
    /// only reference previously streamed vertices (use
    /// [`GraphStream::from_graph`] for the common case).
    pub fn from_elements(elements: Vec<StreamElement>) -> Self {
        let vertex_count = elements.iter().filter(|e| e.is_vertex()).count();
        let edge_count = elements.len() - vertex_count;
        Self {
            elements,
            vertex_count,
            edge_count,
        }
    }

    /// Turn a static graph into a stream under the given vertex ordering.
    ///
    /// Each vertex is emitted in order; immediately after a vertex arrives,
    /// every edge between it and an *earlier* vertex is emitted. This matches
    /// the model used by Stanton & Kliot and Fennel, where a vertex arrives
    /// "with its adjacency list restricted to already-seen vertices".
    pub fn from_graph(graph: &LabelledGraph, order: &StreamOrder) -> Self {
        let vertex_order = order.order(graph);
        Self::from_vertex_order(graph, &vertex_order)
    }

    /// Like [`GraphStream::from_graph`] but with an explicit vertex order.
    pub fn from_vertex_order(graph: &LabelledGraph, vertex_order: &[VertexId]) -> Self {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut elements = Vec::with_capacity(graph.vertex_count() + graph.edge_count());
        for &v in vertex_order {
            let label = graph
                .label(v)
                .expect("vertex order must reference graph vertices");
            elements.push(StreamElement::AddVertex { id: v, label });
            seen.insert(v);
            let mut earlier: Vec<VertexId> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|n| seen.contains(n) && *n != v)
                .collect();
            earlier.sort_unstable();
            for n in earlier {
                elements.push(StreamElement::AddEdge {
                    source: v,
                    target: n,
                });
            }
        }
        Self::from_elements(elements)
    }

    /// The elements in order.
    pub fn elements(&self) -> &[StreamElement] {
        &self.elements
    }

    /// Iterate over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamElement> + '_ {
        self.elements.iter()
    }

    /// Number of elements (vertices + edges).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of vertex additions in the stream.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edge additions in the stream.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Append an element (used by tests and by incremental/dynamic scenarios).
    pub fn push(&mut self, element: StreamElement) {
        if element.is_vertex() {
            self.vertex_count += 1;
        } else {
            self.edge_count += 1;
        }
        self.elements.push(element);
    }

    /// Replay the stream into a [`LabelledGraph`]; useful for checking that a
    /// stream faithfully reconstructs its source graph.
    pub fn materialise(&self) -> LabelledGraph {
        let mut graph = LabelledGraph::with_capacity(self.vertex_count, self.edge_count);
        for element in &self.elements {
            match *element {
                StreamElement::AddVertex { id, label } => {
                    graph.insert_vertex(id, label);
                }
                StreamElement::AddEdge { source, target } => {
                    let _ = graph.add_edge_idempotent(source, target);
                }
            }
        }
        graph
    }
}

impl<'a> IntoIterator for &'a GraphStream {
    type Item = &'a StreamElement;
    type IntoIter = std::slice::Iter<'a, StreamElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, GeneratorConfig};

    #[test]
    fn stream_from_graph_reconstructs_graph() {
        let g = barabasi_albert(GeneratorConfig::new(200, 4, 3), 2).unwrap();
        for order in [
            StreamOrder::Random { seed: 1 },
            StreamOrder::Bfs,
            StreamOrder::Adversarial,
        ] {
            let stream = GraphStream::from_graph(&g, &order);
            assert_eq!(stream.vertex_count(), g.vertex_count());
            assert_eq!(stream.edge_count(), g.edge_count());
            let rebuilt = stream.materialise();
            assert_eq!(rebuilt.vertex_count(), g.vertex_count());
            assert_eq!(rebuilt.edge_count(), g.edge_count());
            assert_eq!(rebuilt.edges_sorted(), g.edges_sorted());
        }
    }

    #[test]
    fn edges_always_follow_both_endpoints() {
        let g = barabasi_albert(GeneratorConfig::new(100, 4, 9), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 2 });
        let mut seen = crate::fxhash::FxHashSet::default();
        for element in &stream {
            match *element {
                StreamElement::AddVertex { id, .. } => {
                    seen.insert(id);
                }
                StreamElement::AddEdge { source, target } => {
                    assert!(seen.contains(&source));
                    assert!(seen.contains(&target));
                }
            }
        }
    }

    #[test]
    fn push_updates_counters() {
        let mut s = GraphStream::new();
        assert!(s.is_empty());
        s.push(StreamElement::AddVertex {
            id: VertexId::new(0),
            label: Label::new(0),
        });
        s.push(StreamElement::AddVertex {
            id: VertexId::new(1),
            label: Label::new(1),
        });
        s.push(StreamElement::AddEdge {
            source: VertexId::new(1),
            target: VertexId::new(0),
        });
        assert_eq!(s.len(), 3);
        assert_eq!(s.vertex_count(), 2);
        assert_eq!(s.edge_count(), 1);
        let g = s.materialise();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn element_kind_predicates() {
        let v = StreamElement::AddVertex {
            id: VertexId::new(0),
            label: Label::new(0),
        };
        let e = StreamElement::AddEdge {
            source: VertexId::new(0),
            target: VertexId::new(1),
        };
        assert!(v.is_vertex() && !v.is_edge());
        assert!(e.is_edge() && !e.is_vertex());
    }
}
