//! The graph-stream abstraction.
//!
//! A graph-stream is "an ordering over the elements of a dynamic, growing
//! graph" (paper §1). We model it as a sequence of [`StreamElement`]s:
//! vertex additions carrying the vertex label, edge additions between
//! vertices that have already appeared, and — beyond the paper's insert-only
//! model — vertex/edge **removals** and **relabels**, so the stream can
//! express a graph that churns instead of only growing. Streaming
//! partitioners consume the elements strictly in order and exactly once;
//! mutations referencing vertices the stream never added (or already
//! removed) are no-ops, so any interleaving replays cleanly.

use crate::fxhash::FxHashSet;
use crate::graph::LabelledGraph;
use crate::ids::{EdgeKey, Label, VertexId};
use crate::ordering::StreamOrder;
use serde::{Deserialize, Serialize};

/// One element of a graph stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamElement {
    /// A new vertex arriving with its label.
    AddVertex {
        /// The vertex id.
        id: VertexId,
        /// The vertex label.
        label: Label,
    },
    /// A new edge arriving between two previously seen vertices.
    AddEdge {
        /// First endpoint (already streamed).
        source: VertexId,
        /// Second endpoint (already streamed).
        target: VertexId,
    },
    /// A previously streamed vertex leaving the graph, taking every incident
    /// edge with it. Removing an unknown vertex is a no-op.
    RemoveVertex {
        /// The vertex to remove.
        id: VertexId,
    },
    /// A previously streamed edge leaving the graph (endpoint order is
    /// irrelevant — edges are undirected). Removing an unknown edge is a
    /// no-op.
    RemoveEdge {
        /// First endpoint.
        source: VertexId,
        /// Second endpoint.
        target: VertexId,
    },
    /// A previously streamed vertex changing its label in place. Relabelling
    /// an unknown vertex is a no-op.
    Relabel {
        /// The vertex to relabel.
        id: VertexId,
        /// Its new label.
        label: Label,
    },
}

impl StreamElement {
    /// Whether this element is a vertex addition.
    pub fn is_vertex(&self) -> bool {
        matches!(self, StreamElement::AddVertex { .. })
    }

    /// Whether this element is an edge addition.
    pub fn is_edge(&self) -> bool {
        matches!(self, StreamElement::AddEdge { .. })
    }

    /// Whether this element adds to the graph (vertex or edge addition).
    pub fn is_add(&self) -> bool {
        self.is_vertex() || self.is_edge()
    }

    /// Whether this element removes something from the graph.
    pub fn is_removal(&self) -> bool {
        matches!(
            self,
            StreamElement::RemoveVertex { .. } | StreamElement::RemoveEdge { .. }
        )
    }

    /// Whether this element mutates existing state instead of adding
    /// (removals and relabels).
    pub fn is_mutation(&self) -> bool {
        !self.is_add()
    }
}

/// An ordered sequence of graph elements, replayable any number of times.
///
/// The vertex/edge counters track **distinct** vertices and edges ever
/// added: a remove followed by a re-add of the same id counts once, and
/// removals/relabels never inflate them — they are capacity hints for
/// materialisation, not a live size (replay the stream for that).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphStream {
    elements: Vec<StreamElement>,
    seen_vertices: FxHashSet<VertexId>,
    seen_edges: FxHashSet<EdgeKey>,
}

impl GraphStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a stream from an explicit element sequence.
    ///
    /// The sequence is taken as-is; callers are responsible for ensuring edges
    /// only reference previously streamed vertices (use
    /// [`GraphStream::from_graph`] for the common case).
    pub fn from_elements(elements: Vec<StreamElement>) -> Self {
        let mut stream = Self::default();
        for element in elements {
            stream.push(element);
        }
        stream
    }

    /// Turn a static graph into a stream under the given vertex ordering.
    ///
    /// Each vertex is emitted in order; immediately after a vertex arrives,
    /// every edge between it and an *earlier* vertex is emitted. This matches
    /// the model used by Stanton & Kliot and Fennel, where a vertex arrives
    /// "with its adjacency list restricted to already-seen vertices".
    pub fn from_graph(graph: &LabelledGraph, order: &StreamOrder) -> Self {
        let vertex_order = order.order(graph);
        Self::from_vertex_order(graph, &vertex_order)
    }

    /// Like [`GraphStream::from_graph`] but with an explicit vertex order.
    pub fn from_vertex_order(graph: &LabelledGraph, vertex_order: &[VertexId]) -> Self {
        let mut seen = crate::fxhash::FxHashSet::default();
        let mut elements = Vec::with_capacity(graph.vertex_count() + graph.edge_count());
        for &v in vertex_order {
            let label = graph
                .label(v)
                .expect("vertex order must reference graph vertices");
            elements.push(StreamElement::AddVertex { id: v, label });
            seen.insert(v);
            let mut earlier: Vec<VertexId> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|n| seen.contains(n) && *n != v)
                .collect();
            earlier.sort_unstable();
            for n in earlier {
                elements.push(StreamElement::AddEdge {
                    source: v,
                    target: n,
                });
            }
        }
        Self::from_elements(elements)
    }

    /// The elements in order.
    pub fn elements(&self) -> &[StreamElement] {
        &self.elements
    }

    /// Iterate over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamElement> + '_ {
        self.elements.iter()
    }

    /// Number of elements (vertices + edges).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of **distinct** vertices ever added by the stream (stable
    /// across remove-then-readd of the same id).
    pub fn vertex_count(&self) -> usize {
        self.seen_vertices.len()
    }

    /// Number of **distinct** edges ever added by the stream (stable across
    /// remove-then-readd of the same endpoints).
    pub fn edge_count(&self) -> usize {
        self.seen_edges.len()
    }

    /// Append an element (used by tests and by incremental/dynamic
    /// scenarios). Removals and relabels never disturb the distinct-add
    /// counters, and re-adding a removed vertex or edge does not double
    /// count it.
    pub fn push(&mut self, element: StreamElement) {
        match element {
            StreamElement::AddVertex { id, .. } => {
                self.seen_vertices.insert(id);
            }
            StreamElement::AddEdge { source, target } => {
                self.seen_edges.insert(EdgeKey::new(source, target));
            }
            StreamElement::RemoveVertex { .. }
            | StreamElement::RemoveEdge { .. }
            | StreamElement::Relabel { .. } => {}
        }
        self.elements.push(element);
    }

    /// Replay the stream into a [`LabelledGraph`]; useful for checking that a
    /// stream faithfully reconstructs its source graph. Mutations apply with
    /// the same no-op-on-missing semantics partitioners use, so any element
    /// interleaving materialises without panicking.
    pub fn materialise(&self) -> LabelledGraph {
        let mut graph = LabelledGraph::with_capacity(self.vertex_count(), self.edge_count());
        for element in &self.elements {
            match *element {
                StreamElement::AddVertex { id, label } => {
                    graph.insert_vertex(id, label);
                }
                StreamElement::AddEdge { source, target } => {
                    let _ = graph.add_edge_idempotent(source, target);
                }
                StreamElement::RemoveVertex { id } => {
                    graph.remove_vertex(id);
                }
                StreamElement::RemoveEdge { source, target } => {
                    graph.remove_edge(source, target);
                }
                StreamElement::Relabel { id, label } => {
                    let _ = graph.set_label(id, label);
                }
            }
        }
        graph
    }
}

impl<'a> IntoIterator for &'a GraphStream {
    type Item = &'a StreamElement;
    type IntoIter = std::slice::Iter<'a, StreamElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, GeneratorConfig};

    #[test]
    fn stream_from_graph_reconstructs_graph() {
        let g = barabasi_albert(GeneratorConfig::new(200, 4, 3), 2).unwrap();
        for order in [
            StreamOrder::Random { seed: 1 },
            StreamOrder::Bfs,
            StreamOrder::Adversarial,
        ] {
            let stream = GraphStream::from_graph(&g, &order);
            assert_eq!(stream.vertex_count(), g.vertex_count());
            assert_eq!(stream.edge_count(), g.edge_count());
            let rebuilt = stream.materialise();
            assert_eq!(rebuilt.vertex_count(), g.vertex_count());
            assert_eq!(rebuilt.edge_count(), g.edge_count());
            assert_eq!(rebuilt.edges_sorted(), g.edges_sorted());
        }
    }

    #[test]
    fn edges_always_follow_both_endpoints() {
        let g = barabasi_albert(GeneratorConfig::new(100, 4, 9), 2).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Random { seed: 2 });
        let mut seen = crate::fxhash::FxHashSet::default();
        for element in &stream {
            match *element {
                StreamElement::AddVertex { id, .. } => {
                    seen.insert(id);
                }
                StreamElement::AddEdge { source, target } => {
                    assert!(seen.contains(&source));
                    assert!(seen.contains(&target));
                }
                _ => unreachable!("from_graph emits additions only"),
            }
        }
    }

    #[test]
    fn push_updates_counters() {
        let mut s = GraphStream::new();
        assert!(s.is_empty());
        s.push(StreamElement::AddVertex {
            id: VertexId::new(0),
            label: Label::new(0),
        });
        s.push(StreamElement::AddVertex {
            id: VertexId::new(1),
            label: Label::new(1),
        });
        s.push(StreamElement::AddEdge {
            source: VertexId::new(1),
            target: VertexId::new(0),
        });
        assert_eq!(s.len(), 3);
        assert_eq!(s.vertex_count(), 2);
        assert_eq!(s.edge_count(), 1);
        let g = s.materialise();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn element_kind_predicates() {
        let v = StreamElement::AddVertex {
            id: VertexId::new(0),
            label: Label::new(0),
        };
        let e = StreamElement::AddEdge {
            source: VertexId::new(0),
            target: VertexId::new(1),
        };
        assert!(v.is_vertex() && !v.is_edge());
        assert!(e.is_edge() && !e.is_vertex());
        assert!(v.is_add() && e.is_add());
        let rv = StreamElement::RemoveVertex {
            id: VertexId::new(0),
        };
        let re = StreamElement::RemoveEdge {
            source: VertexId::new(0),
            target: VertexId::new(1),
        };
        let rl = StreamElement::Relabel {
            id: VertexId::new(0),
            label: Label::new(2),
        };
        assert!(rv.is_removal() && re.is_removal() && !rl.is_removal());
        assert!(rv.is_mutation() && re.is_mutation() && rl.is_mutation());
        assert!(!rv.is_vertex() && !rv.is_edge() && !rv.is_add());
    }

    #[test]
    fn distinct_counters_survive_remove_then_readd() {
        let mut s = GraphStream::new();
        let v = |i: u64| VertexId::new(i);
        s.push(StreamElement::AddVertex {
            id: v(0),
            label: Label::new(0),
        });
        s.push(StreamElement::AddVertex {
            id: v(1),
            label: Label::new(1),
        });
        s.push(StreamElement::AddEdge {
            source: v(0),
            target: v(1),
        });
        s.push(StreamElement::RemoveEdge {
            source: v(1),
            target: v(0),
        });
        s.push(StreamElement::RemoveVertex { id: v(0) });
        s.push(StreamElement::AddVertex {
            id: v(0),
            label: Label::new(3),
        });
        s.push(StreamElement::AddEdge {
            source: v(0),
            target: v(1),
        });
        s.push(StreamElement::Relabel {
            id: v(1),
            label: Label::new(4),
        });
        assert_eq!(s.vertex_count(), 2, "re-add counts once");
        assert_eq!(s.edge_count(), 1, "re-add counts once");
        assert_eq!(s.len(), 8);
        // from_elements agrees with element-by-element push.
        let rebuilt = GraphStream::from_elements(s.elements().to_vec());
        assert_eq!(rebuilt.vertex_count(), 2);
        assert_eq!(rebuilt.edge_count(), 1);
    }

    #[test]
    fn materialise_applies_mutations_like_the_final_graph() {
        let v = |i: u64| VertexId::new(i);
        let s = GraphStream::from_elements(vec![
            StreamElement::AddVertex {
                id: v(0),
                label: Label::new(0),
            },
            StreamElement::AddVertex {
                id: v(1),
                label: Label::new(1),
            },
            StreamElement::AddVertex {
                id: v(2),
                label: Label::new(2),
            },
            StreamElement::AddEdge {
                source: v(0),
                target: v(1),
            },
            StreamElement::AddEdge {
                source: v(1),
                target: v(2),
            },
            StreamElement::Relabel {
                id: v(2),
                label: Label::new(7),
            },
            StreamElement::RemoveEdge {
                source: v(0),
                target: v(1),
            },
            StreamElement::RemoveVertex { id: v(1) },
            // No-ops: already removed / never added.
            StreamElement::RemoveVertex { id: v(1) },
            StreamElement::RemoveEdge {
                source: v(5),
                target: v(6),
            },
            StreamElement::Relabel {
                id: v(9),
                label: Label::new(0),
            },
        ]);
        let g = s.materialise();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.label(v(2)), Some(Label::new(7)));
        assert!(!g.contains_vertex(v(1)));
    }
}
