//! Edge-list IO and the binary codec substrate.
//!
//! Two graph formats are supported:
//!
//! * a human-readable text format (`V <id> <label-name>` and `E <id> <id>`
//!   lines, `#` comments), convenient for fixtures and examples;
//! * a compact little-endian binary format built on [`bytes`], convenient for
//!   shipping generated graphs between benchmark runs.
//!
//! The module additionally provides the checksummed-frame primitives the
//! durability layer (`loom-store`) builds its write-ahead log and checkpoint
//! blobs on: [`crc32`] (CRC-32/ISO-HDLC) and the
//! [`put_frame`]/[`take_frame`] length-prefixed frame codec. A frame is
//! `[len: u32 le][crc32(payload): u32 le][payload]`; a reader that hits a
//! torn or bit-flipped frame gets a clean `Err` with nothing consumed, so a
//! torn log tail can be truncated at the last good frame boundary.

use crate::error::{GraphError, Result};
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use crate::labels::LabelInterner;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, Write};

/// Write a graph as text. Vertices first (in sorted id order), then edges.
pub fn write_text<W: Write>(
    graph: &LabelledGraph,
    interner: &LabelInterner,
    writer: &mut W,
) -> Result<()> {
    writeln!(writer, "# loom graph: {} ", graph.summary())?;
    for v in graph.vertices_sorted() {
        let label = graph.label(v).expect("sorted vertex exists");
        let name = interner
            .name(label)
            .map(str::to_owned)
            .unwrap_or_else(|| label.raw().to_string());
        writeln!(writer, "V {} {}", v.raw(), name)?;
    }
    for e in graph.edges_sorted() {
        writeln!(writer, "E {} {}", e.lo.raw(), e.hi.raw())?;
    }
    Ok(())
}

/// Read a graph from the text format produced by [`write_text`].
///
/// Unknown label names are interned on the fly.
pub fn read_text<R: BufRead>(reader: R, interner: &mut LabelInterner) -> Result<LabelledGraph> {
    let mut graph = LabelledGraph::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = line_no + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or_default();
        match kind {
            "V" | "v" => {
                let id = parse_u64(parts.next(), lineno, "vertex id")?;
                let name = parts.next().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "missing vertex label".into(),
                })?;
                let label = interner.intern(name);
                graph.insert_vertex(VertexId::new(id), label);
            }
            "E" | "e" => {
                let a = parse_u64(parts.next(), lineno, "edge source")?;
                let b = parse_u64(parts.next(), lineno, "edge target")?;
                graph
                    .add_edge_idempotent(VertexId::new(a), VertexId::new(b))
                    .map_err(|e| GraphError::Parse {
                        line: lineno,
                        message: e.to_string(),
                    })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type {other:?}"),
                });
            }
        }
    }
    Ok(graph)
}

fn parse_u64(token: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what}: {token:?}"),
    })
}

const BINARY_MAGIC: u32 = 0x4C4F_4F4D; // "LOOM"
const BINARY_VERSION: u32 = 1;

/// Bytes per serialized vertex record (`u64` id + `u32` label).
const VERTEX_RECORD_BYTES: u64 = 12;
/// Bytes per serialized edge record (two `u64` endpoints).
const EDGE_RECORD_BYTES: u64 = 16;

/// Lookup table for the reflected CRC-32 polynomial `0xEDB88320`
/// (CRC-32/ISO-HDLC, the zlib/Ethernet checksum), built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC of `bytes` (the zlib `crc32`; `crc32(b"123456789") ==
/// 0xCBF4_3926`). Used to checksum WAL records, checkpoint blobs and
/// manifests in the durability layer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one checksummed frame — `[len: u32 le][crc32: u32 le][payload]` —
/// to `buf`.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes (a frame is a bounded
/// record, not a container format).
pub fn put_frame(buf: &mut BytesMut, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payload fits in u32");
    buf.put_u32_le(len);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
}

/// Take one checksummed frame off the front of `bytes` and return its
/// payload.
///
/// Returns `Ok(None)` when `bytes` is empty (a clean end); `Err` when the
/// header or payload is truncated, the payload length exceeds `max_len`
/// (guarding against absurd allocations from a corrupt length prefix), or
/// the checksum does not match. On `Err`, `bytes` is left exactly as it was,
/// so the caller knows the offset of the last good frame boundary.
pub fn take_frame(bytes: &mut Bytes, max_len: usize) -> Result<Option<Bytes>> {
    if bytes.remaining() == 0 {
        return Ok(None);
    }
    let corrupt = |message: String| GraphError::Parse { line: 0, message };
    // Peek the whole frame without consuming: a bad frame must leave `bytes`
    // untouched so the caller can locate the last good frame boundary.
    let view = bytes.as_slice();
    if view.len() < 8 {
        return Err(corrupt(format!(
            "torn frame header: {} trailing bytes",
            view.len()
        )));
    }
    let len = u32::from_le_bytes(view[0..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(view[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(corrupt(format!(
            "frame length {len} exceeds the {max_len}-byte limit"
        )));
    }
    if view.len() - 8 < len {
        return Err(corrupt(format!(
            "torn frame payload: header promises {len} bytes, {} remain",
            view.len() - 8
        )));
    }
    let payload = view[8..8 + len].to_vec();
    let got = crc32(&payload);
    if got != want {
        return Err(corrupt(format!(
            "frame checksum mismatch (expected 0x{want:08x}, got 0x{got:08x})"
        )));
    }
    bytes.take_bytes(8 + len);
    Ok(Some(Bytes::from(payload)))
}

/// Serialise a graph into the compact binary format.
pub fn to_binary(graph: &LabelledGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.vertex_count() * 12 + graph.edge_count() * 16);
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u32_le(BINARY_VERSION);
    buf.put_u64_le(graph.vertex_count() as u64);
    buf.put_u64_le(graph.edge_count() as u64);
    for v in graph.vertices_sorted() {
        buf.put_u64_le(v.raw());
        buf.put_u32_le(graph.label(v).expect("vertex exists").raw());
    }
    for e in graph.edges_sorted() {
        buf.put_u64_le(e.lo.raw());
        buf.put_u64_le(e.hi.raw());
    }
    buf.freeze()
}

/// Deserialise a graph from the binary format produced by [`to_binary`].
pub fn from_binary(mut bytes: Bytes) -> Result<LabelledGraph> {
    let need = |remaining: usize, want: usize| -> Result<()> {
        if remaining < want {
            Err(GraphError::Parse {
                line: 0,
                message: "binary graph truncated".into(),
            })
        } else {
            Ok(())
        }
    };
    need(bytes.remaining(), 24)?;
    let magic = bytes.get_u32_le();
    let version = bytes.get_u32_le();
    if magic != BINARY_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic 0x{magic:08x}"),
        });
    }
    if version != BINARY_VERSION {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unsupported binary version {version}"),
        });
    }
    let vertex_count = bytes.get_u64_le();
    let edge_count = bytes.get_u64_le();
    // Checked arithmetic throughout: a bit-flipped count must produce a clean
    // parse error, never a wrapped length check (which would let the record
    // loop underflow the buffer) or an attempt to reserve petabytes.
    let body = vertex_count
        .checked_mul(VERTEX_RECORD_BYTES)
        .and_then(|v| edge_count.checked_mul(EDGE_RECORD_BYTES).map(|e| (v, e)))
        .and_then(|(v, e)| v.checked_add(e))
        .and_then(|total| usize::try_from(total).ok())
        .ok_or_else(|| GraphError::Parse {
            line: 0,
            message: format!(
                "implausible binary graph header: {vertex_count} vertices, {edge_count} edges"
            ),
        })?;
    need(bytes.remaining(), body)?;
    // The length check above bounds both counts by the actual payload size,
    // so these casts cannot truncate and the reservations cannot exceed it.
    let (vertex_count, edge_count) = (vertex_count as usize, edge_count as usize);
    let mut graph = LabelledGraph::with_capacity(vertex_count, edge_count);
    for _ in 0..vertex_count {
        let id = bytes.get_u64_le();
        let label = bytes.get_u32_le();
        graph.insert_vertex(VertexId::new(id), Label::new(label));
    }
    for _ in 0..edge_count {
        let a = bytes.get_u64_le();
        let b = bytes.get_u64_le();
        graph
            .add_edge_idempotent(VertexId::new(a), VertexId::new(b))
            .map_err(|e| GraphError::Parse {
                line: 0,
                message: e.to_string(),
            })?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, GeneratorConfig};

    fn sample() -> (LabelledGraph, LabelInterner) {
        let g = barabasi_albert(GeneratorConfig::new(60, 4, 5), 2).unwrap();
        (g, LabelInterner::with_alphabet(4))
    }

    #[test]
    fn text_roundtrip() {
        let (g, interner) = sample();
        let mut buffer = Vec::new();
        write_text(&g, &interner, &mut buffer).unwrap();
        let mut interner2 = LabelInterner::new();
        let parsed = read_text(std::io::Cursor::new(buffer), &mut interner2).unwrap();
        assert_eq!(parsed.vertex_count(), g.vertex_count());
        assert_eq!(parsed.edges_sorted(), g.edges_sorted());
        for v in g.vertices_sorted() {
            let original = interner.name(g.label(v).unwrap()).unwrap();
            let roundtrip = interner2.name(parsed.label(v).unwrap()).unwrap();
            assert_eq!(original, roundtrip);
        }
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let mut interner = LabelInterner::new();
        let bad = "V 0 a\nX nonsense\n";
        let err = read_text(std::io::Cursor::new(bad.as_bytes()), &mut interner).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let missing = "V 0\n";
        assert!(read_text(std::io::Cursor::new(missing.as_bytes()), &mut interner).is_err());
        let bad_id = "V zero a\n";
        assert!(read_text(std::io::Cursor::new(bad_id.as_bytes()), &mut interner).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut interner = LabelInterner::new();
        let text = "# header\n\nV 0 a\nV 1 b\nE 0 1\n";
        let g = read_text(std::io::Cursor::new(text.as_bytes()), &mut interner).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn binary_roundtrip() {
        let (g, _) = sample();
        let bytes = to_binary(&g);
        let parsed = from_binary(bytes).unwrap();
        assert_eq!(parsed.vertex_count(), g.vertex_count());
        assert_eq!(parsed.edges_sorted(), g.edges_sorted());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(Bytes::from_static(b"nope")).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u32_le(1);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        assert!(from_binary(buf.freeze()).is_err());
    }

    #[test]
    fn binary_rejects_every_truncation_cleanly() {
        let (g, _) = sample();
        let full = to_binary(&g).as_slice().to_vec();
        // Every strict prefix must parse to Err — never panic, never Ok.
        for cut in 0..full.len() {
            let truncated = Bytes::from(full[..cut].to_vec());
            assert!(
                from_binary(truncated).is_err(),
                "prefix of {cut}/{} bytes parsed",
                full.len()
            );
        }
    }

    #[test]
    fn binary_survives_single_bit_flips() {
        // Deterministic fuzz: flip one bit at a time across the whole blob.
        // Any outcome is acceptable except a panic or an inconsistent graph;
        // flips inside the counts/ids frequently *must* error, which the
        // truncation maths has to survive without overflow.
        let (g, _) = sample();
        let full = to_binary(&g).as_slice().to_vec();
        let mut parsed_ok = 0usize;
        for byte in 0..full.len() {
            for bit in 0..8 {
                let mut flipped = full.clone();
                flipped[byte] ^= 1 << bit;
                if let Ok(parsed) = from_binary(Bytes::from(flipped)) {
                    // Internally consistent even when the flip was benign
                    // enough to parse (e.g. inside a label value).
                    assert!(parsed.vertex_count() >= 1);
                    parsed_ok += 1;
                }
            }
        }
        // Most flips corrupt structure; a handful only perturb payloads.
        assert!(parsed_ok < full.len() * 8);
    }

    #[test]
    fn binary_rejects_huge_counts_without_allocating() {
        // A header promising u64::MAX vertices used to overflow the length
        // check (wrapping to a small number) and then OOM in with_capacity.
        for (v, e) in [
            (u64::MAX, 0),
            (0, u64::MAX),
            (u64::MAX / 8, u64::MAX / 8),
            (1 << 60, 1),
        ] {
            let mut buf = BytesMut::new();
            buf.put_u32_le(super::BINARY_MAGIC);
            buf.put_u32_le(super::BINARY_VERSION);
            buf.put_u64_le(v);
            buf.put_u64_le(e);
            assert!(from_binary(buf.freeze()).is_err(), "({v}, {e}) accepted");
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"loom"), crc32(b"looM"));
    }

    #[test]
    fn frames_roundtrip_and_survive_concatenation() {
        let mut buf = BytesMut::new();
        put_frame(&mut buf, b"first");
        put_frame(&mut buf, b"");
        put_frame(&mut buf, b"third record");
        let mut bytes = buf.freeze();
        assert_eq!(
            take_frame(&mut bytes, 1024).unwrap().unwrap().as_slice(),
            b"first"
        );
        assert_eq!(
            take_frame(&mut bytes, 1024).unwrap().unwrap().as_slice(),
            b""
        );
        assert_eq!(
            take_frame(&mut bytes, 1024).unwrap().unwrap().as_slice(),
            b"third record"
        );
        assert!(take_frame(&mut bytes, 1024).unwrap().is_none());
    }

    #[test]
    fn torn_and_corrupt_frames_error_without_consuming() {
        let mut buf = BytesMut::new();
        put_frame(&mut buf, b"good");
        let mut blob = buf.freeze().as_slice().to_vec();
        // Append a torn second frame: header promising more than remains.
        blob.extend_from_slice(&9999u32.to_le_bytes());
        blob.extend_from_slice(&0u32.to_le_bytes());
        blob.extend_from_slice(b"tail");
        let mut bytes = Bytes::from(blob);
        let before_good = bytes.remaining();
        assert!(take_frame(&mut bytes, 1 << 20).unwrap().is_some());
        assert_eq!(before_good - bytes.remaining(), 8 + 4);
        let at_tear = bytes.remaining();
        assert!(take_frame(&mut bytes, 1 << 20).is_err());
        // Nothing consumed: the caller can truncate at this exact offset.
        assert_eq!(bytes.remaining(), at_tear);

        // A checksum flip errors too, also without consuming.
        let mut buf = BytesMut::new();
        put_frame(&mut buf, b"payload");
        let mut flipped = buf.freeze().as_slice().to_vec();
        *flipped.last_mut().unwrap() ^= 0x40;
        let mut bytes = Bytes::from(flipped);
        assert!(take_frame(&mut bytes, 1 << 20).is_err());
        assert_eq!(bytes.remaining(), 8 + b"payload".len());

        // A length prefix beyond the caller's limit is rejected before any
        // allocation happens.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        assert!(take_frame(&mut Bytes::from(huge), 1 << 20).is_err());
    }
}
