//! Edge-list IO.
//!
//! Two formats are supported:
//!
//! * a human-readable text format (`V <id> <label-name>` and `E <id> <id>`
//!   lines, `#` comments), convenient for fixtures and examples;
//! * a compact little-endian binary format built on [`bytes`], convenient for
//!   shipping generated graphs between benchmark runs.

use crate::error::{GraphError, Result};
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use crate::labels::LabelInterner;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, Write};

/// Write a graph as text. Vertices first (in sorted id order), then edges.
pub fn write_text<W: Write>(
    graph: &LabelledGraph,
    interner: &LabelInterner,
    writer: &mut W,
) -> Result<()> {
    writeln!(writer, "# loom graph: {} ", graph.summary())?;
    for v in graph.vertices_sorted() {
        let label = graph.label(v).expect("sorted vertex exists");
        let name = interner
            .name(label)
            .map(str::to_owned)
            .unwrap_or_else(|| label.raw().to_string());
        writeln!(writer, "V {} {}", v.raw(), name)?;
    }
    for e in graph.edges_sorted() {
        writeln!(writer, "E {} {}", e.lo.raw(), e.hi.raw())?;
    }
    Ok(())
}

/// Read a graph from the text format produced by [`write_text`].
///
/// Unknown label names are interned on the fly.
pub fn read_text<R: BufRead>(reader: R, interner: &mut LabelInterner) -> Result<LabelledGraph> {
    let mut graph = LabelledGraph::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = line_no + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or_default();
        match kind {
            "V" | "v" => {
                let id = parse_u64(parts.next(), lineno, "vertex id")?;
                let name = parts.next().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "missing vertex label".into(),
                })?;
                let label = interner.intern(name);
                graph.insert_vertex(VertexId::new(id), label);
            }
            "E" | "e" => {
                let a = parse_u64(parts.next(), lineno, "edge source")?;
                let b = parse_u64(parts.next(), lineno, "edge target")?;
                graph
                    .add_edge_idempotent(VertexId::new(a), VertexId::new(b))
                    .map_err(|e| GraphError::Parse {
                        line: lineno,
                        message: e.to_string(),
                    })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type {other:?}"),
                });
            }
        }
    }
    Ok(graph)
}

fn parse_u64(token: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what}: {token:?}"),
    })
}

const BINARY_MAGIC: u32 = 0x4C4F_4F4D; // "LOOM"
const BINARY_VERSION: u32 = 1;

/// Serialise a graph into the compact binary format.
pub fn to_binary(graph: &LabelledGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + graph.vertex_count() * 12 + graph.edge_count() * 16);
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u32_le(BINARY_VERSION);
    buf.put_u64_le(graph.vertex_count() as u64);
    buf.put_u64_le(graph.edge_count() as u64);
    for v in graph.vertices_sorted() {
        buf.put_u64_le(v.raw());
        buf.put_u32_le(graph.label(v).expect("vertex exists").raw());
    }
    for e in graph.edges_sorted() {
        buf.put_u64_le(e.lo.raw());
        buf.put_u64_le(e.hi.raw());
    }
    buf.freeze()
}

/// Deserialise a graph from the binary format produced by [`to_binary`].
pub fn from_binary(mut bytes: Bytes) -> Result<LabelledGraph> {
    let need = |remaining: usize, want: usize| -> Result<()> {
        if remaining < want {
            Err(GraphError::Parse {
                line: 0,
                message: "binary graph truncated".into(),
            })
        } else {
            Ok(())
        }
    };
    need(bytes.remaining(), 24)?;
    let magic = bytes.get_u32_le();
    let version = bytes.get_u32_le();
    if magic != BINARY_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic 0x{magic:08x}"),
        });
    }
    if version != BINARY_VERSION {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unsupported binary version {version}"),
        });
    }
    let vertex_count = bytes.get_u64_le() as usize;
    let edge_count = bytes.get_u64_le() as usize;
    need(bytes.remaining(), vertex_count * 12 + edge_count * 16)?;
    let mut graph = LabelledGraph::with_capacity(vertex_count, edge_count);
    for _ in 0..vertex_count {
        let id = bytes.get_u64_le();
        let label = bytes.get_u32_le();
        graph.insert_vertex(VertexId::new(id), Label::new(label));
    }
    for _ in 0..edge_count {
        let a = bytes.get_u64_le();
        let b = bytes.get_u64_le();
        graph
            .add_edge_idempotent(VertexId::new(a), VertexId::new(b))
            .map_err(|e| GraphError::Parse {
                line: 0,
                message: e.to_string(),
            })?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, GeneratorConfig};

    fn sample() -> (LabelledGraph, LabelInterner) {
        let g = barabasi_albert(GeneratorConfig::new(60, 4, 5), 2).unwrap();
        (g, LabelInterner::with_alphabet(4))
    }

    #[test]
    fn text_roundtrip() {
        let (g, interner) = sample();
        let mut buffer = Vec::new();
        write_text(&g, &interner, &mut buffer).unwrap();
        let mut interner2 = LabelInterner::new();
        let parsed = read_text(std::io::Cursor::new(buffer), &mut interner2).unwrap();
        assert_eq!(parsed.vertex_count(), g.vertex_count());
        assert_eq!(parsed.edges_sorted(), g.edges_sorted());
        for v in g.vertices_sorted() {
            let original = interner.name(g.label(v).unwrap()).unwrap();
            let roundtrip = interner2.name(parsed.label(v).unwrap()).unwrap();
            assert_eq!(original, roundtrip);
        }
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let mut interner = LabelInterner::new();
        let bad = "V 0 a\nX nonsense\n";
        let err = read_text(std::io::Cursor::new(bad.as_bytes()), &mut interner).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let missing = "V 0\n";
        assert!(read_text(std::io::Cursor::new(missing.as_bytes()), &mut interner).is_err());
        let bad_id = "V zero a\n";
        assert!(read_text(std::io::Cursor::new(bad_id.as_bytes()), &mut interner).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut interner = LabelInterner::new();
        let text = "# header\n\nV 0 a\nV 1 b\nE 0 1\n";
        let g = read_text(std::io::Cursor::new(text.as_bytes()), &mut interner).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn binary_roundtrip() {
        let (g, _) = sample();
        let bytes = to_binary(&g);
        let parsed = from_binary(bytes).unwrap();
        assert_eq!(parsed.vertex_count(), g.vertex_count());
        assert_eq!(parsed.edges_sorted(), g.edges_sorted());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(Bytes::from_static(b"nope")).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u32_le(1);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        assert!(from_binary(buf.freeze()).is_err());
    }
}
