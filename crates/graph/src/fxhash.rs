//! A small, fast, non-cryptographic hasher for hot integer-keyed maps.
//!
//! The LOOM pipeline keeps several per-vertex hash maps on the hot path of the
//! streaming loop (adjacency, partial assignments, window membership). The
//! standard library's SipHash is collision-resistant but slow for short
//! integer keys; the Firefox/rustc "Fx" multiply-rotate hash is the usual
//! replacement. Re-implementing it here (~30 lines) avoids pulling in an extra
//! dependency while keeping the public type aliases drop-in compatible with
//! `std::collections::HashMap` / `HashSet`.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
///
/// The algorithm is the classic `rustc-hash` one: for every 8-byte word `w`
/// of input, `state = (state.rotate_left(5) ^ w) * SEED`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EdgeKey, VertexId};

    #[test]
    fn map_and_set_basic_operations() {
        let mut map: FxHashMap<VertexId, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(VertexId::new(i), (i * 2) as u32);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&VertexId::new(500)], 1000);

        let mut set: FxHashSet<EdgeKey> = FxHashSet::default();
        set.insert(EdgeKey::new(VertexId::new(1), VertexId::new(2)));
        assert!(set.contains(&EdgeKey::new(VertexId::new(2), VertexId::new(1))));
    }

    #[test]
    fn hashes_differ_for_different_inputs() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash = |v: u64| build.hash_one(v);
        // Not a cryptographic guarantee, just a sanity check that we do not
        // collapse small distinct keys.
        let h: FxHashSet<u64> = (0..10_000u64).map(hash).collect();
        assert_eq!(h.len(), 10_000);
    }

    #[test]
    fn hash_is_deterministic() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash = |v: &str| build.hash_one(v);
        assert_eq!(hash("loom"), hash("loom"));
        assert_ne!(hash("loom"), hash("loon"));
    }
}
