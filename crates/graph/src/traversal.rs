//! Graph traversal utilities: BFS / DFS orders and connected components.
//!
//! These are used to produce the BFS / DFS stream orderings discussed in
//! §3.1 of the paper and by the offline partitioner's coarsening phase.

use crate::fxhash::FxHashSet;
use crate::graph::LabelledGraph;
use crate::ids::VertexId;
use std::collections::VecDeque;

/// Visit every vertex of the graph in breadth-first order, starting new
/// traversals from the smallest unvisited vertex id whenever a component is
/// exhausted. The result is deterministic: neighbours are visited in sorted
/// order.
pub fn bfs_order(graph: &LabelledGraph) -> Vec<VertexId> {
    let mut order = Vec::with_capacity(graph.vertex_count());
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let roots = graph.vertices_sorted();
    let mut queue = VecDeque::new();
    for root in roots {
        if seen.contains(&root) {
            continue;
        }
        seen.insert(root);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbours: Vec<_> = graph.neighbors(v).to_vec();
            neighbours.sort_unstable();
            for n in neighbours {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
    }
    order
}

/// Visit every vertex in depth-first order (deterministic, sorted neighbours,
/// components started from the smallest unvisited id).
pub fn dfs_order(graph: &LabelledGraph) -> Vec<VertexId> {
    let mut order = Vec::with_capacity(graph.vertex_count());
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    for root in graph.vertices_sorted() {
        if seen.contains(&root) {
            continue;
        }
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            order.push(v);
            let mut neighbours: Vec<_> = graph.neighbors(v).to_vec();
            // Push in reverse sorted order so that the smallest neighbour is
            // popped (and therefore visited) first.
            neighbours.sort_unstable_by(|a, b| b.cmp(a));
            for n in neighbours {
                if !seen.contains(&n) {
                    stack.push(n);
                }
            }
        }
    }
    order
}

/// The connected components of the graph, each a sorted vector of vertex ids.
/// Components are returned sorted by their smallest member.
pub fn connected_components(graph: &LabelledGraph) -> Vec<Vec<VertexId>> {
    let mut components = Vec::new();
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    for root in graph.vertices_sorted() {
        if seen.contains(&root) {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![root];
        seen.insert(root);
        while let Some(v) = stack.pop() {
            component.push(v);
            for &n in graph.neighbors(v) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Whether the whole graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &LabelledGraph) -> bool {
    connected_components(graph).len() <= 1
}

/// Single-source shortest-path distances (in hops) from `source` to every
/// reachable vertex. Unreachable vertices are absent from the result.
pub fn bfs_distances(
    graph: &LabelledGraph,
    source: VertexId,
) -> crate::fxhash::FxHashMap<VertexId, usize> {
    let mut dist = crate::fxhash::FxHashMap::default();
    if !graph.contains_vertex(source) {
        return dist;
    }
    dist.insert(source, 0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        for &n in graph.neighbors(v) {
            if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(n) {
                slot.insert(d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;

    fn sample_graph() -> (LabelledGraph, Vec<VertexId>) {
        // 0 - 1 - 2      3 - 4 (two components)
        let mut g = LabelledGraph::new();
        let vs: Vec<_> = (0..5).map(|_| g.add_vertex(Label::new(0))).collect();
        g.add_edge(vs[0], vs[1]).unwrap();
        g.add_edge(vs[1], vs[2]).unwrap();
        g.add_edge(vs[3], vs[4]).unwrap();
        (g, vs)
    }

    #[test]
    fn bfs_order_visits_all_vertices_once() {
        let (g, _) = sample_graph();
        let order = bfs_order(&g);
        assert_eq!(order.len(), 5);
        let unique: FxHashSet<_> = order.iter().copied().collect();
        assert_eq!(unique.len(), 5);
        // Component of 0 comes first, in BFS layers.
        assert_eq!(order[0], VertexId::new(0));
        assert_eq!(order[1], VertexId::new(1));
        assert_eq!(order[2], VertexId::new(2));
    }

    #[test]
    fn dfs_order_visits_all_vertices_once() {
        let (g, _) = sample_graph();
        let order = dfs_order(&g);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], VertexId::new(0));
        // DFS from 0 goes deep: 0, 1, 2.
        assert_eq!(order[1], VertexId::new(1));
        assert_eq!(order[2], VertexId::new(2));
    }

    #[test]
    fn components_are_detected() {
        let (g, vs) = sample_graph();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![vs[0], vs[1], vs[2]]);
        assert_eq!(comps[1], vec![vs[3], vs[4]]);
        assert!(!is_connected(&g));
        assert!(is_connected(&LabelledGraph::new()));
    }

    #[test]
    fn bfs_distances_computes_hop_counts() {
        let (g, vs) = sample_graph();
        let dist = bfs_distances(&g, vs[0]);
        assert_eq!(dist[&vs[0]], 0);
        assert_eq!(dist[&vs[1]], 1);
        assert_eq!(dist[&vs[2]], 2);
        assert!(!dist.contains_key(&vs[3]));
        assert!(bfs_distances(&g, VertexId::new(99)).is_empty());
    }
}
