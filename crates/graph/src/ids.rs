//! Compact identifiers used throughout the LOOM stack.
//!
//! Vertices are identified by a 64-bit [`VertexId`]; vertex labels by a 32-bit
//! [`Label`]. Keeping these as transparent newtypes (rather than raw integers)
//! prevents the classic "which integer is this" bug class while costing
//! nothing at runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`crate::LabelledGraph`] or a graph stream.
///
/// Ids are dense when produced by [`crate::LabelledGraph::add_vertex`] but the
/// data structures never rely on density, so externally supplied ids (e.g. from
/// an edge-list file) work too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Create a vertex id from a raw integer.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The raw value as a usize index (for dense arrays).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for VertexId {
    #[inline]
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<usize> for VertexId {
    #[inline]
    fn from(raw: usize) -> Self {
        Self(raw as u64)
    }
}

/// A vertex label.
///
/// Labels are small interned integers; the mapping to human-readable names is
/// kept in a [`crate::LabelInterner`]. The paper's example labels `a`, `b`,
/// `c`, `d` map to labels `0..4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Label(pub u32);

impl Label {
    /// Create a label from a raw integer.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw value as a usize index (for dense arrays such as prime tables).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print small labels as letters to match the paper's figures.
        if self.0 < 26 {
            write!(f, "{}", (b'a' + self.0 as u8) as char)
        } else {
            write!(f, "l{}", self.0)
        }
    }
}

impl From<u32> for Label {
    #[inline]
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

/// An undirected edge between two vertices, stored in normalised (min, max)
/// order so that `(u, v)` and `(v, u)` compare equal and hash identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeKey {
    /// The smaller endpoint.
    pub lo: VertexId,
    /// The larger endpoint.
    pub hi: VertexId,
}

impl EdgeKey {
    /// Build a normalised edge key from two endpoints (in either order).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// Both endpoints as a tuple `(lo, hi)`.
    #[inline]
    pub const fn endpoints(self) -> (VertexId, VertexId) {
        (self.lo, self.hi)
    }

    /// Returns the endpoint opposite to `v`, or `None` if `v` is not an
    /// endpoint of this edge.
    #[inline]
    pub fn other(self, v: VertexId) -> Option<VertexId> {
        if v == self.lo {
            Some(self.hi)
        } else if v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Whether `v` is one of the two endpoints.
    #[inline]
    pub fn touches(self, v: VertexId) -> bool {
        v == self.lo || v == self.hi
    }

    /// Whether the edge is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

impl From<(VertexId, VertexId)> for EdgeKey {
    #[inline]
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Self::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u64), v);
        assert_eq!(VertexId::from(42usize), v);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn label_display_uses_letters_for_small_values() {
        assert_eq!(Label::new(0).to_string(), "a");
        assert_eq!(Label::new(3).to_string(), "d");
        assert_eq!(Label::new(25).to_string(), "z");
        assert_eq!(Label::new(26).to_string(), "l26");
    }

    #[test]
    fn edge_key_is_normalised() {
        let a = VertexId::new(7);
        let b = VertexId::new(3);
        let e1 = EdgeKey::new(a, b);
        let e2 = EdgeKey::new(b, a);
        assert_eq!(e1, e2);
        assert_eq!(e1.lo, b);
        assert_eq!(e1.hi, a);
        assert!(!e1.is_loop());
        assert!(EdgeKey::new(a, a).is_loop());
    }

    #[test]
    fn edge_key_other_endpoint() {
        let a = VertexId::new(1);
        let b = VertexId::new(2);
        let c = VertexId::new(3);
        let e = EdgeKey::new(a, b);
        assert_eq!(e.other(a), Some(b));
        assert_eq!(e.other(b), Some(a));
        assert_eq!(e.other(c), None);
        assert!(e.touches(a) && e.touches(b) && !e.touches(c));
    }

    #[test]
    fn label_ordering_is_raw_ordering() {
        assert!(Label::new(1) < Label::new(2));
        assert!(VertexId::new(9) < VertexId::new(10));
    }
}
