//! Erdős–Rényi `G(n, m)` random graphs.

use super::{add_random_vertices, rng_for, GeneratorConfig};
use crate::error::{GraphError, Result};
use crate::graph::LabelledGraph;
use rand::Rng;

/// Generate an Erdős–Rényi graph with `config.vertices` vertices and exactly
/// `edges` distinct edges chosen uniformly at random among all vertex pairs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorConfig`] if more edges are requested
/// than a simple graph on `n` vertices can hold, or if `n < 2` while
/// `edges > 0`.
pub fn erdos_renyi(config: GeneratorConfig, edges: usize) -> Result<LabelledGraph> {
    let n = config.vertices;
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if edges > max_edges {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "requested {edges} edges but a simple graph on {n} vertices holds at most {max_edges}"
        )));
    }
    let mut rng = rng_for(config.seed);
    let mut graph = LabelledGraph::with_capacity(n, edges);
    let vertices = add_random_vertices(&mut graph, n, config.label_count, &mut rng);
    if n < 2 {
        return Ok(graph);
    }

    // Dense regime: enumerating all pairs and sampling would be O(n^2); for the
    // sparse graphs used in the experiments rejection sampling is faster and
    // simpler. Guard against pathological densities by bounding attempts.
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let attempt_budget = edges.saturating_mul(50).max(1_000);
    while placed < edges && attempts < attempt_budget {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        if graph.add_edge_idempotent(vertices[i], vertices[j])? {
            placed += 1;
        }
    }
    // Fall back to a deterministic sweep if rejection sampling struggled
    // (only happens for very dense requests).
    if placed < edges {
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if placed == edges {
                    break 'outer;
                }
                if graph.add_edge_idempotent(vertices[i], vertices[j])? {
                    placed += 1;
                }
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let g = erdos_renyi(GeneratorConfig::new(100, 4, 1), 300).unwrap();
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 300);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let g1 = erdos_renyi(GeneratorConfig::new(50, 3, 9), 100).unwrap();
        let g2 = erdos_renyi(GeneratorConfig::new(50, 3, 9), 100).unwrap();
        assert_eq!(g1.edges_sorted(), g2.edges_sorted());
        let g3 = erdos_renyi(GeneratorConfig::new(50, 3, 10), 100).unwrap();
        assert_ne!(g1.edges_sorted(), g3.edges_sorted());
    }

    #[test]
    fn rejects_impossible_edge_counts() {
        assert!(erdos_renyi(GeneratorConfig::new(4, 2, 0), 7).is_err());
        assert!(erdos_renyi(GeneratorConfig::new(4, 2, 0), 6).is_ok());
    }

    #[test]
    fn dense_request_is_satisfied_via_sweep() {
        // Complete graph on 20 vertices: 190 edges — rejection alone may stall.
        let g = erdos_renyi(GeneratorConfig::new(20, 2, 3), 190).unwrap();
        assert_eq!(g.edge_count(), 190);
    }

    #[test]
    fn tiny_graphs_are_fine() {
        let g = erdos_renyi(GeneratorConfig::new(1, 2, 0), 0).unwrap();
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        let g = erdos_renyi(GeneratorConfig::new(0, 2, 0), 0).unwrap();
        assert!(g.is_empty());
    }
}
