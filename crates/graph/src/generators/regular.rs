//! Small regular topologies: paths, cycles, stars, cliques and random trees.
//!
//! These mirror the query-graph shapes in the paper's Figure 1 (paths and a
//! branching query) and provide worst/best-case inputs for the partitioners.

use super::rng_for;
use crate::error::Result;
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use rand::Rng;

/// A path `v0 - v1 - ... - v{n-1}` with the given label sequence applied
/// cyclically (`labels[i % labels.len()]`).
pub fn path_graph(n: usize, labels: &[Label]) -> LabelledGraph {
    let mut g = LabelledGraph::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<VertexId> = (0..n).map(|i| g.add_vertex(label_at(labels, i))).collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1]).expect("path edges are valid");
    }
    g
}

/// A cycle on `n >= 3` vertices with labels applied cyclically.
pub fn cycle_graph(n: usize, labels: &[Label]) -> LabelledGraph {
    let mut g = path_graph(n, labels);
    if n >= 3 {
        let ids = g.vertices_sorted();
        g.add_edge(ids[0], ids[n - 1]).expect("cycle closing edge");
    }
    g
}

/// A star: one hub (labelled `labels[0]`) connected to `leaves` leaf vertices
/// (labelled cyclically from `labels[1..]`, falling back to `labels[0]`).
pub fn star_graph(leaves: usize, labels: &[Label]) -> LabelledGraph {
    let mut g = LabelledGraph::with_capacity(leaves + 1, leaves);
    let hub = g.add_vertex(label_at(labels, 0));
    for i in 0..leaves {
        let leaf_labels = if labels.len() > 1 {
            &labels[1..]
        } else {
            labels
        };
        let leaf = g.add_vertex(label_at(leaf_labels, i));
        g.add_edge(hub, leaf).expect("star edges are valid");
    }
    g
}

/// A complete graph on `n` vertices with labels applied cyclically.
pub fn clique(n: usize, labels: &[Label]) -> LabelledGraph {
    let mut g = LabelledGraph::with_capacity(n, n * n / 2);
    let ids: Vec<VertexId> = (0..n).map(|i| g.add_vertex(label_at(labels, i))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(ids[i], ids[j]).expect("clique edges are valid");
        }
    }
    g
}

/// A uniformly random labelled tree on `n` vertices: each vertex `i > 0`
/// attaches to a uniformly chosen earlier vertex.
pub fn random_tree(n: usize, label_count: u32, seed: u64) -> Result<LabelledGraph> {
    let mut rng = rng_for(seed);
    let label_count = label_count.max(1);
    let mut g = LabelledGraph::with_capacity(n, n.saturating_sub(1));
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let v = g.add_vertex(Label::new(rng.random_range(0..label_count)));
        if i > 0 {
            let parent = ids[rng.random_range(0..i)];
            g.add_edge(v, parent)?;
        }
        ids.push(v);
    }
    Ok(g)
}

fn label_at(labels: &[Label], i: usize) -> Label {
    if labels.is_empty() {
        Label::new(0)
    } else {
        labels[i % labels.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn ab() -> Vec<Label> {
        vec![Label::new(0), Label::new(1)]
    }

    #[test]
    fn path_structure() {
        let g = path_graph(4, &ab());
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        // Labels alternate a, b, a, b.
        let ids = g.vertices_sorted();
        assert_eq!(g.label(ids[0]), Some(Label::new(0)));
        assert_eq!(g.label(ids[1]), Some(Label::new(1)));
        assert_eq!(g.label(ids[2]), Some(Label::new(0)));
    }

    #[test]
    fn cycle_structure() {
        let g = cycle_graph(5, &ab());
        assert_eq!(g.edge_count(), 5);
        assert!(g.vertices_sorted().iter().all(|&v| g.degree(v) == 2));
        // A 2-cycle is not a simple graph; we return a path instead.
        let tiny = cycle_graph(2, &ab());
        assert_eq!(tiny.edge_count(), 1);
    }

    #[test]
    fn star_structure() {
        let g = star_graph(6, &[Label::new(0), Label::new(1), Label::new(2)]);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 6);
        let hub = g.vertices_sorted()[0];
        assert_eq!(g.label(hub), Some(Label::new(0)));
    }

    #[test]
    fn clique_structure() {
        let g = clique(5, &ab());
        assert_eq!(g.edge_count(), 10);
        assert!(g.vertices_sorted().iter().all(|&v| g.degree(v) == 4));
    }

    #[test]
    fn random_tree_is_connected_acyclic() {
        let g = random_tree(200, 4, 17).unwrap();
        assert_eq!(g.vertex_count(), 200);
        assert_eq!(g.edge_count(), 199);
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_label_slice_defaults_to_zero() {
        let g = path_graph(3, &[]);
        assert!(g
            .vertices_sorted()
            .iter()
            .all(|&v| g.label(v) == Some(Label::new(0))));
    }
}
