//! Planted-partition ("community") graphs.
//!
//! The graph is divided into `communities` equally sized groups; a pair of
//! vertices inside the same group is connected with probability `p_in`, a
//! pair in different groups with probability `p_out << p_in`. The planted
//! grouping is returned alongside the graph so experiments can compare a
//! partitioner's cut against the ground-truth community cut.

use super::rng_for;
use crate::error::{GraphError, Result};
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for [`community_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommunityConfig {
    /// Total number of vertices (distributed as evenly as possible).
    pub vertices: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Probability of an edge inside a community.
    pub p_in: f64,
    /// Probability of an edge between communities.
    pub p_out: f64,
    /// Size of the label alphabet.
    pub label_count: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        Self {
            vertices: 1_000,
            communities: 8,
            p_in: 0.05,
            p_out: 0.001,
            label_count: 4,
            seed: 42,
        }
    }
}

/// Generate a planted-partition graph. Returns the graph and, for each vertex,
/// the index of the community it was planted in.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorConfig`] if there are no communities,
/// no vertices, or the probabilities are outside `[0, 1]`.
pub fn community_graph(config: CommunityConfig) -> Result<(LabelledGraph, Vec<(VertexId, usize)>)> {
    if config.communities == 0 || config.vertices == 0 {
        return Err(GraphError::InvalidGeneratorConfig(
            "need at least one community and one vertex".into(),
        ));
    }
    for p in [config.p_in, config.p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "probability {p} outside [0, 1]"
            )));
        }
    }
    let mut rng = rng_for(config.seed);
    let label_count = config.label_count.max(1);
    let mut graph = LabelledGraph::with_capacity(config.vertices, config.vertices * 8);
    let mut membership = Vec::with_capacity(config.vertices);

    for i in 0..config.vertices {
        let community = i % config.communities;
        let v = graph.add_vertex(Label::new(rng.random_range(0..label_count)));
        membership.push((v, community));
    }

    for i in 0..config.vertices {
        for j in (i + 1)..config.vertices {
            let (vi, ci) = membership[i];
            let (vj, cj) = membership[j];
            let p = if ci == cj { config.p_in } else { config.p_out };
            if p > 0.0 && rng.random_bool(p) {
                graph.add_edge(vi, vj)?;
            }
        }
    }
    Ok((graph, membership))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_community_edges_dominate() {
        let (g, membership) = community_graph(CommunityConfig {
            vertices: 400,
            communities: 4,
            p_in: 0.1,
            p_out: 0.002,
            label_count: 4,
            seed: 3,
        })
        .unwrap();
        let community_of: std::collections::HashMap<_, _> = membership.iter().copied().collect();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edges() {
            if community_of[&e.lo] == community_of[&e.hi] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn membership_is_balanced() {
        let (_, membership) = community_graph(CommunityConfig {
            vertices: 100,
            communities: 4,
            ..CommunityConfig::default()
        })
        .unwrap();
        let mut counts = [0usize; 4];
        for (_, c) in membership {
            counts[c] += 1;
        }
        assert!(counts.iter().all(|&c| c == 25));
    }

    #[test]
    fn rejects_invalid_config() {
        assert!(community_graph(CommunityConfig {
            communities: 0,
            ..CommunityConfig::default()
        })
        .is_err());
        assert!(community_graph(CommunityConfig {
            p_in: 1.5,
            ..CommunityConfig::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CommunityConfig {
            vertices: 120,
            communities: 3,
            ..CommunityConfig::default()
        };
        let (a, _) = community_graph(cfg).unwrap();
        let (b, _) = community_graph(cfg).unwrap();
        assert_eq!(a.edges_sorted(), b.edges_sorted());
    }
}
