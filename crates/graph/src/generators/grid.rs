//! 2-D grid graphs.
//!
//! Grids have a known optimal cut (straight lines), which makes them a useful
//! sanity check for partition quality: a good k-way partitioner should get
//! close to the `O(sqrt(|V|))` cut of a block decomposition.

use super::rng_for;
use crate::error::Result;
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use rand::Rng;

/// Generate a `rows x cols` 4-neighbour grid. Labels are drawn uniformly from
/// `0..label_count` with the given seed.
pub fn grid_graph(rows: usize, cols: usize, label_count: u32, seed: u64) -> Result<LabelledGraph> {
    let mut rng = rng_for(seed);
    let label_count = label_count.max(1);
    let mut graph = LabelledGraph::with_capacity(rows * cols, 2 * rows * cols);
    let mut ids = vec![VertexId::new(0); rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            ids[r * cols + c] = graph.add_vertex(Label::new(rng.random_range(0..label_count)));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let v = ids[r * cols + c];
            if c + 1 < cols {
                graph.add_edge(v, ids[r * cols + c + 1])?;
            }
            if r + 1 < rows {
                graph.add_edge(v, ids[(r + 1) * cols + c])?;
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn grid_counts() {
        let g = grid_graph(10, 8, 3, 1).unwrap();
        assert_eq!(g.vertex_count(), 80);
        // Horizontal edges: 10 * 7, vertical: 9 * 8.
        assert_eq!(g.edge_count(), 70 + 72);
        assert!(is_connected(&g));
    }

    #[test]
    fn degenerate_grids() {
        let line = grid_graph(1, 5, 2, 0).unwrap();
        assert_eq!(line.edge_count(), 4);
        let single = grid_graph(1, 1, 2, 0).unwrap();
        assert_eq!(single.vertex_count(), 1);
        assert_eq!(single.edge_count(), 0);
        let empty = grid_graph(0, 5, 2, 0).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn interior_degree_is_four() {
        let g = grid_graph(5, 5, 2, 0).unwrap();
        assert_eq!(g.max_degree(), 4);
    }
}
