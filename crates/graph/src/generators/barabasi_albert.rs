//! Barabási–Albert preferential-attachment graphs.
//!
//! Social and web graphs — the motivating domains in the paper's introduction
//! — have heavy-tailed degree distributions. The BA model reproduces that
//! skew: each new vertex attaches to `m` existing vertices chosen with
//! probability proportional to their current degree.

use super::{rng_for, GeneratorConfig};
use crate::error::{GraphError, Result};
use crate::graph::LabelledGraph;
use crate::ids::Label;
use rand::Rng;

/// Generate a Barabási–Albert graph: start from a small clique of `m + 1`
/// vertices, then attach each subsequent vertex to `m` distinct existing
/// vertices with degree-proportional probability.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorConfig`] if `m == 0` or
/// `config.vertices <= m`.
pub fn barabasi_albert(config: GeneratorConfig, m: usize) -> Result<LabelledGraph> {
    let n = config.vertices;
    if m == 0 {
        return Err(GraphError::InvalidGeneratorConfig(
            "attachment parameter m must be positive".into(),
        ));
    }
    if n <= m {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "need more than m = {m} vertices, got {n}"
        )));
    }
    let mut rng = rng_for(config.seed);
    let label_count = config.label_count.max(1);
    let mut graph = LabelledGraph::with_capacity(n, n * m);

    // `targets` is the degree-weighted urn: every endpoint of every edge is
    // pushed once, so sampling uniformly from it is degree-proportional
    // sampling — the standard O(1)-per-draw BA implementation.
    let mut urn = Vec::with_capacity(2 * n * m);

    // Seed clique of m + 1 vertices.
    let seed_count = m + 1;
    let mut vertices = Vec::with_capacity(n);
    for _ in 0..seed_count {
        vertices.push(graph.add_vertex(Label::new(rng.random_range(0..label_count))));
    }
    for i in 0..seed_count {
        for j in (i + 1)..seed_count {
            graph.add_edge(vertices[i], vertices[j])?;
            urn.push(vertices[i]);
            urn.push(vertices[j]);
        }
    }

    for _ in seed_count..n {
        let v = graph.add_vertex(Label::new(rng.random_range(0..label_count)));
        let mut chosen = Vec::with_capacity(m);
        // Draw m distinct degree-proportional targets via rejection.
        let mut guard = 0usize;
        while chosen.len() < m {
            guard += 1;
            let candidate = if guard > 50 * m {
                // Extremely unlikely fallback: pick any vertex not yet chosen.
                *vertices
                    .iter()
                    .find(|u| !chosen.contains(*u))
                    .expect("more existing vertices than m")
            } else {
                urn[rng.random_range(0..urn.len())]
            };
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &target in &chosen {
            graph.add_edge(v, target)?;
            urn.push(v);
            urn.push(target);
        }
        vertices.push(v);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_and_edge_counts_match_model() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(GeneratorConfig::new(n, 4, 11), m).unwrap();
        assert_eq!(g.vertex_count(), n);
        // seed clique edges + m per additional vertex
        let expected = m * (m + 1) / 2 + (n - (m + 1)) * m;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(GeneratorConfig::new(2_000, 4, 5), 2).unwrap();
        let max = g.max_degree();
        let avg = g.average_degree();
        // Preferential attachment produces hubs far above the average degree.
        assert!(
            max as f64 > 5.0 * avg,
            "expected a hub: max={max}, avg={avg}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(GeneratorConfig::new(200, 4, 1), 2).unwrap();
        let b = barabasi_albert(GeneratorConfig::new(200, 4, 1), 2).unwrap();
        assert_eq!(a.edges_sorted(), b.edges_sorted());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(barabasi_albert(GeneratorConfig::new(10, 4, 0), 0).is_err());
        assert!(barabasi_albert(GeneratorConfig::new(3, 4, 0), 3).is_err());
    }

    #[test]
    fn graph_is_connected() {
        let g = barabasi_albert(GeneratorConfig::new(300, 4, 2), 2).unwrap();
        assert!(crate::traversal::is_connected(&g));
    }
}
