//! Graphs with explicitly planted labelled motif instances.
//!
//! The key claim of the paper is that placing *frequently traversed motifs*
//! wholly within a partition reduces inter-partition traversals for a
//! pattern-matching workload. To evaluate that claim we need graphs where the
//! number and location of motif instances is controlled. This generator
//! plants `instances` disjoint copies of each supplied motif graph into a
//! random background graph and stitches them in with a configurable number of
//! attachment edges.

use super::rng_for;
use crate::error::{GraphError, Result};
use crate::graph::LabelledGraph;
use crate::ids::{Label, VertexId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for [`motif_planted_graph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotifPlantConfig {
    /// Number of background vertices (labelled uniformly at random).
    pub background_vertices: usize,
    /// Number of background edges (uniform random pairs).
    pub background_edges: usize,
    /// Number of disjoint instances to plant *per motif*.
    pub instances_per_motif: usize,
    /// Number of random edges connecting each planted instance to the
    /// background (0 keeps instances as separate components).
    pub attachment_edges: usize,
    /// Size of the label alphabet for background vertices.
    pub label_count: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MotifPlantConfig {
    fn default() -> Self {
        Self {
            background_vertices: 1_000,
            background_edges: 3_000,
            instances_per_motif: 50,
            attachment_edges: 1,
            label_count: 4,
            seed: 42,
        }
    }
}

/// Record of one planted motif instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlantedInstance {
    /// Index of the motif in the `motifs` slice passed to the generator.
    pub motif_index: usize,
    /// Vertices of this instance, in the same order as the motif's sorted
    /// vertex list.
    pub vertices: Vec<VertexId>,
}

/// Generate a background graph and plant disjoint copies of each motif in it.
///
/// Returns the combined graph together with the list of planted instances so
/// experiments can verify motif-aware placement against ground truth.
///
/// # Errors
///
/// Returns [`GraphError::InvalidGeneratorConfig`] if any motif is empty or the
/// background edge request is impossible.
pub fn motif_planted_graph(
    config: &MotifPlantConfig,
    motifs: &[LabelledGraph],
) -> Result<(LabelledGraph, Vec<PlantedInstance>)> {
    for (i, motif) in motifs.iter().enumerate() {
        if motif.is_empty() {
            return Err(GraphError::InvalidGeneratorConfig(format!(
                "motif {i} has no vertices"
            )));
        }
    }
    let n = config.background_vertices;
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if config.background_edges > max_edges {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "requested {} background edges but at most {max_edges} are possible",
            config.background_edges
        )));
    }

    let mut rng = rng_for(config.seed);
    let label_count = config.label_count.max(1);
    let mut graph = LabelledGraph::with_capacity(
        n + motifs
            .iter()
            .map(LabelledGraph::vertex_count)
            .sum::<usize>()
            * config.instances_per_motif,
        config.background_edges,
    );

    // Background vertices + edges.
    let background: Vec<VertexId> = (0..n)
        .map(|_| graph.add_vertex(Label::new(rng.random_range(0..label_count))))
        .collect();
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let budget = config.background_edges.saturating_mul(50).max(1_000);
    while placed < config.background_edges && attempts < budget && n >= 2 {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        if graph.add_edge_idempotent(background[i], background[j])? {
            placed += 1;
        }
    }

    // Planted instances.
    let mut instances = Vec::new();
    for (motif_index, motif) in motifs.iter().enumerate() {
        let motif_vertices = motif.vertices_sorted();
        for _ in 0..config.instances_per_motif {
            let mut mapping = crate::fxhash::FxHashMap::default();
            let mut instance_vertices = Vec::with_capacity(motif_vertices.len());
            for &mv in &motif_vertices {
                let label = motif.label(mv).expect("motif vertex has a label");
                let v = graph.add_vertex(label);
                mapping.insert(mv, v);
                instance_vertices.push(v);
            }
            for e in motif.edges_sorted() {
                graph.add_edge(mapping[&e.lo], mapping[&e.hi])?;
            }
            // Stitch the instance to the background.
            if !background.is_empty() {
                for _ in 0..config.attachment_edges {
                    let inst_v = instance_vertices[rng.random_range(0..instance_vertices.len())];
                    let bg_v = background[rng.random_range(0..background.len())];
                    let _ = graph.add_edge_idempotent(inst_v, bg_v)?;
                }
            }
            instances.push(PlantedInstance {
                motif_index,
                vertices: instance_vertices,
            });
        }
    }
    Ok((graph, instances))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular::path_graph;

    fn abc_path() -> LabelledGraph {
        path_graph(3, &[Label::new(0), Label::new(1), Label::new(2)])
    }

    #[test]
    fn plants_requested_instances() {
        let config = MotifPlantConfig {
            background_vertices: 100,
            background_edges: 200,
            instances_per_motif: 10,
            attachment_edges: 1,
            label_count: 4,
            seed: 1,
        };
        let (g, instances) = motif_planted_graph(&config, &[abc_path()]).unwrap();
        assert_eq!(instances.len(), 10);
        assert_eq!(g.vertex_count(), 100 + 10 * 3);
        // Every instance's internal structure exists in the combined graph.
        for inst in &instances {
            assert_eq!(inst.vertices.len(), 3);
            assert!(g.contains_edge(inst.vertices[0], inst.vertices[1]));
            assert!(g.contains_edge(inst.vertices[1], inst.vertices[2]));
            assert_eq!(g.label(inst.vertices[0]), Some(Label::new(0)));
            assert_eq!(g.label(inst.vertices[1]), Some(Label::new(1)));
            assert_eq!(g.label(inst.vertices[2]), Some(Label::new(2)));
        }
    }

    #[test]
    fn multiple_motifs_and_zero_attachment() {
        let square = crate::generators::regular::cycle_graph(4, &[Label::new(0), Label::new(1)]);
        let config = MotifPlantConfig {
            background_vertices: 20,
            background_edges: 30,
            instances_per_motif: 3,
            attachment_edges: 0,
            label_count: 2,
            seed: 9,
        };
        let (g, instances) = motif_planted_graph(&config, &[abc_path(), square]).unwrap();
        assert_eq!(instances.len(), 6);
        assert_eq!(g.vertex_count(), 20 + 3 * 3 + 3 * 4);
    }

    #[test]
    fn rejects_empty_motif() {
        let config = MotifPlantConfig::default();
        assert!(motif_planted_graph(&config, &[LabelledGraph::new()]).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let config = MotifPlantConfig {
            background_vertices: 50,
            background_edges: 80,
            instances_per_motif: 4,
            attachment_edges: 2,
            label_count: 3,
            seed: 77,
        };
        let (a, _) = motif_planted_graph(&config, &[abc_path()]).unwrap();
        let (b, _) = motif_planted_graph(&config, &[abc_path()]).unwrap();
        assert_eq!(a.edges_sorted(), b.edges_sorted());
    }
}
