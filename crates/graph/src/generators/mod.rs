//! Deterministic random graph generators.
//!
//! The experiments partition synthetic graphs from families whose structure
//! stresses the partitioners in different ways:
//!
//! * [`erdos_renyi()`] — no structure at all; every partitioner degrades to the
//!   balance constraint.
//! * [`barabasi_albert()`] — heavy-tailed degree distribution, the regime where
//!   Fennel/LDG shine over hashing.
//! * [`community_graph`] — planted-partition graphs with strong modularity;
//!   the "right answer" is known, so edge-cut quality is interpretable.
//! * [`grid_graph`], [`regular`] topologies — worst/best cases with known cuts.
//! * [`motif_planted_graph`] — a background graph with explicitly planted
//!   labelled motif instances, used to demonstrate workload-aware gains.
//!
//! Every generator takes an explicit seed and is fully deterministic.

pub mod barabasi_albert;
pub mod community;
pub mod erdos_renyi;
pub mod grid;
pub mod motif_planted;
pub mod regular;

pub use barabasi_albert::barabasi_albert;
pub use community::{community_graph, CommunityConfig};
pub use erdos_renyi::erdos_renyi;
pub use grid::grid_graph;
pub use motif_planted::{motif_planted_graph, MotifPlantConfig};

use crate::graph::LabelledGraph;
use crate::ids::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Common knobs shared by the random generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of vertices to generate.
    pub vertices: usize,
    /// Size of the label alphabet; labels are assigned uniformly at random.
    pub label_count: u32,
    /// RNG seed — the same seed always produces the same graph.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Convenience constructor.
    pub fn new(vertices: usize, label_count: u32, seed: u64) -> Self {
        Self {
            vertices,
            label_count,
            seed,
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            vertices: 1_000,
            label_count: 4,
            seed: 42,
        }
    }
}

/// Create a seeded RNG for generator use.
pub(crate) fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Add `count` vertices with uniformly random labels drawn from
/// `0..label_count`, returning the created ids in creation order.
pub(crate) fn add_random_vertices(
    graph: &mut LabelledGraph,
    count: usize,
    label_count: u32,
    rng: &mut StdRng,
) -> Vec<crate::ids::VertexId> {
    let label_count = label_count.max(1);
    (0..count)
        .map(|_| graph.add_vertex(Label::new(rng.random_range(0..label_count))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = GeneratorConfig::default();
        assert!(cfg.vertices > 0);
        assert!(cfg.label_count > 0);
    }

    #[test]
    fn random_vertices_use_requested_alphabet() {
        let mut g = LabelledGraph::new();
        let mut rng = rng_for(7);
        let vs = add_random_vertices(&mut g, 200, 3, &mut rng);
        assert_eq!(vs.len(), 200);
        for v in vs {
            assert!(g.label(v).unwrap().raw() < 3);
        }
    }

    #[test]
    fn zero_label_count_is_clamped_to_one() {
        let mut g = LabelledGraph::new();
        let mut rng = rng_for(7);
        let vs = add_random_vertices(&mut g, 10, 0, &mut rng);
        assert!(vs.iter().all(|&v| g.label(v) == Some(Label::new(0))));
    }
}
