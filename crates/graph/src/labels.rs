//! Interning of human-readable vertex label names.
//!
//! The partitioning and motif-mining code only ever sees compact [`Label`]
//! integers; this module maps them back and forth to the string names used in
//! input files and in the paper's figures (`"a"`, `"b"`, `"person"`,
//! `"account"`, ...).

use crate::fxhash::FxHashMap;
use crate::ids::Label;
use serde::{Deserialize, Serialize};

/// A bidirectional map between label names and compact [`Label`] ids.
///
/// Interning is append-only: a name, once interned, keeps its id for the
/// lifetime of the interner, which keeps ids stable across the whole
/// experiment pipeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelInterner {
    names: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, Label>,
}

impl LabelInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner pre-populated with single-letter labels
    /// `a, b, c, ...` — the alphabet used throughout the paper's examples.
    pub fn with_alphabet(count: usize) -> Self {
        let mut interner = Self::new();
        for i in 0..count {
            let name = if i < 26 {
                ((b'a' + i as u8) as char).to_string()
            } else {
                format!("l{i}")
            };
            interner.intern(&name);
        }
        interner
    }

    /// Intern `name`, returning its stable label id.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&label) = self.index.get(name) {
            return label;
        }
        let label = Label::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), label);
        label
    }

    /// Look up a label id by name without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.index.get(name).copied()
    }

    /// The name of a label, if it was interned here.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, name)| (Label::new(i as u32), name.as_str()))
    }

    /// Rebuild the name → id index (needed after deserialisation, where the
    /// reverse index is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), Label::new(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = LabelInterner::new();
        let a1 = interner.intern("person");
        let b = interner.intern("account");
        let a2 = interner.intern("person");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.name(a1), Some("person"));
        assert_eq!(interner.get("account"), Some(b));
        assert_eq!(interner.get("missing"), None);
    }

    #[test]
    fn alphabet_matches_paper_labels() {
        let interner = LabelInterner::with_alphabet(4);
        assert_eq!(interner.get("a"), Some(Label::new(0)));
        assert_eq!(interner.get("d"), Some(Label::new(3)));
        assert_eq!(interner.len(), 4);
    }

    #[test]
    fn iteration_is_in_id_order() {
        let interner = LabelInterner::with_alphabet(3);
        let collected: Vec<_> = interner
            .iter()
            .map(|(l, n)| (l.raw(), n.to_owned()))
            .collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b".to_owned()),
                (2, "c".to_owned())
            ]
        );
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut interner = LabelInterner::with_alphabet(3);
        interner.index.clear();
        assert_eq!(interner.get("a"), None);
        interner.rebuild_index();
        assert_eq!(interner.get("a"), Some(Label::new(0)));
    }

    #[test]
    fn large_alphabet_uses_numbered_names() {
        let interner = LabelInterner::with_alphabet(30);
        assert_eq!(interner.get("l27"), Some(Label::new(27)));
    }
}
