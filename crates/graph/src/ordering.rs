//! Graph-stream orderings.
//!
//! Streaming partitioning heuristics are sensitive to the order in which
//! graph elements arrive (paper §3.1). The paper names three families —
//! random, adversarial and stochastic — and we additionally provide the BFS
//! and DFS orders commonly used in the streaming-partitioning literature
//! (Stanton & Kliot evaluate both).

use crate::fxhash::FxHashSet;
use crate::graph::LabelledGraph;
use crate::ids::VertexId;
use crate::traversal::{bfs_order, dfs_order};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the vertices of a graph are ordered into a stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamOrder {
    /// Uniform random permutation of the vertices.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Breadth-first order from the smallest vertex id (good locality; the
    /// friendliest ordering for greedy streaming heuristics).
    Bfs,
    /// Depth-first order from the smallest vertex id.
    Dfs,
    /// An adversarial order: vertices are emitted so that as many vertices as
    /// possible arrive *before* any of their neighbours, which starves greedy
    /// heuristics of information (the paper's §3.1 example).
    Adversarial,
    /// A stochastic "user input" order modelling organic growth: a random
    /// walk that mostly expands the neighbourhood of recently arrived
    /// vertices but occasionally jumps to a fresh region.
    Stochastic {
        /// RNG seed.
        seed: u64,
        /// Probability of jumping to a uniformly random unvisited vertex
        /// instead of growing the frontier (clamped to `[0, 1]`).
        jump_probability: f64,
    },
}

impl StreamOrder {
    /// Short, stable name for reports and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            StreamOrder::Random { .. } => "random",
            StreamOrder::Bfs => "bfs",
            StreamOrder::Dfs => "dfs",
            StreamOrder::Adversarial => "adversarial",
            StreamOrder::Stochastic { .. } => "stochastic",
        }
    }

    /// Produce the vertex arrival order for `graph` under this ordering.
    pub fn order(&self, graph: &LabelledGraph) -> Vec<VertexId> {
        match self {
            StreamOrder::Random { seed } => {
                let mut order = graph.vertices_sorted();
                let mut rng = StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
                order
            }
            StreamOrder::Bfs => bfs_order(graph),
            StreamOrder::Dfs => dfs_order(graph),
            StreamOrder::Adversarial => adversarial_order(graph),
            StreamOrder::Stochastic {
                seed,
                jump_probability,
            } => stochastic_order(graph, *seed, jump_probability.clamp(0.0, 1.0)),
        }
    }
}

/// Greedy "independent sets first" adversarial ordering.
///
/// Repeatedly sweep the remaining vertices in id order, emitting every vertex
/// none of whose neighbours has been emitted *in the current sweep*. The
/// first sweep is therefore a maximal independent set: a greedy partitioner
/// sees a long prefix of vertices that share no edges, reproducing the
/// worst-case behaviour described in the paper.
fn adversarial_order(graph: &LabelledGraph) -> Vec<VertexId> {
    let mut remaining: Vec<VertexId> = graph.vertices_sorted();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut emitted_this_sweep: FxHashSet<VertexId> = FxHashSet::default();
        let mut next_remaining = Vec::new();
        for v in remaining {
            let conflicts = graph
                .neighbors(v)
                .iter()
                .any(|n| emitted_this_sweep.contains(n));
            if conflicts {
                next_remaining.push(v);
            } else {
                emitted_this_sweep.insert(v);
                order.push(v);
            }
        }
        remaining = next_remaining;
    }
    order
}

/// Stochastic growth order (random walk with jumps).
fn stochastic_order(graph: &LabelledGraph, seed: u64, jump_probability: f64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let all = graph.vertices_sorted();
    let mut unvisited: FxHashSet<VertexId> = all.iter().copied().collect();
    let mut order = Vec::with_capacity(all.len());
    let mut frontier: Vec<VertexId> = Vec::new();

    while !unvisited.is_empty() {
        let next = if !frontier.is_empty() && !rng.random_bool(jump_probability) {
            // Grow from a random recently seen vertex that still has
            // unvisited neighbours.
            let mut pick = None;
            for _ in 0..8 {
                let idx = rng.random_range(0..frontier.len());
                let candidate = frontier[idx];
                let unvisited_neighbours: Vec<VertexId> = graph
                    .neighbors(candidate)
                    .iter()
                    .copied()
                    .filter(|n| unvisited.contains(n))
                    .collect();
                if let Some(&n) = unvisited_neighbours.as_slice().first() {
                    // Choose among the unvisited neighbours uniformly.
                    let chosen =
                        unvisited_neighbours[rng.random_range(0..unvisited_neighbours.len())];
                    pick = Some(chosen);
                    let _ = n;
                    break;
                }
            }
            pick
        } else {
            None
        };
        let v = match next {
            Some(v) => v,
            None => {
                // Jump: uniformly random unvisited vertex (deterministic scan
                // order + RNG index keeps this reproducible).
                let mut candidates: Vec<VertexId> = unvisited.iter().copied().collect();
                candidates.sort_unstable();
                candidates[rng.random_range(0..candidates.len())]
            }
        };
        unvisited.remove(&v);
        order.push(v);
        frontier.push(v);
        if frontier.len() > 64 {
            frontier.remove(0);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular::path_graph;
    use crate::generators::{barabasi_albert, GeneratorConfig};
    use crate::ids::Label;

    fn check_is_permutation(graph: &LabelledGraph, order: &[VertexId]) {
        assert_eq!(order.len(), graph.vertex_count());
        let unique: FxHashSet<_> = order.iter().copied().collect();
        assert_eq!(unique.len(), order.len());
        for v in order {
            assert!(graph.contains_vertex(*v));
        }
    }

    #[test]
    fn every_ordering_is_a_permutation() {
        let g = barabasi_albert(GeneratorConfig::new(300, 4, 3), 2).unwrap();
        for order in [
            StreamOrder::Random { seed: 1 },
            StreamOrder::Bfs,
            StreamOrder::Dfs,
            StreamOrder::Adversarial,
            StreamOrder::Stochastic {
                seed: 1,
                jump_probability: 0.05,
            },
        ] {
            let o = order.order(&g);
            check_is_permutation(&g, &o);
        }
    }

    #[test]
    fn random_order_depends_on_seed_only() {
        let g = barabasi_albert(GeneratorConfig::new(100, 4, 3), 2).unwrap();
        let a = StreamOrder::Random { seed: 5 }.order(&g);
        let b = StreamOrder::Random { seed: 5 }.order(&g);
        let c = StreamOrder::Random { seed: 6 }.order(&g);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn adversarial_prefix_is_an_independent_set() {
        let g = path_graph(10, &[Label::new(0)]);
        let order = StreamOrder::Adversarial.order(&g);
        check_is_permutation(&g, &order);
        // The first sweep of a path picks every other vertex: none of the
        // first five vertices may be adjacent.
        let prefix: FxHashSet<_> = order[..5].iter().copied().collect();
        for &v in &prefix {
            for n in g.neighbors(v) {
                assert!(!prefix.contains(n), "prefix is not independent");
            }
        }
    }

    #[test]
    fn bfs_order_keeps_neighbours_close_on_a_path() {
        let g = path_graph(20, &[Label::new(0)]);
        let order = StreamOrder::Bfs.order(&g);
        // On a path, BFS from an endpoint is exactly the path order.
        let positions: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in g.edges() {
            let gap = positions[&e.lo].abs_diff(positions[&e.hi]);
            assert!(gap <= 2, "BFS gap too large: {gap}");
        }
    }

    #[test]
    fn stochastic_order_is_deterministic_per_seed() {
        let g = barabasi_albert(GeneratorConfig::new(150, 4, 3), 2).unwrap();
        let s1 = StreamOrder::Stochastic {
            seed: 3,
            jump_probability: 0.1,
        }
        .order(&g);
        let s2 = StreamOrder::Stochastic {
            seed: 3,
            jump_probability: 0.1,
        }
        .order(&g);
        assert_eq!(s1, s2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(StreamOrder::Bfs.name(), "bfs");
        assert_eq!(StreamOrder::Adversarial.name(), "adversarial");
        assert_eq!(StreamOrder::Random { seed: 0 }.name(), "random");
    }
}
