//! Error types for the graph substrate.

use crate::ids::VertexId;
use std::fmt;

/// Errors produced by graph construction, IO and generator code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation referenced a vertex that is not present in the graph.
    MissingVertex(VertexId),
    /// An edge insertion referenced the same vertex twice (self-loops are not
    /// supported by the partitioning model).
    SelfLoop(VertexId),
    /// An edge insertion would duplicate an existing edge.
    DuplicateEdge(VertexId, VertexId),
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than a simple graph can hold).
    InvalidGeneratorConfig(String),
    /// A parse error while reading an edge-list file.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An IO error (wrapped as a string so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingVertex(v) => write!(f, "vertex {v} is not in the graph"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not supported"),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "edge ({a}, {b}) already exists")
            }
            GraphError::InvalidGeneratorConfig(msg) => {
                write!(f, "invalid generator configuration: {msg}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let v = VertexId::new(3);
        assert!(GraphError::MissingVertex(v).to_string().contains("v3"));
        assert!(GraphError::SelfLoop(v).to_string().contains("self-loop"));
        assert!(GraphError::DuplicateEdge(v, VertexId::new(4))
            .to_string()
            .contains("already exists"));
        assert!(GraphError::Parse {
            line: 7,
            message: "bad label".into()
        }
        .to_string()
        .contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: GraphError = io.into();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
