//! # loom-graph
//!
//! Labelled graph substrate for the LOOM workload-aware streaming graph
//! partitioner (Firth & Missier, GraphQ@EDBT 2016).
//!
//! This crate provides everything the upper layers need in order to talk about
//! graphs:
//!
//! * compact identifiers and an interner for vertex labels ([`ids`], [`labels`]),
//! * a mutable adjacency-list [`LabelledGraph`] plus an immutable CSR snapshot
//!   ([`csr::CsrGraph`]) for analytics,
//! * induced sub-graph extraction and traversal helpers ([`subgraph`],
//!   [`traversal`]),
//! * deterministic random graph generators covering the families used in the
//!   evaluation (Erdős–Rényi, Barabási–Albert, planted-partition communities,
//!   grids, regular topologies and motif-planted graphs) ([`generators`]),
//! * the graph *stream* abstraction and the stream orderings the paper
//!   discusses (random, BFS, DFS, adversarial, stochastic) ([`stream`],
//!   [`ordering`]),
//! * simple text / binary edge-list IO ([`io`]).
//!
//! Everything is deterministic given an explicit seed; nothing in this crate
//! performs global introspection that would not be available to a streaming
//! partitioner.
//!
//! ## Example
//!
//! ```
//! use loom_graph::prelude::*;
//!
//! let mut g = LabelledGraph::new();
//! let a = g.add_vertex(Label::new(0));
//! let b = g.add_vertex(Label::new(1));
//! g.add_edge(a, b).unwrap();
//! assert_eq!(g.vertex_count(), 2);
//! assert_eq!(g.degree(a), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod error;
pub mod fxhash;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod io;
pub mod labels;
pub mod ordering;
pub mod stats;
pub mod stream;
pub mod subgraph;
pub mod traversal;

pub use error::GraphError;
pub use graph::LabelledGraph;
pub use ids::{Label, VertexId};
pub use labels::LabelInterner;
pub use stream::{GraphStream, StreamElement};

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::csr::CsrGraph;
    pub use crate::error::GraphError;
    pub use crate::fxhash::{FxHashMap, FxHashSet};
    pub use crate::generators::{
        barabasi_albert, community_graph, erdos_renyi, grid_graph, motif_planted_graph,
        regular::{clique, cycle_graph, path_graph, star_graph},
        GeneratorConfig,
    };
    pub use crate::graph::LabelledGraph;
    pub use crate::ids::{Label, VertexId};
    pub use crate::labels::LabelInterner;
    pub use crate::ordering::StreamOrder;
    pub use crate::stats::{clustering_coefficient, degree_stats, DegreeStats};
    pub use crate::stream::{GraphStream, StreamElement};
    pub use crate::subgraph::induced_subgraph;
    pub use crate::traversal::{bfs_order, connected_components, dfs_order};
}
