//! Checkpoint writer and loader.
//!
//! A checkpoint is a directory `checkpoints/<epoch_seq>/` holding one blob
//! per shard (`shard_0000.blob`, …), one for the unassigned arena tail
//! (`tail.blob`), and a `MANIFEST` written **last**: the manifest names
//! every blob with its size and CRC, and is itself CRC-trailed and moved
//! into place with `tmp → fsync → rename → fsync(dir)`. A crash at any
//! point mid-checkpoint therefore leaves either a complete, self-validating
//! checkpoint or a directory without a valid `MANIFEST` — which recovery
//! simply skips in favour of the previous epoch. Nothing in a checkpoint is
//! ever trusted without its checksum.

use crate::codec::{blob_crc, decode_blob, encode_shard, encode_tail, ShardBlob};
use crate::error::{Result, StoreError};
use bytes::Bytes;
use loom_graph::io::crc32;
use loom_graph::{Label, LabelledGraph, VertexId};
use loom_partition::partition::{PartitionId, Partitioning};
use loom_serve::shard::ShardedStore;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory (under the durability root) that holds checkpoint epochs.
pub const CHECKPOINT_DIR: &str = "checkpoints";
/// Manifest file name inside one checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// First line of every manifest.
const MANIFEST_HEADER: &str = "LOOM-CHECKPOINT v1";

/// One blob recorded in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobEntry {
    /// File name inside the checkpoint directory.
    pub name: String,
    /// Exact size in bytes.
    pub size: u64,
    /// CRC-32 of the file contents.
    pub crc: u32,
}

/// The validated contents of one checkpoint's `MANIFEST`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Epoch sequence the checkpointed store was published at.
    pub epoch_seq: u64,
    /// WAL records already folded into this checkpoint — replay resumes
    /// *conceptually* here (the recovery path replays the full log through a
    /// fresh partitioner for exact state, and uses this for reporting).
    pub wal_records: u64,
    /// Name of the partitioner spec that produced the store.
    pub spec: String,
    /// Number of shard blobs (excluding the tail).
    pub shards: u32,
    /// Total vertices across all blobs.
    pub vertices: u64,
    /// Total edges in the checkpointed store.
    pub edges: u64,
    /// Every blob, in manifest order.
    pub blobs: Vec<BlobEntry>,
}

/// A checkpoint loaded back into memory.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The manifest the load was validated against.
    pub meta: CheckpointMeta,
    /// The rebuilt data graph, adjacency order identical to pre-crash.
    pub graph: LabelledGraph,
    /// The rebuilt vertex→partition assignment.
    pub partitioning: Partitioning,
    /// The rebuilt store, stamped with the checkpoint's `epoch_seq` — byte-
    /// for-byte re-encodable to the same blobs (verified during load).
    pub store: ShardedStore,
}

fn sync_dir(path: &Path) -> Result<()> {
    File::open(path)
        .and_then(|d| d.sync_all())
        .map_err(|e| StoreError::io(path, e))
}

fn write_blob(dir: &Path, name: &str, bytes: &Bytes) -> Result<BlobEntry> {
    let path = dir.join(name);
    let mut file = File::create(&path).map_err(|e| StoreError::io(&path, e))?;
    file.write_all(bytes.as_slice())
        .and_then(|()| file.sync_all())
        .map_err(|e| StoreError::io(&path, e))?;
    Ok(BlobEntry {
        name: name.to_string(),
        size: bytes.len() as u64,
        crc: blob_crc(bytes),
    })
}

fn manifest_body(meta: &CheckpointMeta) -> String {
    let mut body = String::new();
    body.push_str(MANIFEST_HEADER);
    body.push('\n');
    body.push_str(&format!("epoch_seq {}\n", meta.epoch_seq));
    body.push_str(&format!("wal_records {}\n", meta.wal_records));
    body.push_str(&format!("spec {}\n", meta.spec));
    body.push_str(&format!("shards {}\n", meta.shards));
    body.push_str(&format!("vertices {}\n", meta.vertices));
    body.push_str(&format!("edges {}\n", meta.edges));
    for blob in &meta.blobs {
        body.push_str(&format!("blob {} {} {}\n", blob.name, blob.size, blob.crc));
    }
    body
}

/// Serialize `store` as checkpoint `root/checkpoints/<epoch_seq>/`,
/// replacing any half-written directory of the same epoch. The directory
/// becomes visible to recovery only once its manifest is fully on disk.
pub fn write_checkpoint(
    root: &Path,
    store: &ShardedStore,
    wal_records: u64,
    spec: &str,
) -> Result<CheckpointMeta> {
    let epoch_seq = store.epoch();
    let parent = root.join(CHECKPOINT_DIR);
    fs::create_dir_all(&parent).map_err(|e| StoreError::io(&parent, e))?;
    let dir = parent.join(format!("{epoch_seq:010}"));
    if dir.exists() {
        fs::remove_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
    }
    fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;

    let mut blobs = Vec::with_capacity(store.shard_count() as usize + 1);
    for p in 0..store.shard_count() {
        let p = PartitionId::new(p);
        let bytes = encode_shard(store, p).expect("shard index in range");
        blobs.push(write_blob(&dir, &format!("shard_{:04}.blob", p.0), &bytes)?);
    }
    blobs.push(write_blob(&dir, "tail.blob", &encode_tail(store))?);

    let meta = CheckpointMeta {
        epoch_seq,
        wal_records,
        spec: spec.to_string(),
        shards: store.shard_count(),
        vertices: store.vertex_count() as u64,
        edges: store.edge_count() as u64,
        blobs,
    };
    let body = manifest_body(&meta);
    let trailed = format!("{body}crc {}\n", crc32(body.as_bytes()));

    // MANIFEST last: tmp → fsync → rename → fsync both directory levels, so
    // a crash anywhere above leaves no manifest and the whole directory is
    // invisible to recovery.
    let tmp = dir.join("MANIFEST.tmp");
    let mut file = File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
    file.write_all(trailed.as_bytes())
        .and_then(|()| file.sync_all())
        .map_err(|e| StoreError::io(&tmp, e))?;
    drop(file);
    let manifest = dir.join(MANIFEST_FILE);
    fs::rename(&tmp, &manifest).map_err(|e| StoreError::io(&manifest, e))?;
    sync_dir(&dir)?;
    sync_dir(&parent)?;
    Ok(meta)
}

fn parse_field<'a>(line: &'a str, key: &str, path: &Path) -> Result<&'a str> {
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| {
            StoreError::corrupt(path, format!("manifest line {line:?}: expected `{key} …`"))
        })
}

fn parse_u64(text: &str, what: &str, path: &Path) -> Result<u64> {
    text.parse()
        .map_err(|_| StoreError::corrupt(path, format!("manifest {what} {text:?} is not a number")))
}

/// Parse and checksum-validate one `MANIFEST` file.
pub fn read_manifest(dir: &Path) -> Result<CheckpointMeta> {
    let path = dir.join(MANIFEST_FILE);
    let raw = fs::read_to_string(&path).map_err(|e| StoreError::io(&path, e))?;
    let (body, trailer) = raw
        .rsplit_once("crc ")
        .ok_or_else(|| StoreError::corrupt(&path, "missing crc trailer"))?;
    let expect = parse_u64(trailer.trim(), "crc", &path)? as u32;
    if crc32(body.as_bytes()) != expect {
        return Err(StoreError::corrupt(&path, "manifest checksum mismatch"));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(StoreError::corrupt(&path, "bad manifest header"));
    }
    let mut next = |key: &str| -> Result<String> {
        let line = lines.next().ok_or_else(|| {
            StoreError::corrupt(&path, format!("manifest truncated before {key}"))
        })?;
        parse_field(line, key, &path).map(str::to_string)
    };
    let epoch_seq = parse_u64(&next("epoch_seq")?, "epoch_seq", &path)?;
    let wal_records = parse_u64(&next("wal_records")?, "wal_records", &path)?;
    let spec = next("spec")?;
    let shards = parse_u64(&next("shards")?, "shards", &path)? as u32;
    let vertices = parse_u64(&next("vertices")?, "vertices", &path)?;
    let edges = parse_u64(&next("edges")?, "edges", &path)?;
    let mut blobs = Vec::new();
    for line in lines {
        let rest = parse_field(line, "blob", &path)?;
        let mut parts = rest.split(' ');
        let (name, size, crc) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(s), Some(c), None) => (n, s, c),
            _ => {
                return Err(StoreError::corrupt(
                    &path,
                    format!("malformed blob line {line:?}"),
                ))
            }
        };
        blobs.push(BlobEntry {
            name: name.to_string(),
            size: parse_u64(size, "blob size", &path)?,
            crc: parse_u64(crc, "blob crc", &path)? as u32,
        });
    }
    if blobs.len() != shards as usize + 1 {
        return Err(StoreError::corrupt(
            &path,
            format!("{} blobs listed for {shards} shards + tail", blobs.len()),
        ));
    }
    Ok(CheckpointMeta {
        epoch_seq,
        wal_records,
        spec,
        shards,
        vertices,
        edges,
        blobs,
    })
}

/// Find the newest checkpoint under `root` with a valid manifest. Returns
/// the directory, its metadata, and how many newer-but-invalid checkpoint
/// directories were skipped (torn checkpoints from a crash mid-write).
pub fn latest_checkpoint(root: &Path) -> Result<Option<(PathBuf, CheckpointMeta, usize)>> {
    let parent = root.join(CHECKPOINT_DIR);
    let entries = match fs::read_dir(&parent) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(&parent, e)),
    };
    let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(&parent, e))?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(|n| n.parse::<u64>().ok()) {
            seqs.push((seq, entry.path()));
        }
    }
    seqs.sort_by_key(|entry| std::cmp::Reverse(entry.0));
    let mut skipped = 0;
    for (seq, dir) in seqs {
        match read_manifest(&dir) {
            Ok(meta) if meta.epoch_seq == seq => return Ok(Some((dir, meta, skipped))),
            _ => skipped += 1,
        }
    }
    Ok(None)
}

/// Load and fully validate the checkpoint in `dir`: every blob is size- and
/// CRC-checked against the manifest, the graph and partitioning are rebuilt
/// with adjacency order preserved, and the resulting store is re-encoded and
/// compared checksum-for-checksum against the manifest — recovery either
/// reproduces the pre-crash store bit-for-bit or fails loudly.
pub fn load_checkpoint(dir: &Path) -> Result<LoadedCheckpoint> {
    let meta = read_manifest(dir)?;
    let mut shard_blobs: Vec<ShardBlob> = Vec::with_capacity(meta.blobs.len());
    let mut tail: Option<ShardBlob> = None;
    for entry in &meta.blobs {
        let path = dir.join(&entry.name);
        let raw = fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
        if raw.len() as u64 != entry.size {
            return Err(StoreError::corrupt(
                &path,
                format!("size {} != manifest {}", raw.len(), entry.size),
            ));
        }
        if crc32(&raw) != entry.crc {
            return Err(StoreError::corrupt(&path, "blob checksum mismatch"));
        }
        let blob = decode_blob(Bytes::from(raw), &path)?;
        match blob.id {
            Some(_) => shard_blobs.push(blob),
            None if tail.is_none() => tail = Some(blob),
            None => {
                return Err(StoreError::corrupt(
                    &path,
                    "two tail blobs in one checkpoint",
                ))
            }
        }
    }
    let tail = tail.ok_or_else(|| StoreError::corrupt(dir, "checkpoint has no tail blob"))?;
    shard_blobs.sort_by_key(|b| b.id);

    // Rebuild the graph with adjacency lists verbatim: shard blobs in id
    // order, then the unassigned tail — the exact arena order the store was
    // serialized in, which is what makes the rebuild bit-identical.
    let mut lists: Vec<(VertexId, Label, Vec<VertexId>)> = Vec::new();
    let mut assignments: Vec<(VertexId, PartitionId)> = Vec::new();
    for blob in &shard_blobs {
        let p = PartitionId::new(blob.id.expect("shard blobs carry ids"));
        for (v, label, neighbours) in &blob.vertices {
            lists.push((*v, *label, neighbours.clone()));
            assignments.push((*v, p));
        }
    }
    for (v, label, neighbours) in &tail.vertices {
        lists.push((*v, *label, neighbours.clone()));
    }
    let graph = LabelledGraph::from_adjacency_lists(lists)?;
    if graph.vertex_count() as u64 != meta.vertices || graph.edge_count() as u64 != meta.edges {
        return Err(StoreError::corrupt(
            dir,
            format!(
                "rebuilt graph has {}v/{}e, manifest says {}v/{}e",
                graph.vertex_count(),
                graph.edge_count(),
                meta.vertices,
                meta.edges
            ),
        ));
    }
    let mut partitioning = Partitioning::new(meta.shards, graph.vertex_count().max(1))?;
    for (v, p) in assignments {
        partitioning.assign(v, p)?;
    }
    let store = ShardedStore::from_parts(&graph, &partitioning).with_epoch(meta.epoch_seq);

    // Bit-identity proof: re-encoding the rebuilt store must reproduce every
    // blob checksum the manifest recorded.
    for entry in &meta.blobs {
        let bytes = if entry.name == "tail.blob" {
            encode_tail(&store)
        } else {
            let id = entry
                .name
                .strip_prefix("shard_")
                .and_then(|s| s.strip_suffix(".blob"))
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| {
                    StoreError::corrupt(dir, format!("unrecognised blob name {}", entry.name))
                })?;
            encode_shard(&store, PartitionId::new(id)).ok_or_else(|| {
                StoreError::corrupt(dir, format!("blob {} out of range", entry.name))
            })?
        };
        if blob_crc(&bytes) != entry.crc {
            return Err(StoreError::corrupt(
                dir,
                format!("rebuilt store does not round-trip blob {}", entry.name),
            ));
        }
    }
    Ok(LoadedCheckpoint {
        meta,
        graph,
        partitioning,
        store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::erdos_renyi::erdos_renyi;
    use loom_graph::generators::GeneratorConfig;

    fn fixture(seed: u64) -> (LabelledGraph, Partitioning) {
        let g = erdos_renyi(GeneratorConfig::new(40, 4, seed), 120).unwrap();
        let mut part = Partitioning::new(4, g.vertex_count()).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            if i % 11 != 10 {
                part.assign(v, PartitionId::new((i % 4) as u32)).unwrap();
            }
        }
        (g, part)
    }

    fn tmproot(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("loom-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_roundtrip_is_bit_identical() {
        let root = tmproot("roundtrip");
        let (g, part) = fixture(7);
        let store = ShardedStore::from_parts(&g, &part).with_epoch(3);
        let meta = write_checkpoint(&root, &store, 12, "loom").unwrap();
        assert_eq!(meta.epoch_seq, 3);
        assert_eq!(meta.wal_records, 12);
        assert_eq!(meta.blobs.len(), 5);

        let (dir, found, skipped) = latest_checkpoint(&root).unwrap().unwrap();
        assert_eq!(found, meta);
        assert_eq!(skipped, 0);
        let loaded = load_checkpoint(&dir).unwrap();
        assert_eq!(loaded.store.epoch(), 3);
        assert_eq!(loaded.graph.vertex_count(), g.vertex_count());
        assert_eq!(loaded.graph.edge_count(), g.edge_count());
        // Blob-level bit identity, end to end: re-checkpointing the loaded
        // store produces byte-identical files.
        let root2 = tmproot("roundtrip2");
        write_checkpoint(&root2, &loaded.store, 12, "loom").unwrap();
        for entry in &meta.blobs {
            let a = std::fs::read(dir.join(&entry.name)).unwrap();
            let b = std::fs::read(
                root2
                    .join(CHECKPOINT_DIR)
                    .join(format!("{:010}", 3))
                    .join(&entry.name),
            )
            .unwrap();
            assert_eq!(a, b, "blob {} differs", entry.name);
        }
        std::fs::remove_dir_all(&root).unwrap();
        std::fs::remove_dir_all(&root2).unwrap();
    }

    #[test]
    fn missing_manifest_falls_back_to_previous_epoch() {
        let root = tmproot("fallback");
        let (g, part) = fixture(11);
        let store = ShardedStore::from_parts(&g, &part);
        write_checkpoint(&root, &store.clone().with_epoch(1), 5, "loom").unwrap();
        write_checkpoint(&root, &store.clone().with_epoch(2), 9, "loom").unwrap();
        // Simulate a crash mid-checkpoint of epoch 3: blobs but no MANIFEST.
        let torn = root.join(CHECKPOINT_DIR).join(format!("{:010}", 3));
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("shard_0000.blob"), b"partial").unwrap();
        let (_, meta, skipped) = latest_checkpoint(&root).unwrap().unwrap();
        assert_eq!(meta.epoch_seq, 2);
        assert_eq!(skipped, 1);
        // And a corrupted manifest is equally invisible.
        let manifest2 = root
            .join(CHECKPOINT_DIR)
            .join(format!("{:010}", 2))
            .join(MANIFEST_FILE);
        let mut raw = std::fs::read(&manifest2).unwrap();
        raw[30] ^= 0x01;
        std::fs::write(&manifest2, &raw).unwrap();
        let (_, meta, skipped) = latest_checkpoint(&root).unwrap().unwrap();
        assert_eq!(meta.epoch_seq, 1);
        assert_eq!(skipped, 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tampered_blob_fails_load() {
        let root = tmproot("tamper");
        let (g, part) = fixture(13);
        let store = ShardedStore::from_parts(&g, &part).with_epoch(1);
        write_checkpoint(&root, &store, 0, "loom").unwrap();
        let (dir, _, _) = latest_checkpoint(&root).unwrap().unwrap();
        let blob = dir.join("shard_0001.blob");
        let mut raw = std::fs::read(&blob).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&blob, &raw).unwrap();
        assert!(matches!(
            load_checkpoint(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_root_has_no_checkpoint() {
        let root = tmproot("empty");
        assert!(latest_checkpoint(&root).unwrap().is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
