//! Background checkpointing, driven by epoch publishes.
//!
//! [`CheckpointSink`] subscribes to an [`EpochStore`]'s publish broadcast.
//! `notify` runs on the publisher thread and must never block, so it only
//! stamps a latest-wins job slot and wakes a dedicated worker thread; the
//! worker loads the current epoch snapshot and writes the checkpoint while
//! ingestion keeps running. Under pressure, superseded publishes are simply
//! skipped — only the newest epoch is worth a checkpoint, and recovery
//! replays the WAL regardless.

use crate::checkpoint::{write_checkpoint, CheckpointMeta};
use crate::error::{Result, StoreError};
use loom_obs::{stage, FlightKind, SpanTimer, Telemetry};
use loom_serve::epoch::{EpochSink, EpochStore, SubscriptionId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Debug, Default)]
struct SinkState {
    /// WAL record count captured at the latest un-checkpointed publish.
    pending: Option<u64>,
    /// A checkpoint write is in flight.
    writing: bool,
    /// The sink is shutting down; the worker exits at the next wakeup.
    shutdown: bool,
    /// Highest epoch successfully checkpointed.
    last_written: u64,
    /// Checkpoints written over the sink's lifetime.
    written: u64,
    /// The last write failure, if any (surfaced by [`CheckpointSink::wait_idle`]).
    last_error: Option<String>,
}

/// An [`EpochSink`] that checkpoints every published epoch in the background.
pub struct CheckpointSink {
    state: Mutex<SinkState>,
    work: Condvar,
    done: Condvar,
    epochs: Weak<EpochStore>,
    root: PathBuf,
    spec: String,
    wal_records: AtomicU64,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Optional telemetry: checkpoint writes charge `store.checkpoint_write`
    /// and every sealed checkpoint leaves a flight-recorder event.
    telemetry: Mutex<Option<Arc<Telemetry>>>,
}

impl std::fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSink")
            .field("root", &self.root)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

impl CheckpointSink {
    /// Create a sink checkpointing into `root`, subscribe it to `epochs`,
    /// and start its worker thread. The sink holds the store only weakly, so
    /// dropping the `EpochStore` never deadlocks on the subscription cycle.
    pub fn attach(
        epochs: &Arc<EpochStore>,
        root: &Path,
        spec: &str,
    ) -> (Arc<Self>, SubscriptionId) {
        let sink = Arc::new(Self {
            state: Mutex::new(SinkState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            epochs: Arc::downgrade(epochs),
            root: root.to_path_buf(),
            spec: spec.to_string(),
            wal_records: AtomicU64::new(0),
            worker: Mutex::new(None),
            telemetry: Mutex::new(None),
        });
        let handle = {
            let sink = Arc::clone(&sink);
            std::thread::Builder::new()
                .name("loom-checkpoint".into())
                .spawn(move || sink.run())
                .expect("spawn checkpoint worker")
        };
        *sink.worker.lock().expect("worker slot") = Some(handle);
        let id = epochs.subscribe(Arc::clone(&sink) as Arc<dyn EpochSink>);
        (sink, id)
    }

    /// Observe this sink: subsequent checkpoint writes charge their wall
    /// clock into the `store.checkpoint_write` histogram, and every sealed
    /// checkpoint records a [`FlightKind::CheckpointSealed`] event.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        *self.telemetry.lock().expect("telemetry slot") = Some(telemetry);
    }

    /// Record the WAL position the *next* publish corresponds to. Call this
    /// before `EpochStore::publish`; `notify` runs inline on the publisher
    /// thread, so the value it reads here is exact, not racy.
    pub fn set_wal_records(&self, records: u64) {
        self.wal_records.store(records, Ordering::Release);
    }

    /// Highest epoch successfully checkpointed so far.
    pub fn last_written(&self) -> u64 {
        self.state.lock().expect("sink state").last_written
    }

    /// Checkpoints written over the sink's lifetime.
    pub fn written(&self) -> u64 {
        self.state.lock().expect("sink state").written
    }

    /// Block until no checkpoint work is pending or in flight, then return
    /// the highest epoch written. Surfaces the last write error, if any.
    pub fn wait_idle(&self, timeout: Duration) -> Result<u64> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().expect("sink state");
        while state.pending.is_some() || state.writing {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(StoreError::corrupt(
                    &self.root,
                    "timed out waiting for background checkpoint",
                ));
            }
            let (next, _) = self
                .done
                .wait_timeout(state, left)
                .expect("sink state poisoned");
            state = next;
        }
        match state.last_error.take() {
            Some(detail) => Err(StoreError::corrupt(&self.root, detail)),
            None => Ok(state.last_written),
        }
    }

    /// Stop the worker thread and detach. Idempotent; pending work that has
    /// not started yet is dropped (the WAL still covers it).
    pub fn shutdown(&self) {
        {
            let mut state = self.state.lock().expect("sink state");
            state.shutdown = true;
            self.work.notify_one();
        }
        let handle = self.worker.lock().expect("worker slot").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    fn run(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("sink state");
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(wal) = state.pending.take() {
                        state.writing = true;
                        break wal;
                    }
                    state = self.work.wait(state).expect("sink state poisoned");
                }
            };
            let result = self.write_current(job);
            let mut state = self.state.lock().expect("sink state");
            state.writing = false;
            match result {
                Ok(Some(meta)) => {
                    state.last_written = meta.epoch_seq;
                    state.written += 1;
                }
                Ok(None) => {} // stale or already-covered epoch: skipped
                Err(e) => state.last_error = Some(e.to_string()),
            }
            self.done.notify_all();
        }
    }

    fn write_current(&self, wal_records: u64) -> Result<Option<CheckpointMeta>> {
        let Some(epochs) = self.epochs.upgrade() else {
            return Ok(None); // store dropped mid-flight; nothing to snapshot
        };
        let snapshot = epochs.load();
        let last_written = self.state.lock().expect("sink state").last_written;
        if snapshot.epoch() <= last_written {
            return Ok(None);
        }
        let telemetry = self.telemetry.lock().expect("telemetry slot").clone();
        let hist = telemetry
            .as_ref()
            .map(|t| t.stage_histogram(stage::STORE_CHECKPOINT_WRITE));
        let span = SpanTimer::start(hist.as_deref());
        let written = write_checkpoint(&self.root, &snapshot, wal_records, &self.spec);
        drop(span);
        let meta = written?;
        if let Some(t) = &telemetry {
            t.flight().record(FlightKind::CheckpointSealed {
                epoch: meta.epoch_seq,
                wal_records: meta.wal_records,
            });
        }
        Ok(Some(meta))
    }
}

impl EpochSink for CheckpointSink {
    fn notify(&self, _epoch: u64) {
        // Publisher thread: stamp the job slot (latest wins) and wake the
        // worker. Never blocks, never does IO.
        let mut state = self.state.lock().expect("sink state");
        state.pending = Some(self.wal_records.load(Ordering::Acquire));
        self.work.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::latest_checkpoint;
    use loom_graph::generators::erdos_renyi::erdos_renyi;
    use loom_graph::generators::GeneratorConfig;
    use loom_partition::partition::{PartitionId, Partitioning};
    use loom_serve::shard::ShardedStore;

    fn store(seed: u64) -> ShardedStore {
        let g = erdos_renyi(GeneratorConfig::new(30, 3, seed), 80).unwrap();
        let mut part = Partitioning::new(3, g.vertex_count()).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i % 3) as u32)).unwrap();
        }
        ShardedStore::from_parts(&g, &part)
    }

    fn tmproot(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("loom-sink-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publishes_are_checkpointed_in_the_background() {
        let root = tmproot("bg");
        let epochs = Arc::new(EpochStore::new(store(1)));
        let (sink, sub) = CheckpointSink::attach(&epochs, &root, "loom");
        sink.set_wal_records(4);
        let seq = epochs.publish(store(2));
        let written = sink.wait_idle(Duration::from_secs(30)).unwrap();
        assert_eq!(written, seq);
        let (_, meta, _) = latest_checkpoint(&root).unwrap().unwrap();
        assert_eq!(meta.epoch_seq, seq);
        assert_eq!(meta.wal_records, 4);
        // A second publish advances the checkpoint.
        sink.set_wal_records(9);
        let seq2 = epochs.publish(store(3));
        assert_eq!(sink.wait_idle(Duration::from_secs(30)).unwrap(), seq2);
        assert_eq!(sink.written(), 2);
        epochs.unsubscribe(sub);
        sink.shutdown();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rapid_publishes_coalesce_to_the_newest_epoch() {
        let root = tmproot("coalesce");
        let epochs = Arc::new(EpochStore::new(store(1)));
        let (sink, sub) = CheckpointSink::attach(&epochs, &root, "loom");
        let mut last = 0;
        for i in 0..8 {
            sink.set_wal_records(i);
            last = epochs.publish(store(10 + i));
        }
        assert_eq!(sink.wait_idle(Duration::from_secs(30)).unwrap(), last);
        // Possibly fewer checkpoints than publishes, but the newest is on disk.
        assert!(sink.written() <= 8);
        let (_, meta, _) = latest_checkpoint(&root).unwrap().unwrap();
        assert_eq!(meta.epoch_seq, last);
        epochs.unsubscribe(sub);
        sink.shutdown();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_drops_the_subscription_cleanly() {
        let root = tmproot("shutdown");
        let epochs = Arc::new(EpochStore::new(store(1)));
        let (sink, sub) = CheckpointSink::attach(&epochs, &root, "loom");
        epochs.unsubscribe(sub);
        sink.shutdown();
        sink.shutdown();
        // After shutdown, the weak upgrade path still behaves: dropping the
        // store and notifying directly must not panic.
        drop(epochs);
        sink.notify(99);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
