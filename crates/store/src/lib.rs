//! # loom-store — durability for the LOOM serving stack
//!
//! The serving layer ([`loom-serve`](loom_serve)) keeps everything in
//! memory: a crash loses the ingested graph, the partitioner's streaming
//! state, and the epoch history. This crate adds the durability subsystem
//! that makes restart-and-serve possible:
//!
//! * **Checkpoints** ([`checkpoint`]) — each published epoch can be
//!   serialized as one CRC-checksummed blob per shard (the contiguous CSR
//!   arena slice plus the shard's label index, boundary, and halo) under
//!   `checkpoints/<epoch_seq>/`, with a `MANIFEST` written last and fsynced
//!   so a torn checkpoint is simply invisible.
//! * **Write-ahead log** ([`wal`]) — every ingested batch is appended as a
//!   CRC-framed record and fsynced *before* it reaches the partitioner; a
//!   crash mid-append leaves a torn tail that truncates cleanly back to the
//!   last acknowledged batch.
//! * **Background checkpointing** ([`sink`]) — a [`CheckpointSink`]
//!   subscribes to the epoch store's publish broadcast and checkpoints each
//!   new epoch off the ingest path, coalescing under pressure.
//! * **Recovery** ([`recovery`]) — [`recover`] loads the newest valid
//!   checkpoint (bit-verified against its manifest), truncates the WAL's
//!   torn tail, and returns the acknowledged batch history; replaying it
//!   through a fresh deterministic partitioner reproduces exact pre-crash
//!   state, and serving resumes pinned at the original `epoch_seq`.
//!
//! The on-disk layout of a durability root:
//!
//! ```text
//! <root>/
//! ├── wal.log                       append-only, CRC-framed batches
//! └── checkpoints/
//!     ├── 0000000003/
//!     │   ├── shard_0000.blob       CSR slice + label index + halo
//!     │   ├── shard_0001.blob
//!     │   ├── tail.blob             unassigned arena tail
//!     │   └── MANIFEST              written last; names every blob + CRC
//!     └── 0000000005/…
//! ```
//!
//! Ordering rules: blobs are fsynced before the manifest; the manifest is
//! written to a temp file, fsynced, renamed into place, and the directory
//! fsynced — so `MANIFEST` present ⇒ checkpoint complete. WAL appends are
//! fsynced before the batch is acknowledged to the partitioner.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod recovery;
pub mod sink;
pub mod wal;

pub use checkpoint::{
    latest_checkpoint, load_checkpoint, write_checkpoint, BlobEntry, CheckpointMeta,
    LoadedCheckpoint,
};
pub use codec::ShardBlob;
pub use error::{Result, StoreError};
pub use recovery::{recover, RecoveredState, RecoveryReport};
pub use sink::CheckpointSink;
pub use wal::{Wal, WalReplay, WAL_FILE};
