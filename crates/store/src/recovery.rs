//! Restart-and-serve recovery.
//!
//! [`recover`] is the single entry point a restarting process calls on its
//! durability root. It finds the newest checkpoint with a valid manifest
//! (skipping torn ones), loads and bit-verifies it, then resumes the WAL —
//! truncating any torn tail — and hands back everything the caller needs to
//! rebuild exact pre-crash state: the checkpointed store (pinned at its
//! original `epoch_seq`), the full acknowledged batch history for replaying
//! through a fresh partitioner, and the reopened append-ready log.

use crate::checkpoint::{latest_checkpoint, load_checkpoint, LoadedCheckpoint};
use crate::error::Result;
use crate::wal::{Wal, WAL_FILE};
use loom_graph::StreamElement;
use std::path::Path;

/// What [`recover`] found on disk, summarized for logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch sequence of the recovered checkpoint (0 when none existed).
    pub epoch_seq: u64,
    /// Whether a valid checkpoint was found at all.
    pub checkpoint_found: bool,
    /// Newer-but-invalid (torn) checkpoint directories skipped over.
    pub invalid_checkpoints_skipped: usize,
    /// Acknowledged WAL records recovered (full history since creation).
    pub wal_records: u64,
    /// Of those, how many the checkpoint had already folded in.
    pub wal_records_in_checkpoint: u64,
    /// Bytes of torn WAL tail truncated during resume.
    pub wal_truncated_bytes: u64,
}

/// Everything recovered from a durability root.
#[derive(Debug)]
pub struct RecoveredState {
    /// The newest valid checkpoint, fully loaded and bit-verified; `None`
    /// when the root has never been checkpointed.
    pub checkpoint: Option<LoadedCheckpoint>,
    /// Every acknowledged batch, in ingest order. Replaying *all* of them
    /// through a fresh (deterministic) partitioner reproduces the exact
    /// pre-crash partitioner state — including its streaming window.
    pub batches: Vec<Vec<StreamElement>>,
    /// The reopened log, torn tail truncated, positioned for append.
    pub wal: Wal,
    /// Summary of what was found.
    pub report: RecoveryReport,
}

/// Recover a durability root: locate and load the newest valid checkpoint,
/// resume the WAL (truncating a torn tail), and report what happened. A
/// fresh or empty root recovers to an empty state with a newly created log.
pub fn recover(root: &Path) -> Result<RecoveredState> {
    let checkpoint = match latest_checkpoint(root)? {
        Some((dir, _meta, skipped)) => Some((load_checkpoint(&dir)?, skipped)),
        None => None,
    };
    let (wal, replay) = Wal::resume(&root.join(WAL_FILE))?;
    let (checkpoint, skipped) = match checkpoint {
        Some((loaded, skipped)) => (Some(loaded), skipped),
        None => (None, 0),
    };
    let report = RecoveryReport {
        epoch_seq: checkpoint.as_ref().map_or(0, |c| c.meta.epoch_seq),
        checkpoint_found: checkpoint.is_some(),
        invalid_checkpoints_skipped: skipped,
        wal_records: replay.records,
        wal_records_in_checkpoint: checkpoint.as_ref().map_or(0, |c| c.meta.wal_records),
        wal_truncated_bytes: replay.truncated_bytes,
    };
    Ok(RecoveredState {
        checkpoint,
        batches: replay.batches,
        wal,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_checkpoint;
    use loom_graph::generators::erdos_renyi::erdos_renyi;
    use loom_graph::generators::GeneratorConfig;
    use loom_graph::prelude::StreamOrder;
    use loom_graph::GraphStream;
    use loom_partition::partition::{PartitionId, Partitioning};
    use loom_serve::shard::ShardedStore;
    use std::path::PathBuf;

    fn tmproot(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("loom-rec-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fresh_root_recovers_empty() {
        let root = tmproot("fresh");
        let state = recover(&root).unwrap();
        assert!(state.checkpoint.is_none());
        assert!(state.batches.is_empty());
        assert_eq!(
            state.report,
            RecoveryReport {
                epoch_seq: 0,
                checkpoint_found: false,
                invalid_checkpoints_skipped: 0,
                wal_records: 0,
                wal_records_in_checkpoint: 0,
                wal_truncated_bytes: 0,
            }
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_plus_wal_tail_recovers_both() {
        let root = tmproot("both");
        let g = erdos_renyi(GeneratorConfig::new(24, 3, 5), 60).unwrap();
        let stream = GraphStream::from_graph(&g, &StreamOrder::Bfs);
        let elements = stream.elements();

        // WAL the full history in two batches; checkpoint after the first.
        let half = elements.len() / 2;
        let mut wal = Wal::create(&root.join(WAL_FILE)).unwrap();
        wal.append(&elements[..half]).unwrap();
        let first = GraphStream::from_elements(elements[..half].to_vec()).materialise();
        let mut part = Partitioning::new(2, first.vertex_count().max(1)).unwrap();
        for (i, v) in first.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i % 2) as u32)).unwrap();
        }
        let store = ShardedStore::from_parts(&first, &part).with_epoch(1);
        write_checkpoint(&root, &store, 1, "loom").unwrap();
        wal.append(&elements[half..]).unwrap();
        drop(wal);
        // Torn tail from a crash mid-append.
        let wal_path = root.join(WAL_FILE);
        let mut raw = std::fs::read(&wal_path).unwrap();
        raw.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&wal_path, &raw).unwrap();

        let state = recover(&root).unwrap();
        let ckpt = state.checkpoint.as_ref().unwrap();
        assert_eq!(ckpt.meta.epoch_seq, 1);
        assert_eq!(ckpt.store.epoch(), 1);
        assert_eq!(state.report.wal_records, 2);
        assert_eq!(state.report.wal_records_in_checkpoint, 1);
        assert_eq!(state.report.wal_truncated_bytes, 3);
        // The batches replay to the full pre-crash graph.
        let all: Vec<_> = state.batches.concat();
        let replayed = GraphStream::from_elements(all).materialise();
        assert_eq!(replayed.vertex_count(), g.vertex_count());
        assert_eq!(replayed.edge_count(), g.edge_count());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
