//! Error type for the durability layer.

use loom_graph::GraphError;
use loom_partition::PartitionError;
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors produced while writing or recovering durable state.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system IO failure, annotated with the path involved.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying `std::io` error, stringified.
        source: String,
    },
    /// On-disk state failed validation: bad magic, checksum mismatch, a
    /// manifest that does not parse, or a blob that does not round-trip.
    Corrupt {
        /// The file or directory that failed validation.
        path: PathBuf,
        /// What exactly was wrong.
        detail: String,
    },
    /// Rebuilding the graph from checkpoint blobs failed.
    Graph(GraphError),
    /// Rebuilding the partitioning from checkpoint blobs failed.
    Partition(PartitionError),
}

impl StoreError {
    pub(crate) fn io(path: &Path, err: std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            source: err.to_string(),
        }
    }

    pub(crate) fn corrupt(path: &Path, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt durable state at {}: {detail}", path.display())
            }
            StoreError::Graph(e) => write!(f, "checkpoint graph rebuild failed: {e}"),
            StoreError::Partition(e) => {
                write!(f, "checkpoint partitioning rebuild failed: {e}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Graph(e) => Some(e),
            StoreError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

impl From<PartitionError> for StoreError {
    fn from(e: PartitionError) -> Self {
        StoreError::Partition(e)
    }
}

/// Result alias for the durability layer.
pub type Result<T> = std::result::Result<T, StoreError>;
