//! Append-only write-ahead log for ingested stream batches.
//!
//! The log is a magic header followed by CRC-framed records — one record per
//! ingested batch, framed with `loom_graph::io::put_frame` (`[len][crc32]
//! [payload]`). Appends are `fsync`ed before the batch reaches the
//! partitioner, so every acknowledged batch survives a crash. A crash *mid*
//! append leaves a torn tail whose frame fails its length or CRC check;
//! [`Wal::resume`] truncates the file back to the last good frame, which is
//! exactly the prefix of batches that were acknowledged.

use crate::codec::{decode_elements, encode_elements};
use crate::error::{Result, StoreError};
use bytes::{Bytes, BytesMut};
use loom_graph::io::{put_frame, take_frame};
use loom_graph::StreamElement;
use loom_obs::{Histogram, SpanTimer};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the write-ahead log inside a durability root.
pub const WAL_FILE: &str = "wal.log";

/// Magic header identifying a LOOM WAL file.
const WAL_MAGIC: &[u8; 8] = b"LOOMWAL1";

/// Upper bound on a single record's payload — a batch far larger than any
/// realistic ingest chunk, small enough that a corrupt length prefix cannot
/// drive a giant allocation.
const MAX_RECORD: usize = 64 << 20;

/// An open, append-ready write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
    /// `store.fsync` histogram each append's write+sync wall clock is charged
    /// into; `None` (telemetry off) skips even the clock read.
    fsync_hist: Option<Arc<Histogram>>,
}

/// What [`Wal::replay`] recovered from disk.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// The acknowledged batches, in append order.
    pub batches: Vec<Vec<StreamElement>>,
    /// Number of valid records (`batches.len()` as u64).
    pub records: u64,
    /// Bytes of torn tail discarded past the last good frame.
    pub truncated_bytes: u64,
    /// Length of the valid prefix (header plus good frames).
    pub valid_len: u64,
}

impl Wal {
    /// Create a fresh, empty log at `path`, truncating any existing file,
    /// and `fsync` the header.
    pub fn create(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        file.write_all(WAL_MAGIC)
            .and_then(|()| file.sync_data())
            .map_err(|e| StoreError::io(path, e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: 0,
            fsync_hist: None,
        })
    }

    /// Charge every append's write+`fsync` wall clock into `hist` (the
    /// session wires `store.fsync` here). Appends on an unobserved log take
    /// no clock reads at all.
    pub fn set_fsync_histogram(&mut self, hist: Arc<Histogram>) {
        self.fsync_hist = Some(hist);
    }

    /// Replay the log at `path` without opening it for append. A missing
    /// file replays as empty; a torn tail is *reported* (not yet truncated);
    /// anything that is not a LOOM WAL is a hard error — this function never
    /// silently discards a foreign file.
    pub fn replay(path: &Path) -> Result<WalReplay> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)
                    .map_err(|e| StoreError::io(path, e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalReplay::default());
            }
            Err(e) => return Err(StoreError::io(path, e)),
        }
        let file_len = raw.len() as u64;
        if raw.len() < WAL_MAGIC.len() || &raw[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StoreError::corrupt(path, "missing LOOMWAL1 magic header"));
        }
        let mut replay = WalReplay {
            valid_len: WAL_MAGIC.len() as u64,
            ..WalReplay::default()
        };
        let mut bytes = Bytes::from(raw[WAL_MAGIC.len()..].to_vec());
        loop {
            match take_frame(&mut bytes, MAX_RECORD) {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    let frame_len = 8 + payload.len() as u64;
                    // A CRC-valid frame whose payload fails to decode is not
                    // a torn write (torn writes fail the CRC): it is real
                    // corruption or a format break, and must be a hard error
                    // rather than a silent truncation of acknowledged data.
                    let batch = decode_elements(payload, path)?;
                    replay.batches.push(batch);
                    replay.records += 1;
                    replay.valid_len += frame_len;
                }
                Err(_) => break, // torn tail: truncate here
            }
        }
        replay.truncated_bytes = file_len.saturating_sub(replay.valid_len);
        Ok(replay)
    }

    /// Open the log at `path` for appending, replaying what is already
    /// there. A torn tail is truncated off the file (and synced) so the next
    /// append starts at a clean frame boundary. A missing file is created.
    pub fn resume(path: &Path) -> Result<(Self, WalReplay)> {
        if !path.exists() {
            return Ok((Self::create(path)?, WalReplay::default()));
        }
        let replay = Self::replay(path)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        if replay.truncated_bytes > 0 {
            file.set_len(replay.valid_len)
                .and_then(|()| file.sync_data())
                .map_err(|e| StoreError::io(path, e))?;
        }
        let mut wal = Self {
            file,
            path: path.to_path_buf(),
            records: replay.records,
            fsync_hist: None,
        };
        wal.file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(&wal.path, e))?;
        Ok((wal, replay))
    }

    /// Append one batch as a single CRC-framed record and `fsync` it. On
    /// `Ok`, the batch is durable.
    pub fn append(&mut self, batch: &[StreamElement]) -> Result<()> {
        let payload = encode_elements(batch);
        let mut framed = BytesMut::with_capacity(8 + payload.len());
        put_frame(&mut framed, payload.as_slice());
        let framed = framed.freeze();
        let span = SpanTimer::start(self.fsync_hist.as_deref());
        let synced = self
            .file
            .write_all(framed.as_slice())
            .and_then(|()| self.file.sync_data());
        drop(span);
        synced.map_err(|e| StoreError::io(&self.path, e))?;
        self.records += 1;
        Ok(())
    }

    /// Number of records appended plus replayed — the WAL position recorded
    /// in checkpoint manifests.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Force an `fsync` (appends already sync; this is for belt-and-braces
    /// call sites like checkpoint boundaries).
    pub fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io(&self.path, e))
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::{Label, VertexId};

    fn batch(base: u64) -> Vec<StreamElement> {
        vec![
            StreamElement::AddVertex {
                id: VertexId::new(base),
                label: Label::new((base % 4) as u32),
            },
            StreamElement::AddVertex {
                id: VertexId::new(base + 1),
                label: Label::new(((base + 1) % 4) as u32),
            },
            StreamElement::AddEdge {
                source: VertexId::new(base),
                target: VertexId::new(base + 1),
            },
        ]
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("loom-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..5 {
            wal.append(&batch(i * 10)).unwrap();
        }
        assert_eq!(wal.records(), 5);
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 5);
        assert_eq!(replay.truncated_bytes, 0);
        for (i, b) in replay.batches.iter().enumerate() {
            assert_eq!(b, &batch(i as u64 * 10));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_resume() {
        let dir = tmpdir("torn");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&batch(0)).unwrap();
        wal.append(&batch(10)).unwrap();
        drop(wal);
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a partial frame at the tail.
        let mut raw = std::fs::read(&path).unwrap();
        let mut torn = raw.clone();
        torn.extend_from_slice(&[0x2A, 0x00, 0x00, 0x00, 0xDE, 0xAD]); // half a header
        std::fs::write(&path, &torn).unwrap();
        let (mut resumed, replay) = Wal::resume(&path).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.truncated_bytes, 6);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        // The resumed log appends at a clean boundary.
        resumed.append(&batch(20)).unwrap();
        drop(resumed);
        assert_eq!(Wal::replay(&path).unwrap().records, 3);
        // A torn tail that corrupts a whole trailing record: flip a byte in
        // the final frame instead of appending garbage.
        raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, replay) = Wal::resume(&path).unwrap();
        assert_eq!(replay.records, 2, "corrupt trailing frame dropped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_replays_empty_and_resume_creates() {
        let dir = tmpdir("missing");
        let path = dir.join(WAL_FILE);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 0);
        let (wal, replay) = Wal::resume(&path).unwrap();
        assert_eq!(replay.records, 0);
        assert_eq!(wal.records(), 0);
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_a_hard_error() {
        let dir = tmpdir("foreign");
        let path = dir.join(WAL_FILE);
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(
            Wal::replay(&path),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(
            Wal::resume(&path).is_err(),
            "resume must not wipe foreign files"
        );
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a wal");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_batches_are_legal_records() {
        let dir = tmpdir("empty");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&[]).unwrap();
        wal.append(&batch(0)).unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, 2);
        assert!(replay.batches[0].is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
