//! Binary codecs for checkpoint blobs and WAL record payloads.
//!
//! Everything here extends the `loom_graph::io` binary substrate: the same
//! little-endian [`bytes`] primitives, the same [`crc32`] checksum, the same
//! "bounds-check every length prefix, never trust a count you have not
//! bounded by the payload size" discipline. Encoders are **deterministic**:
//! the same [`ShardedStore`] always serializes to the same bytes, which is
//! what lets recovery prove bit-identity by re-encoding and comparing CRCs.

use crate::error::{Result, StoreError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use loom_graph::io::crc32;
use loom_graph::{Label, StreamElement, VertexId};
use loom_partition::partition::PartitionId;
use loom_serve::shard::{ArenaSlice, ShardedStore};
use std::path::Path;

/// Magic prefix of a shard blob ("LSHD").
const BLOB_MAGIC: u32 = 0x4C53_4844;
/// Shard blob format version.
const BLOB_VERSION: u32 = 1;
/// Blob kind tag: a partition's home slice.
const KIND_SHARD: u32 = 0;
/// Blob kind tag: the unassigned arena tail.
const KIND_TAIL: u32 = 1;

/// WAL element tag: `StreamElement::AddVertex`.
const EL_VERTEX: u8 = 0;
/// WAL element tag: `StreamElement::AddEdge`.
const EL_EDGE: u8 = 1;
/// WAL element tag: `StreamElement::RemoveVertex`.
const EL_REMOVE_VERTEX: u8 = 2;
/// WAL element tag: `StreamElement::RemoveEdge`.
const EL_REMOVE_EDGE: u8 = 3;
/// WAL element tag: `StreamElement::Relabel`.
const EL_RELABEL: u8 = 4;

/// A decoded checkpoint blob: one shard's contiguous view of the CSR arena
/// (home vertices with labels and adjacency in arena order), plus the
/// shard's derived indexes for diffability — or the unassigned tail
/// (`id == None`, empty indexes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBlob {
    /// The partition this blob serializes; `None` for the unassigned tail.
    pub id: Option<u32>,
    /// Home vertices in arena order: id, label, adjacency in the data
    /// graph's stable iteration order.
    pub vertices: Vec<(VertexId, Label, Vec<VertexId>)>,
    /// Home vertices with at least one remote neighbour, sorted by id.
    pub boundary: Vec<VertexId>,
    /// Remote vertices adjacent to the shard (the replicated halo).
    pub halo: Vec<VertexId>,
    /// Label → home vertices, sorted by label for determinism.
    pub label_index: Vec<(Label, Vec<VertexId>)>,
}

fn put_ids(buf: &mut BytesMut, ids: &[VertexId]) {
    buf.put_u64_le(ids.len() as u64);
    for v in ids {
        buf.put_u64_le(v.raw());
    }
}

fn encode_slice(buf: &mut BytesMut, slice: &ArenaSlice<'_>) {
    buf.put_u64_le(slice.len() as u64);
    let (vertices, labels) = (slice.vertices(), slice.labels());
    for i in 0..slice.len() {
        buf.put_u64_le(vertices[i].raw());
        buf.put_u32_le(labels[i].raw());
        let neighbours = slice.neighbors(i);
        buf.put_u32_le(neighbours.len() as u32);
        for n in neighbours {
            buf.put_u64_le(n.raw());
        }
    }
}

/// Serialize shard `p` of `store` as one contiguous blob. `None` when `p`
/// is out of range.
pub fn encode_shard(store: &ShardedStore, p: PartitionId) -> Option<Bytes> {
    let slice = store.shard_slice(p)?;
    let shard = store.shard(p)?;
    let mut buf = BytesMut::with_capacity(64 + slice.len() * 24);
    buf.put_u32_le(BLOB_MAGIC);
    buf.put_u32_le(BLOB_VERSION);
    buf.put_u32_le(KIND_SHARD);
    buf.put_u32_le(p.0);
    encode_slice(&mut buf, &slice);
    put_ids(&mut buf, shard.boundary());
    put_ids(&mut buf, shard.halo());
    let mut index: Vec<(Label, &[VertexId])> = shard.label_index().collect();
    index.sort_by_key(|(l, _)| *l);
    buf.put_u32_le(index.len() as u32);
    for (label, members) in index {
        buf.put_u32_le(label.raw());
        put_ids(&mut buf, members);
    }
    Some(buf.freeze())
}

/// Serialize the unassigned tail of `store`'s arena (vertices the
/// partitioner had not placed at snapshot time). Always produced, even when
/// empty, so a checkpoint's blob set has a fixed shape.
pub fn encode_tail(store: &ShardedStore) -> Bytes {
    let slice = store.unassigned_slice();
    let mut buf = BytesMut::with_capacity(64 + slice.len() * 24);
    buf.put_u32_le(BLOB_MAGIC);
    buf.put_u32_le(BLOB_VERSION);
    buf.put_u32_le(KIND_TAIL);
    buf.put_u32_le(0);
    encode_slice(&mut buf, &slice);
    put_ids(&mut buf, &[]);
    put_ids(&mut buf, &[]);
    buf.put_u32_le(0);
    buf.freeze()
}

/// Checked little-endian reader over a [`Bytes`] buffer: every accessor
/// verifies the remaining length first (the vendored `bytes` panics on
/// underflow, and a decoder must return `Err` on torn input, never panic).
struct Reader<'a> {
    bytes: Bytes,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn new(bytes: Bytes, path: &'a Path) -> Self {
        Self { bytes, path }
    }

    fn need(&self, want: usize, what: &str) -> Result<()> {
        if self.bytes.remaining() < want {
            return Err(StoreError::corrupt(
                self.path,
                format!(
                    "truncated while reading {what}: need {want} bytes, {} remain",
                    self.bytes.remaining()
                ),
            ));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        self.need(1, what)?;
        Ok(self.bytes.get_u8())
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        self.need(4, what)?;
        Ok(self.bytes.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        self.need(8, what)?;
        Ok(self.bytes.get_u64_le())
    }

    /// A count that precedes `stride`-byte records: bounded by the bytes
    /// actually remaining, so a flipped count can never drive a huge
    /// allocation.
    fn count(&mut self, stride: usize, what: &str) -> Result<usize> {
        let raw = self.u64(what)?;
        let bound = usize::try_from(raw).ok().filter(|n| {
            n.checked_mul(stride)
                .is_some_and(|b| b <= self.bytes.remaining())
        });
        bound.ok_or_else(|| {
            StoreError::corrupt(
                self.path,
                format!("implausible {what}: {raw} records of {stride}+ bytes"),
            )
        })
    }

    fn ids(&mut self, what: &str) -> Result<Vec<VertexId>> {
        let count = self.count(8, what)?;
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(VertexId::new(self.u64(what)?));
        }
        Ok(ids)
    }

    fn finish(self, what: &str) -> Result<()> {
        if self.bytes.remaining() != 0 {
            return Err(StoreError::corrupt(
                self.path,
                format!("{} trailing bytes after {what}", self.bytes.remaining()),
            ));
        }
        Ok(())
    }
}

/// Decode a checkpoint blob produced by [`encode_shard`] or [`encode_tail`].
/// `path` is used only for error reporting.
pub fn decode_blob(bytes: Bytes, path: &Path) -> Result<ShardBlob> {
    let mut r = Reader::new(bytes, path);
    let magic = r.u32("blob magic")?;
    if magic != BLOB_MAGIC {
        return Err(StoreError::corrupt(
            path,
            format!("bad blob magic 0x{magic:08x}"),
        ));
    }
    let version = r.u32("blob version")?;
    if version != BLOB_VERSION {
        return Err(StoreError::corrupt(
            path,
            format!("unsupported blob version {version}"),
        ));
    }
    let kind = r.u32("blob kind")?;
    let raw_id = r.u32("shard id")?;
    let id = match kind {
        KIND_SHARD => Some(raw_id),
        KIND_TAIL => None,
        other => {
            return Err(StoreError::corrupt(
                path,
                format!("unknown blob kind {other}"),
            ));
        }
    };
    // Minimum 16 bytes per vertex record (id + label + degree).
    let vertex_count = r.count(16, "vertex count")?;
    let mut vertices = Vec::with_capacity(vertex_count);
    for _ in 0..vertex_count {
        let v = VertexId::new(r.u64("vertex id")?);
        let label = Label::new(r.u32("vertex label")?);
        let degree = r.u32("vertex degree")? as usize;
        r.need(degree.saturating_mul(8), "adjacency")?;
        let mut neighbours = Vec::with_capacity(degree);
        for _ in 0..degree {
            neighbours.push(VertexId::new(r.u64("neighbour id")?));
        }
        vertices.push((v, label, neighbours));
    }
    let boundary = r.ids("boundary")?;
    let halo = r.ids("halo")?;
    let entries = r.u32("label index size")? as usize;
    let mut label_index = Vec::with_capacity(entries.min(1024));
    for _ in 0..entries {
        let label = Label::new(r.u32("index label")?);
        let members = r.ids("index members")?;
        label_index.push((label, members));
    }
    r.finish("blob")?;
    Ok(ShardBlob {
        id,
        vertices,
        boundary,
        halo,
        label_index,
    })
}

/// Encode a batch of stream elements as one WAL record payload.
pub fn encode_elements(batch: &[StreamElement]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + batch.len() * 17);
    buf.put_u32_le(batch.len() as u32);
    for element in batch {
        match *element {
            StreamElement::AddVertex { id, label } => {
                buf.put_u8(EL_VERTEX);
                buf.put_u64_le(id.raw());
                buf.put_u32_le(label.raw());
            }
            StreamElement::AddEdge { source, target } => {
                buf.put_u8(EL_EDGE);
                buf.put_u64_le(source.raw());
                buf.put_u64_le(target.raw());
            }
            StreamElement::RemoveVertex { id } => {
                buf.put_u8(EL_REMOVE_VERTEX);
                buf.put_u64_le(id.raw());
            }
            StreamElement::RemoveEdge { source, target } => {
                buf.put_u8(EL_REMOVE_EDGE);
                buf.put_u64_le(source.raw());
                buf.put_u64_le(target.raw());
            }
            StreamElement::Relabel { id, label } => {
                buf.put_u8(EL_RELABEL);
                buf.put_u64_le(id.raw());
                buf.put_u32_le(label.raw());
            }
        }
    }
    buf.freeze()
}

/// Decode one WAL record payload back into its element batch.
pub fn decode_elements(bytes: Bytes, path: &Path) -> Result<Vec<StreamElement>> {
    let mut r = Reader::new(bytes, path);
    let count = r.u32("element count")? as usize;
    // Smallest element is 9 bytes (RemoveVertex: tag + u64 id).
    if count.saturating_mul(9) > r.bytes.remaining() + 9 {
        return Err(StoreError::corrupt(
            path,
            format!("implausible element count {count}"),
        ));
    }
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        match r.u8("element tag")? {
            EL_VERTEX => batch.push(StreamElement::AddVertex {
                id: VertexId::new(r.u64("vertex id")?),
                label: Label::new(r.u32("vertex label")?),
            }),
            EL_EDGE => batch.push(StreamElement::AddEdge {
                source: VertexId::new(r.u64("edge source")?),
                target: VertexId::new(r.u64("edge target")?),
            }),
            EL_REMOVE_VERTEX => batch.push(StreamElement::RemoveVertex {
                id: VertexId::new(r.u64("removed vertex id")?),
            }),
            EL_REMOVE_EDGE => batch.push(StreamElement::RemoveEdge {
                source: VertexId::new(r.u64("removed edge source")?),
                target: VertexId::new(r.u64("removed edge target")?),
            }),
            EL_RELABEL => batch.push(StreamElement::Relabel {
                id: VertexId::new(r.u64("relabelled vertex id")?),
                label: Label::new(r.u32("new label")?),
            }),
            other => {
                return Err(StoreError::corrupt(
                    path,
                    format!("unknown element tag {other}"),
                ));
            }
        }
    }
    r.finish("element batch")?;
    Ok(batch)
}

/// CRC of an encoded blob — the checksum recorded in (and verified against)
/// the checkpoint manifest.
pub fn blob_crc(bytes: &Bytes) -> u32 {
    crc32(bytes.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::LabelledGraph;
    use loom_partition::partition::Partitioning;

    fn fixture() -> ShardedStore {
        let g = path_graph(10, &[Label::new(0), Label::new(1), Label::new(2)]);
        let mut part = Partitioning::new(3, 10).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            if i < 9 {
                part.assign(v, PartitionId::new((i % 3) as u32)).unwrap();
            } // last vertex left unassigned → lands in the tail blob
        }
        ShardedStore::from_parts(&g, &part)
    }

    #[test]
    fn shard_blobs_roundtrip() {
        let store = fixture();
        let path = Path::new("test.blob");
        for p in 0..store.shard_count() {
            let p = PartitionId::new(p);
            let bytes = encode_shard(&store, p).unwrap();
            let blob = decode_blob(bytes.clone(), path).unwrap();
            assert_eq!(blob.id, Some(p.0));
            assert_eq!(blob.vertices.len(), store.home_vertices(p).len());
            let shard = store.shard(p).unwrap();
            assert_eq!(blob.boundary, shard.boundary());
            assert_eq!(blob.halo, shard.halo());
            // Determinism: encoding twice yields identical bytes.
            assert_eq!(encode_shard(&store, p).unwrap(), bytes);
        }
        let tail = decode_blob(encode_tail(&store), path).unwrap();
        assert_eq!(tail.id, None);
        assert_eq!(tail.vertices.len(), 1);
        assert!(encode_shard(&store, PartitionId::new(99)).is_none());
    }

    #[test]
    fn blob_decode_rejects_corruption_cleanly() {
        let store = fixture();
        let path = Path::new("test.blob");
        let bytes = encode_shard(&store, PartitionId::new(0)).unwrap();
        let full = bytes.as_slice().to_vec();
        for cut in 0..full.len() {
            assert!(
                decode_blob(Bytes::from(full[..cut].to_vec()), path).is_err(),
                "prefix {cut} decoded"
            );
        }
        for byte in 0..full.len().min(24) {
            // Flips in the header/counts region must never panic or OOM.
            let mut flipped = full.clone();
            flipped[byte] ^= 0x80;
            let _ = decode_blob(Bytes::from(flipped), path);
        }
    }

    #[test]
    fn element_batches_roundtrip() {
        let g = path_graph(6, &[Label::new(0), Label::new(1)]);
        let stream =
            loom_graph::GraphStream::from_graph(&g, &loom_graph::prelude::StreamOrder::Bfs);
        let path = Path::new("wal.log");
        let bytes = encode_elements(stream.elements());
        let decoded = decode_elements(bytes, path).unwrap();
        assert_eq!(decoded, stream.elements());
        assert_eq!(
            decode_elements(encode_elements(&[]), path).unwrap(),
            Vec::<StreamElement>::new()
        );
        // Rebuilding from the decoded elements reproduces the graph.
        let rebuilt = loom_graph::GraphStream::from_elements(decoded).materialise();
        assert_eq!(rebuilt.vertex_count(), g.vertex_count());
        assert_eq!(rebuilt.edge_count(), g.edge_count());
    }

    #[test]
    fn mutation_elements_roundtrip() {
        let path = Path::new("wal.log");
        let batch = vec![
            StreamElement::AddVertex {
                id: VertexId::new(1),
                label: Label::new(0),
            },
            StreamElement::AddVertex {
                id: VertexId::new(2),
                label: Label::new(1),
            },
            StreamElement::AddEdge {
                source: VertexId::new(1),
                target: VertexId::new(2),
            },
            StreamElement::Relabel {
                id: VertexId::new(2),
                label: Label::new(3),
            },
            StreamElement::RemoveEdge {
                source: VertexId::new(1),
                target: VertexId::new(2),
            },
            StreamElement::RemoveVertex {
                id: VertexId::new(1),
            },
        ];
        let decoded = decode_elements(encode_elements(&batch), path).unwrap();
        assert_eq!(decoded, batch);
        // Replaying the decoded batch applies the mutations: only vertex 2
        // survives, relabelled, with no edges.
        let replayed = loom_graph::GraphStream::from_elements(decoded).materialise();
        assert_eq!(replayed.vertex_count(), 1);
        assert_eq!(replayed.edge_count(), 0);
        assert_eq!(replayed.label(VertexId::new(2)), Some(Label::new(3)));
    }

    #[test]
    fn element_decode_rejects_garbage() {
        let path = Path::new("wal.log");
        assert!(decode_elements(Bytes::from(vec![0xFF; 3]), path).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(1_000_000); // count with no payload behind it
        assert!(decode_elements(buf.freeze(), path).is_err());
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(7); // unknown tag
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        assert!(decode_elements(buf.freeze(), path).is_err());
    }

    #[test]
    fn empty_store_still_produces_a_tail_blob() {
        let g = LabelledGraph::new();
        let part = Partitioning::new(2, 1).unwrap();
        let store = ShardedStore::from_parts(&g, &part);
        let tail = decode_blob(encode_tail(&store), Path::new("t")).unwrap();
        assert!(tail.vertices.is_empty());
    }
}
