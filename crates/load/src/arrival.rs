//! Seeded arrival processes for open-loop load generation.
//!
//! An open-loop generator decides *when* requests arrive before the run
//! starts: the whole point is that arrival timing is a pure function of
//! `(process, rate, duration, seed)` and never of how the system under test
//! responds. Both processes here produce the exact same offset sequence for
//! the same inputs on every platform, which is what the determinism tests
//! pin.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps (a Poisson process): the memoryless
    /// arrivals of independent users, with bursts — the realistic choice.
    Poisson,
    /// Fixed `1/rate` spacing: the least bursty load a rate admits, useful
    /// for isolating queueing effects from arrival variance.
    Constant,
}

impl ArrivalProcess {
    /// The process's name as it appears in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Constant => "constant",
        }
    }

    /// The arrival offsets (microseconds from the step start, ascending) of
    /// one ramp step at `rate_rps` over `duration`. The first arrival lands
    /// one inter-arrival gap in; offsets are strictly `< duration`. For
    /// `Poisson` the count itself is a deterministic function of the seed;
    /// for `Constant` it is `⌊duration × rate⌋` (within rounding).
    pub fn offsets_us(&self, rate_rps: f64, duration: Duration, seed: u64) -> Vec<u64> {
        let duration_us = duration.as_micros() as f64;
        if rate_rps <= 0.0 || duration_us <= 0.0 {
            return Vec::new();
        }
        let mean_gap_us = 1e6 / rate_rps;
        let mut offsets = Vec::with_capacity((duration.as_secs_f64() * rate_rps) as usize + 1);
        let mut t = 0.0f64;
        match self {
            ArrivalProcess::Constant => loop {
                t += mean_gap_us;
                if t >= duration_us {
                    break;
                }
                offsets.push(t as u64);
            },
            ArrivalProcess::Poisson => {
                let mut rng = StdRng::seed_from_u64(seed);
                loop {
                    // Inverse-transform exponential: -ln(1-U)·mean, with U in
                    // [0,1) so the argument stays strictly positive.
                    let u: f64 = rng.random_range(0.0..1.0);
                    t += -(1.0 - u).ln() * mean_gap_us;
                    if t >= duration_us {
                        break;
                    }
                    offsets.push(t as u64);
                }
            }
        }
        offsets
    }
}

/// The per-step arrival seed: decorrelates steps of one ramp without the
/// caller managing more than one base seed. (SplitMix64's odd multiplicative
/// constant keeps neighbouring steps far apart in seed space.)
pub fn step_seed(base: u64, step: usize) -> u64 {
    base.wrapping_add((step as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_offsets() {
        for process in [ArrivalProcess::Poisson, ArrivalProcess::Constant] {
            let a = process.offsets_us(500.0, Duration::from_millis(200), 42);
            let b = process.offsets_us(500.0, Duration::from_millis(200), 42);
            assert_eq!(a, b, "{} must be deterministic", process.name());
            assert!(!a.is_empty());
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets ascend");
            assert!(a.iter().all(|&t| t < 200_000), "offsets stay in the step");
        }
    }

    #[test]
    fn different_seeds_differ_for_poisson_only() {
        let p1 = ArrivalProcess::Poisson.offsets_us(500.0, Duration::from_millis(200), 1);
        let p2 = ArrivalProcess::Poisson.offsets_us(500.0, Duration::from_millis(200), 2);
        assert_ne!(p1, p2);
        let c1 = ArrivalProcess::Constant.offsets_us(500.0, Duration::from_millis(200), 1);
        let c2 = ArrivalProcess::Constant.offsets_us(500.0, Duration::from_millis(200), 2);
        assert_eq!(c1, c2, "constant spacing ignores the seed");
    }

    #[test]
    fn counts_track_the_offered_rate() {
        let constant = ArrivalProcess::Constant.offsets_us(1000.0, Duration::from_secs(1), 0);
        assert_eq!(
            constant.len(),
            999,
            "⌊1s × 1000rps⌋ minus the gap-first start"
        );
        let poisson = ArrivalProcess::Poisson.offsets_us(1000.0, Duration::from_secs(1), 7);
        // A Poisson count over 1s at 1000 rps: 1000 ± a few σ (σ ≈ 32).
        assert!(
            (800..1200).contains(&poisson.len()),
            "got {}",
            poisson.len()
        );
    }

    #[test]
    fn degenerate_inputs_produce_no_arrivals() {
        for process in [ArrivalProcess::Poisson, ArrivalProcess::Constant] {
            assert!(process
                .offsets_us(0.0, Duration::from_secs(1), 3)
                .is_empty());
            assert!(process
                .offsets_us(-5.0, Duration::from_secs(1), 3)
                .is_empty());
            assert!(process.offsets_us(100.0, Duration::ZERO, 3).is_empty());
        }
    }

    #[test]
    fn step_seeds_decorrelate() {
        let base = 42;
        let seeds: Vec<u64> = (0..8).map(|s| step_seed(base, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        assert!(!seeds.contains(&base));
    }
}
