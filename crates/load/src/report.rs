//! Capacity-report types and emitters: per-step tables, per-cell knees,
//! `BENCH_capacity.json`, and the human-readable text report.

use crate::driver::CapacityRun;
use crate::knee::Knee;
use crate::ramp::RampSchedule;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Everything measured over one ramp step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Position in the ramp, from 0.
    pub index: usize,
    /// The step's scheduled (offered) arrival rate.
    pub offered_rps: f64,
    /// Scheduled arrivals in the step.
    pub offered: usize,
    /// Arrivals the engine admitted.
    pub admitted: usize,
    /// Arrivals rejected at admission (home worker's inbox full).
    pub rejected: usize,
    /// Arrivals the driver shed because it was running hopelessly late.
    pub shed: usize,
    /// Completions observed during the step's wall-clock window (including
    /// deadline-expired ones).
    pub completed: usize,
    /// Of those completions, how many came back flagged `deadline_exceeded`.
    pub deadline_expired: usize,
    /// Goodput: completions *not* deadline-expired ÷ the step duration.
    pub achieved_rps: f64,
    /// Wall-clock median sojourn (arrival → completion observed), µs.
    pub p50_us: u64,
    /// Wall-clock p99 sojourn, µs.
    pub p99_us: u64,
    /// Wall-clock p99.9 sojourn, µs.
    pub p999_us: u64,
    /// p99 wall-clock queue wait (enqueue → dequeue) across all shards over
    /// the step, from the telemetry interval diff; 0 on unobserved engines.
    pub queue_wait_p99_us: u64,
    /// Requests still in flight when the step window closed — the
    /// queue-growth signal an open-loop driver exists to expose.
    pub inflight_end: usize,
}

impl StepMetrics {
    /// Achieved ÷ offered (1.0 for an idle step, so an empty step never
    /// reads as saturated).
    pub fn achieved_ratio(&self) -> f64 {
        if self.offered_rps <= 0.0 {
            1.0
        } else {
            self.achieved_rps / self.offered_rps
        }
    }
}

/// One swept configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Partitioner name (`hash`, `loom`, …).
    pub partitioner: String,
    /// Worker shard count.
    pub shards: usize,
    /// Plan strategy name (`legacy`, `cost_ranked`).
    pub plan_strategy: String,
}

impl CellSpec {
    /// A cell spec from its three coordinates.
    pub fn new(partitioner: &str, shards: usize, plan_strategy: &str) -> Self {
        Self {
            partitioner: partitioner.to_string(),
            shards,
            plan_strategy: plan_strategy.to_string(),
        }
    }

    /// `partitioner/shards/strategy`, the cell's display id.
    pub fn id(&self) -> String {
        format!(
            "{}/{}x/{}",
            self.partitioner, self.shards, self.plan_strategy
        )
    }
}

/// One cell's measured ramp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityCell {
    /// Which configuration was driven.
    pub spec: CellSpec,
    /// The measured ramp.
    pub run: CapacityRun,
}

/// A full capacity sweep: every (partitioner × shards × plan strategy) cell
/// driven with the same ramp, arrival process, and seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Arrival process name.
    pub process: String,
    /// Base arrival seed.
    pub seed: u64,
    /// The ramp every cell was driven with.
    pub ramp: RampSchedule,
    /// Whether this was a reduced fast-mode run.
    pub fast: bool,
    /// Per-configuration results.
    pub cells: Vec<CapacityCell>,
}

impl CapacityReport {
    /// The knee of one cell, if that cell was swept.
    pub fn knee(&self, partitioner: &str, shards: usize, plan_strategy: &str) -> Option<&Knee> {
        self.cells
            .iter()
            .find(|c| {
                c.spec.partitioner == partitioner
                    && c.spec.shards == shards
                    && c.spec.plan_strategy == plan_strategy
            })
            .map(|c| &c.run.knee)
    }

    /// The report as `BENCH_capacity.json`: one object per cell with its
    /// knee and the full per-step offered/achieved/latency table.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"capacity\",");
        let _ = writeln!(out, "  \"fast\": {},", self.fast);
        let _ = writeln!(out, "  \"process\": \"{}\",", self.process);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"ramp\": {{\"initial_rps\": {:.1}, \"increment_rps\": {:.1}, \"step_ms\": {}, \"max_rps\": {:.1}}},",
            self.ramp.initial_rps,
            self.ramp.increment_rps,
            self.ramp.step.as_millis(),
            self.ramp.max_rps
        );
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let run = &cell.run;
            out.push_str("    {\n");
            let _ = writeln!(
                out,
                "      \"partitioner\": \"{}\", \"shards\": {}, \"plan_strategy\": \"{}\",",
                cell.spec.partitioner, cell.spec.shards, cell.spec.plan_strategy
            );
            let _ = writeln!(
                out,
                "      \"knee_rps\": {:.1}, \"knee_reason\": \"{}\", \"saturated_step\": {},",
                run.knee.knee_rps,
                run.knee.reason.name(),
                run.knee
                    .saturated_step
                    .map_or("null".to_string(), |s| s.to_string())
            );
            let budget = &run.report.error_budget;
            let _ = writeln!(
                out,
                "      \"error_budget\": {{\"requests\": {}, \"rejected\": {}, \"deadline_expired\": {}}},",
                budget.requests, budget.rejected, budget.deadline_expired
            );
            out.push_str("      \"steps\": [\n");
            for (j, s) in run.steps.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \"deadline_expired\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"queue_wait_p99_us\": {}, \"inflight_end\": {}}}",
                    s.offered_rps,
                    s.achieved_rps,
                    s.offered,
                    s.admitted,
                    s.rejected,
                    s.shed,
                    s.deadline_expired,
                    s.p50_us,
                    s.p99_us,
                    s.p999_us,
                    s.queue_wait_p99_us,
                    s.inflight_end
                );
                out.push_str(if j + 1 < run.steps.len() { ",\n" } else { "\n" });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 < self.cells.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable report: one table per cell, knees summarised last.
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "capacity sweep · {} arrivals · seed {} · ramp {:.0}→{:.0} by {:.0} rps, {} ms steps",
            self.process,
            self.seed,
            self.ramp.initial_rps,
            self.ramp.max_rps,
            self.ramp.increment_rps,
            self.ramp.step.as_millis()
        );
        for cell in &self.cells {
            let _ = writeln!(out, "\n[{}]", cell.spec.id());
            let _ = writeln!(
                out,
                "  {:>10} {:>10} {:>7} {:>6} {:>5} {:>9} {:>9} {:>9} {:>10} {:>8}",
                "offered",
                "achieved",
                "admit",
                "rej",
                "shed",
                "p50_us",
                "p99_us",
                "p999_us",
                "qwait99_us",
                "inflight"
            );
            for s in &cell.run.steps {
                let _ = writeln!(
                    out,
                    "  {:>10.1} {:>10.1} {:>7} {:>6} {:>5} {:>9} {:>9} {:>9} {:>10} {:>8}",
                    s.offered_rps,
                    s.achieved_rps,
                    s.admitted,
                    s.rejected,
                    s.shed,
                    s.p50_us,
                    s.p99_us,
                    s.p999_us,
                    s.queue_wait_p99_us,
                    s.inflight_end
                );
            }
            let knee = &cell.run.knee;
            let _ = writeln!(
                out,
                "  knee: {:.1} rps ({})",
                knee.knee_rps,
                knee.reason.name()
            );
        }
        out.push_str("\nknees:\n");
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "  {:<28} {:>8.1} rps  {}",
                cell.spec.id(),
                cell.run.knee.knee_rps,
                cell.run.knee.reason.name()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::knee::SaturationDetector;
    use std::time::Duration;

    fn sample_report() -> CapacityReport {
        let steps = vec![
            StepMetrics {
                index: 0,
                offered_rps: 100.0,
                offered: 25,
                admitted: 25,
                completed: 25,
                achieved_rps: 100.0,
                p50_us: 800,
                p99_us: 1_500,
                p999_us: 1_900,
                ..StepMetrics::default()
            },
            StepMetrics {
                index: 1,
                offered_rps: 200.0,
                offered: 50,
                admitted: 30,
                rejected: 20,
                completed: 30,
                achieved_rps: 120.0,
                p50_us: 2_000,
                p99_us: 9_000,
                p999_us: 11_000,
                ..StepMetrics::default()
            },
        ];
        let knee = SaturationDetector::default().detect(&steps);
        let run = CapacityRun {
            process: ArrivalProcess::Constant,
            seed: 7,
            steps,
            knee,
            drained: 0,
            report: loom_serve::ServeReport::default(),
            planned_offsets_us: None,
        };
        CapacityReport {
            process: "constant".to_string(),
            seed: 7,
            ramp: RampSchedule::new(100.0, 100.0, Duration::from_millis(250), 200.0),
            fast: true,
            cells: vec![CapacityCell {
                spec: CellSpec::new("hash", 2, "cost_ranked"),
                run,
            }],
        }
    }

    #[test]
    fn json_contains_every_cell_and_step_field() {
        let json = sample_report().to_json();
        for needle in [
            "\"bench\": \"capacity\"",
            "\"partitioner\": \"hash\"",
            "\"plan_strategy\": \"cost_ranked\"",
            "\"knee_rps\": 100.0",
            "\"knee_reason\": \"achieved_flattened\"",
            "\"offered_rps\": 200.0",
            "\"achieved_rps\": 120.0",
            "\"p999_us\": 11000",
            "\"queue_wait_p99_us\": 0",
            "\"error_budget\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — the cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_report_tabulates_steps_and_knees() {
        let text = sample_report().text_report();
        assert!(text.contains("[hash/2x/cost_ranked]"));
        assert!(text.contains("knee: 100.0 rps (achieved_flattened)"));
        assert!(text.contains("offered"));
        assert!(text.contains("qwait99_us"));
    }

    #[test]
    fn knee_lookup_finds_cells_by_coordinates() {
        let report = sample_report();
        assert!(report.knee("hash", 2, "cost_ranked").is_some());
        assert!(report.knee("loom", 2, "cost_ranked").is_none());
        assert!(report.knee("hash", 4, "cost_ranked").is_none());
    }

    #[test]
    fn achieved_ratio_guards_idle_steps() {
        assert_eq!(StepMetrics::default().achieved_ratio(), 1.0);
        let s = StepMetrics {
            offered_rps: 200.0,
            achieved_rps: 150.0,
            ..StepMetrics::default()
        };
        assert!((s.achieved_ratio() - 0.75).abs() < 1e-12);
    }
}
