//! RPS ramp schedules: `initial_rps → increment_rps → max_rps`.
//!
//! The knob set is deliberately the one the Internet-Computer scalability
//! suite uses (`initial_rps`, `increment_rps`, per-step duration, a
//! `target_rps`/`max_rps` ceiling): start below the expected knee, step the
//! offered rate by a fixed increment, stop at the ceiling, and measure each
//! step long enough for queues to reach their step-local behaviour.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One ramp: an arithmetic sequence of offered-RPS steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampSchedule {
    /// Offered RPS of the first step.
    pub initial_rps: f64,
    /// Offered-RPS increase per step.
    pub increment_rps: f64,
    /// Wall-clock duration of every step.
    pub step: Duration,
    /// Ceiling (the `target_rps`/`max_rps` knob): the last step is the
    /// largest `initial + k·increment ≤ max_rps`.
    pub max_rps: f64,
}

impl RampSchedule {
    /// A ramp from `initial_rps` to `max_rps` in `increment_rps` steps of
    /// `step` each. Rates are clamped positive; a zero increment yields a
    /// single step at `initial_rps`.
    pub fn new(initial_rps: f64, increment_rps: f64, step: Duration, max_rps: f64) -> Self {
        let initial_rps = initial_rps.max(1.0);
        Self {
            initial_rps,
            increment_rps: increment_rps.max(0.0),
            step,
            max_rps: max_rps.max(initial_rps),
        }
    }

    /// The schedule's steps, in ramp order.
    pub fn steps(&self) -> Vec<StepSpec> {
        let mut steps = Vec::new();
        let mut offered = self.initial_rps;
        loop {
            steps.push(StepSpec {
                index: steps.len(),
                offered_rps: offered,
                duration: self.step,
            });
            if self.increment_rps <= 0.0 {
                break;
            }
            offered += self.increment_rps;
            if offered > self.max_rps + 1e-9 {
                break;
            }
        }
        steps
    }

    /// Total scheduled wall-clock time of the ramp.
    pub fn total_duration(&self) -> Duration {
        self.step * self.steps().len() as u32
    }
}

/// One step of a ramp: offer `offered_rps` for `duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepSpec {
    /// Position in the ramp, from 0.
    pub index: usize,
    /// The step's offered arrival rate.
    pub offered_rps: f64,
    /// The step's wall-clock duration.
    pub duration: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_enumerates_arithmetic_steps_up_to_the_ceiling() {
        let ramp = RampSchedule::new(100.0, 100.0, Duration::from_millis(250), 450.0);
        let steps = ramp.steps();
        let offered: Vec<f64> = steps.iter().map(|s| s.offered_rps).collect();
        assert_eq!(offered, vec![100.0, 200.0, 300.0, 400.0]);
        assert!(steps.iter().enumerate().all(|(i, s)| s.index == i));
        assert_eq!(ramp.total_duration(), Duration::from_millis(1000));
    }

    #[test]
    fn ceiling_step_is_included_when_exactly_reachable() {
        let ramp = RampSchedule::new(100.0, 150.0, Duration::from_millis(100), 400.0);
        let offered: Vec<f64> = ramp.steps().iter().map(|s| s.offered_rps).collect();
        assert_eq!(offered, vec![100.0, 250.0, 400.0]);
    }

    #[test]
    fn zero_increment_is_a_single_step() {
        let ramp = RampSchedule::new(200.0, 0.0, Duration::from_millis(100), 1000.0);
        assert_eq!(ramp.steps().len(), 1);
        assert_eq!(ramp.steps()[0].offered_rps, 200.0);
    }

    #[test]
    fn rates_clamp_sane() {
        let ramp = RampSchedule::new(-10.0, -5.0, Duration::from_millis(50), -100.0);
        let steps = ramp.steps();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].offered_rps, 1.0);
    }
}
