//! # loom-load
//!
//! The open-loop capacity harness: measures what the serving stack can
//! actually sustain, in real wall-clock time, instead of what the latency
//! model predicts.
//!
//! A **closed-loop** driver (issue, wait, issue again) self-throttles at
//! saturation: when the engine slows down, so does the load, so queues never
//! grow and the measured "capacity" is whatever the driver settled into.
//! This crate drives [`loom_serve::ServeEngine`] **open-loop**: arrival
//! times are a pure function of `(process, rate, seed)` computed before the
//! run, injection never blocks on backpressure (a full shard queue rejects
//! the arrival on the spot), and late or rejected requests are counted
//! against the step's error budget — never retried. That independence is
//! what makes the saturation knee an honest property of the engine.
//!
//! The pieces:
//!
//! * [`arrival`] — [`ArrivalProcess`]: seeded Poisson or constant-interval
//!   inter-arrival gaps, bit-reproducible per `(seed, rate, duration)`;
//! * [`ramp`] — [`RampSchedule`]: the `initial_rps → increment_rps →
//!   max_rps` sweep (the Internet-Computer scalability suite's knob set);
//! * [`driver`] — [`run_capacity`] / [`LoadConfig`]: paces the schedule
//!   through [`loom_serve::OpenLoopInjector`], measuring per-step offered vs
//!   achieved RPS, wall-clock p50/p99/p999 sojourn, queue-wait p99 (from
//!   `loom-obs` interval diffs), rejects, sheds, and in-flight depth;
//! * [`knee`] — [`SaturationDetector`]: finds the knee (first step where
//!   goodput flattens below offered, or p99 crosses an SLO);
//! * [`report`] — [`CapacityReport`]: the per-(partitioner × shards × plan
//!   strategy) sweep table behind `BENCH_capacity.json` and the text report.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod driver;
pub mod knee;
pub mod ramp;
pub mod report;

pub use arrival::{step_seed, ArrivalProcess};
pub use driver::{run_capacity, CapacityRun, LoadConfig};
pub use knee::{Knee, KneeReason, SaturationDetector};
pub use ramp::{RampSchedule, StepSpec};
pub use report::{CapacityCell, CapacityReport, CellSpec, StepMetrics};

/// Convenient re-exports for examples, tests and the umbrella crate.
pub mod prelude {
    pub use crate::arrival::ArrivalProcess;
    pub use crate::driver::{run_capacity, CapacityRun, LoadConfig};
    pub use crate::knee::{Knee, KneeReason, SaturationDetector};
    pub use crate::ramp::RampSchedule;
    pub use crate::report::{CapacityCell, CapacityReport, CellSpec, StepMetrics};
}
