//! The open-loop driver: paces one seeded arrival schedule through a
//! [`ServeEngine`]'s non-blocking injection path and measures each ramp
//! step.
//!
//! The driver never waits for the engine: each arrival is issued at its
//! pre-computed instant via
//! [`OpenLoopInjector::inject_next`](loom_serve::OpenLoopInjector::inject_next)
//! (which rejects
//! instead of blocking when the home shard's queue is full), and arrivals
//! the driver itself could not issue on time — it fell behind by more than
//! [`LoadConfig::shed_after`] — are shed, not retried. Both count against
//! the step's error budget. Between arrivals the driver pumps completions,
//! timestamping each to build the per-step wall-clock sojourn histogram.

use crate::arrival::{step_seed, ArrivalProcess};
use crate::knee::{Knee, SaturationDetector};
use crate::ramp::RampSchedule;
use crate::report::StepMetrics;
use loom_motif::workload::Workload;
use loom_obs::{stage, Histogram};
use loom_serve::{Admission, Completion, ServeEngine, ServeReport, ShardedStore};
use loom_sim::engine::QueryRequest;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one capacity run needs beyond the engine and workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// The offered-RPS ramp.
    pub ramp: RampSchedule,
    /// How inter-arrival gaps are drawn.
    pub process: ArrivalProcess,
    /// Base seed: drives both the workload sampling and (per step, via
    /// [`step_seed`]) the arrival gaps.
    pub seed: u64,
    /// Knee-detection thresholds.
    pub detector: SaturationDetector,
    /// Per-request deadline, measured from the request's *arrival* instant.
    /// Admitted requests that sit queued past it are cut short by the
    /// worker's pre-flight deadline check and counted `deadline_expired`.
    pub request_timeout: Option<Duration>,
    /// Per-query traversal budget forwarded to the engine's request.
    /// Modelled latency is proportional to traversals, so under
    /// service-time emulation this caps the held service-time tail —
    /// without it, a single hub query can occupy a shard for entire ramp
    /// steps.
    pub traversal_budget: Option<usize>,
    /// Shed (drop without offering) any arrival the driver is running this
    /// late on — open-loop drivers shed, they never inject stale load.
    pub shed_after: Duration,
    /// After the last step, wait at most this long for in-flight stragglers
    /// before handing the run back to the engine's teardown.
    pub drain_grace: Duration,
    /// Keep the planned per-step arrival offsets on the run (the open-loop
    /// proof: planned offsets are reproducible from the seed alone).
    pub record_arrivals: bool,
    /// Service-time emulation scale for the engine
    /// ([`loom_serve::ServeConfig::service_hold`]) — applied by the session
    /// façade when it builds the engine; `run_capacity` itself uses the
    /// engine as-given.
    pub service_hold: Option<f64>,
}

impl LoadConfig {
    /// A config with the given ramp and capacity-oriented defaults: Poisson
    /// arrivals, seed 42, default knee thresholds, 50 ms shed budget, 1 s
    /// drain grace, no per-request deadline.
    pub fn new(ramp: RampSchedule) -> Self {
        Self {
            ramp,
            process: ArrivalProcess::Poisson,
            seed: 42,
            detector: SaturationDetector::default(),
            request_timeout: None,
            traversal_budget: None,
            shed_after: Duration::from_millis(50),
            drain_grace: Duration::from_secs(1),
            record_arrivals: false,
            service_hold: None,
        }
    }

    /// Builder-style arrival process.
    #[must_use]
    pub fn with_process(mut self, process: ArrivalProcess) -> Self {
        self.process = process;
        self
    }

    /// Builder-style base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style knee detector.
    #[must_use]
    pub fn with_detector(mut self, detector: SaturationDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Builder-style per-request deadline (from arrival).
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = Some(timeout);
        self
    }

    /// Builder-style per-query traversal budget (see
    /// [`LoadConfig::traversal_budget`]).
    #[must_use]
    pub fn with_traversal_budget(mut self, budget: usize) -> Self {
        self.traversal_budget = Some(budget);
        self
    }

    /// Builder-style planned-arrival recording.
    #[must_use]
    pub fn with_recorded_arrivals(mut self, record: bool) -> Self {
        self.record_arrivals = record;
        self
    }

    /// Builder-style service-time emulation scale (see
    /// [`LoadConfig::service_hold`]).
    #[must_use]
    pub fn with_service_hold(mut self, scale: f64) -> Self {
        self.service_hold = Some(scale.max(0.0));
        self
    }

    /// The planned arrival offsets of every step (µs from each step's
    /// start) — a pure function of the config, computable before, during,
    /// or after a run.
    pub fn planned_offsets_us(&self) -> Vec<Vec<u64>> {
        self.ramp
            .steps()
            .iter()
            .map(|s| {
                self.process
                    .offsets_us(s.offered_rps, s.duration, step_seed(self.seed, s.index))
            })
            .collect()
    }
}

/// One measured ramp against one engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityRun {
    /// The arrival process driven.
    pub process: ArrivalProcess,
    /// The base seed driven.
    pub seed: u64,
    /// Per-step measurements, in ramp order.
    pub steps: Vec<StepMetrics>,
    /// The detected saturation knee.
    pub knee: Knee,
    /// Completions observed after the last step window (stragglers drained
    /// before teardown; their latencies belong to no step).
    pub drained: usize,
    /// The engine's own report for the whole run — its
    /// [`loom_serve::ErrorBudget`] covers every issued request.
    pub report: ServeReport,
    /// The planned per-step arrival offsets, when
    /// [`LoadConfig::record_arrivals`] was set.
    pub planned_offsets_us: Option<Vec<Vec<u64>>>,
}

impl CapacityRun {
    /// Scheduled arrivals across all steps.
    pub fn offered_total(&self) -> usize {
        self.steps.iter().map(|s| s.offered).sum()
    }
}

/// Consume a batch of completions into the current step's accumulators.
fn absorb(
    completions: Vec<Completion>,
    arrivals: &[Instant],
    metrics: &mut StepMetrics,
    hist: &Histogram,
) {
    for c in completions {
        metrics.completed += 1;
        if c.deadline_exceeded {
            metrics.deadline_expired += 1;
        }
        if let Some(&arrived) = arrivals.get(c.seq as usize) {
            hist.record(c.at.saturating_duration_since(arrived).as_micros() as u64);
        }
    }
}

/// Drive one open-loop ramp against `engine` serving `store`/`workload`.
///
/// Per step: pre-computed arrivals are injected at their scheduled instants
/// (never blocking, shedding when hopelessly late); completions observed
/// inside the step's wall-clock window feed its goodput and sojourn
/// quantiles; and, when the engine is observed, the step's queue-wait p99
/// comes from a telemetry interval diff. The knee is detected over the
/// finished step table with the config's [`SaturationDetector`].
pub fn run_capacity(
    engine: &ServeEngine,
    store: &Arc<ShardedStore>,
    workload: &Workload,
    config: &LoadConfig,
) -> CapacityRun {
    let specs = config.ramp.steps();
    let offsets = config.planned_offsets_us();
    let total: usize = offsets.iter().map(Vec::len).sum();
    let mut request = QueryRequest::workload(total).with_seed(config.seed);
    if let Some(budget) = config.traversal_budget {
        request = request.with_traversal_budget(budget);
    }
    let telemetry = engine.telemetry().cloned();

    let (report, (steps, drained)) = engine.open_loop(store, workload, request, |inj| {
        let run_start = inj.run_start();
        // Arrival instant per sequence number — schedule order is injection
        // order, so `seq` indexes this directly.
        let mut arrivals: Vec<Instant> = Vec::with_capacity(total);
        let mut steps: Vec<StepMetrics> = Vec::with_capacity(specs.len());
        let mut base = Duration::ZERO;
        for (spec, step_offsets) in specs.iter().zip(&offsets) {
            let snap_before = telemetry.as_ref().map(|t| t.snapshot());
            let hist = Histogram::new();
            let mut metrics = StepMetrics {
                index: spec.index,
                offered_rps: spec.offered_rps,
                offered: step_offsets.len(),
                ..StepMetrics::default()
            };
            for &offset in step_offsets {
                let due = run_start + base + Duration::from_micros(offset);
                inj.pump_until(due);
                absorb(inj.drain_completions(), &arrivals, &mut metrics, &hist);
                // The arrival's timestamp is its *scheduled* instant: the
                // schedule, not the engine, owns time in an open-loop run.
                if Instant::now().saturating_duration_since(due) > config.shed_after {
                    if inj.shed_next().is_some() {
                        metrics.shed += 1;
                        arrivals.push(due);
                    }
                    continue;
                }
                let deadline = config.request_timeout.map(|t| due + t);
                match inj.inject_next(deadline) {
                    Admission::Admitted { .. } => {
                        metrics.admitted += 1;
                        arrivals.push(due);
                    }
                    Admission::Rejected { .. } => {
                        metrics.rejected += 1;
                        arrivals.push(due);
                    }
                    Admission::Exhausted => break,
                }
            }
            let step_end = run_start + base + spec.duration;
            inj.pump_until(step_end);
            absorb(inj.drain_completions(), &arrivals, &mut metrics, &hist);
            metrics.achieved_rps =
                (metrics.completed - metrics.deadline_expired) as f64 / spec.duration.as_secs_f64();
            metrics.p50_us = hist.quantile(0.50);
            metrics.p99_us = hist.quantile(0.99);
            metrics.p999_us = hist.quantile(0.999);
            if let (Some(t), Some(before)) = (telemetry.as_ref(), snap_before) {
                let delta = t.snapshot().since(&before);
                metrics.queue_wait_p99_us = delta
                    .histogram_merged(stage::SERVE_QUEUE_WAIT)
                    .quantile(0.99);
            }
            metrics.inflight_end = inj.outstanding();
            steps.push(metrics);
            base += spec.duration;
        }
        // Drain stragglers within the grace window so teardown is quick and
        // their count is visible (their latencies belong to no step).
        let drain_deadline = Instant::now() + config.drain_grace;
        let mut drained = 0usize;
        while inj.outstanding() > 0 && Instant::now() < drain_deadline {
            inj.pump_until((Instant::now() + Duration::from_millis(5)).min(drain_deadline));
            drained += inj.drain_completions().len();
        }
        drained += inj.drain_completions().len();
        (steps, drained)
    });

    let knee = config.detector.detect(&steps);
    CapacityRun {
        process: config.process,
        seed: config.seed,
        steps,
        knee,
        drained,
        report,
        planned_offsets_us: config.record_arrivals.then_some(offsets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_graph::generators::regular::path_graph;
    use loom_graph::Label;
    use loom_motif::query::{PatternQuery, QueryId};
    use loom_partition::partition::{PartitionId, Partitioning};
    use loom_serve::ServeConfig;

    fn fixture() -> (Arc<ShardedStore>, Workload) {
        let g = path_graph(12, &[Label::new(0), Label::new(1), Label::new(2)]);
        let mut part = Partitioning::new(4, 12).unwrap();
        for (i, v) in g.vertices_sorted().into_iter().enumerate() {
            part.assign(v, PartitionId::new((i / 3) as u32)).unwrap();
        }
        let store = Arc::new(ShardedStore::from_parts(&g, &part));
        let workload = Workload::uniform(vec![
            PatternQuery::path(
                QueryId::new(0),
                &[Label::new(0), Label::new(1), Label::new(2)],
            )
            .unwrap(),
            PatternQuery::path(QueryId::new(1), &[Label::new(1), Label::new(2)]).unwrap(),
        ])
        .unwrap();
        (store, workload)
    }

    fn tiny_ramp() -> RampSchedule {
        RampSchedule::new(200.0, 200.0, Duration::from_millis(60), 400.0)
    }

    #[test]
    fn unsaturated_run_completes_everything_it_offers() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let config = LoadConfig::new(tiny_ramp()).with_recorded_arrivals(true);
        let run = run_capacity(&engine, &store, &workload, &config);
        assert_eq!(run.steps.len(), 2);
        assert_eq!(run.report.queries, run.offered_total());
        assert_eq!(run.report.error_budget.requests, run.offered_total());
        // An unloaded engine keeps up: nothing rejected, knee not found.
        assert_eq!(run.report.error_budget.dropped(), 0);
        assert!(!run.knee.found());
        let completed: usize = run.steps.iter().map(|s| s.completed).sum();
        assert_eq!(completed + run.drained, run.offered_total());
        let planned = run.planned_offsets_us.as_ref().expect("recorded");
        assert_eq!(planned.len(), 2);
        assert_eq!(planned, &config.planned_offsets_us());
    }

    #[test]
    fn saturated_run_rejects_and_finds_a_knee() {
        let (store, workload) = fixture();
        // One worker held ~12ms per query behind a 2-deep queue: capacity is
        // well under the first step's 200 rps, so the ramp saturates at
        // step 0.
        let engine = ServeEngine::new(
            ServeConfig::new(1)
                .with_queue_capacity(2)
                .with_service_hold(500.0),
        );
        let config = LoadConfig::new(tiny_ramp()).with_seed(9);
        let run = run_capacity(&engine, &store, &workload, &config);
        assert!(run.knee.found(), "overload must saturate: {:?}", run.knee);
        assert!(run.report.error_budget.dropped() > 0);
        let rejected: usize = run.steps.iter().map(|s| s.rejected + s.shed).sum();
        assert!(rejected > 0, "full queues must reject open-loop arrivals");
        // Issued requests are conserved regardless of saturation.
        assert_eq!(run.report.error_budget.requests, run.offered_total());
    }

    #[test]
    fn capacity_runs_are_reproducible_from_the_seed() {
        let (store, workload) = fixture();
        let engine = ServeEngine::new(ServeConfig::new(2));
        let config = LoadConfig::new(tiny_ramp())
            .with_seed(31)
            .with_recorded_arrivals(true);
        let a = run_capacity(&engine, &store, &workload, &config);
        let b = run_capacity(&engine, &store, &workload, &config);
        // Offered counts and planned arrivals are schedule-determined;
        // wall-clock measurements may differ run to run.
        assert_eq!(a.planned_offsets_us, b.planned_offsets_us);
        let offered_a: Vec<usize> = a.steps.iter().map(|s| s.offered).collect();
        let offered_b: Vec<usize> = b.steps.iter().map(|s| s.offered).collect();
        assert_eq!(offered_a, offered_b);
        assert_eq!(
            a.report.aggregate.matches_found,
            b.report.aggregate.matches_found
        );
    }
}
